//! Distributed recovery blocks (§5.1) with injected software faults.
//!
//! Part 1 runs a real recovery block — three independently written
//! sorting routines, one subtly buggy, one crash-prone — sequentially and
//! concurrently on COW workspaces.
//!
//! Part 2 reproduces the Kim/Welch-style experiment at cluster scale on
//! the calibrated 1989 cost model: two-alternate recovery blocks with
//! varying primary failure rates, sequential-with-rollback versus
//! concurrent distributed execution.
//!
//! Run with: `cargo run --release --example recovery_blocks`

use altx::{AddressSpace, PageSize};
use altx_des::{SimDuration, SimRng};
use altx_recovery::{AlternateModel, DistributedRecoveryBlock, FaultSpec, RecoveryBlock};

fn sorted(v: &[u32]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

fn part1_real_block() {
    println!("— part 1: a software-fault-tolerant sort —\n");
    // Values collide heavily (mod 997), so duplicate-dropping bugs bite.
    let input: Vec<u32> = (0..20_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 997)
        .collect();
    let reference_len = input.len();

    let block: RecoveryBlock<Vec<u32>> = RecoveryBlock::new(move |result: &Vec<u32>, _ws| {
        // The acceptance test, written from the specification: output
        // sorted and a permutation-sized copy of the input.
        sorted(result) && result.len() == reference_len
    })
    .alternate("buggy-quicksort", {
        let input = input.clone();
        move |_ws, _t| {
            // An "independently developed" quicksort with a bug: it
            // drops pivot duplicates.
            fn qs(v: &[u32]) -> Vec<u32> {
                if v.len() <= 1 {
                    return v.to_vec();
                }
                let pivot = v[v.len() / 2];
                let less: Vec<u32> = v.iter().copied().filter(|&x| x < pivot).collect();
                let greater: Vec<u32> = v.iter().copied().filter(|&x| x > pivot).collect();
                let mut out = qs(&less);
                out.push(pivot); // duplicates of pivot are lost!
                out.extend(qs(&greater));
                out
            }
            Some(qs(&input))
        }
    })
    .alternate("crashing-mergesort", |_ws, _t| {
        // Models a version that dies on this input (e.g. blows its
        // recursion budget): the alternate itself fails.
        None
    })
    .alternate("trusty-insertion-sort", {
        let input = input.clone();
        move |_ws, t| {
            let mut v = input.clone();
            // Slow but correct; polls for elimination periodically.
            for i in 1..v.len() {
                if i % 4096 == 0 {
                    t.checkpoint()?;
                }
                let mut j = i;
                while j > 0 && v[j - 1] > v[j] {
                    v.swap(j - 1, j);
                    j -= 1;
                }
            }
            Some(v)
        }
    });

    let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
    let seq = block.run_sequential(&mut ws);
    println!(
        "sequential : accepted={} winner={:?} after {} attempts ({:?})",
        seq.accepted, seq.winner_name, seq.attempts, seq.wall
    );

    let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
    let conc = block.run_concurrent(&mut ws);
    println!(
        "concurrent : accepted={} winner={:?} racing {} alternates ({:?})",
        conc.accepted, conc.winner_name, conc.attempts, conc.wall
    );
    assert!(seq.accepted && conc.accepted);
    println!();
}

fn part2_distributed_model() {
    println!("— part 2: distributed two-alternate blocks (Kim/Welch shape, 1989 costs) —\n");
    println!("primary-fail-prob   sequential(mean)   concurrent(mean)   mean speedup");

    let mut rng = SimRng::seed_from_u64(2026);
    for fail_prob in [0.0, 0.25, 0.5, 0.75] {
        let mut seq_total = 0.0;
        let mut conc_total = 0.0;
        let mut speedups = Vec::new();
        let trials = 200;
        for _ in 0..trials {
            // Primary: faster but unreliable; secondary: slower, solid.
            let primary = AlternateModel {
                passes: !rng.chance(fail_prob),
                ..AlternateModel::sample(&mut rng, 4_000.0, 0.4, &FaultSpec::none())
            };
            let secondary = AlternateModel::sample(&mut rng, 9_000.0, 0.4, &FaultSpec::none());
            let block =
                DistributedRecoveryBlock::new(vec![primary, secondary]).with_majority_sync(3, 0);
            let cmp = block.compare();
            seq_total += cmp.sequential_time.as_secs_f64();
            if let (Some(ct), Some(s)) = (cmp.concurrent_time, cmp.speedup) {
                conc_total += ct.as_secs_f64();
                speedups.push(s);
            }
        }
        let mean_speedup: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!(
            "{fail_prob:>17.2}   {:>14.2}s   {:>14.2}s   {mean_speedup:>12.2}x",
            seq_total / trials as f64,
            conc_total / trials as f64,
        );
    }
    println!(
        "\nhigher primary failure rates favor concurrent execution: the secondary is\n\
         already running when the primary's acceptance test fails (\"a rapid failure-free path through the computation\")."
    );
    let _ = SimDuration::ZERO;
}

fn main() {
    part1_real_block();
    part2_distributed_model();
}
