//! OR-parallel Prolog (§5.2): racing clause alternatives.
//!
//! A route-planning knowledge base where three strategies ("rules") can
//! answer the same query with wildly data-dependent costs: "the
//! computation is data-driven, and thus the execution time and control
//! flow can vary greatly with the input" (§7).
//!
//! The example shows: sequential SLD resolution, branch profiling,
//! the threaded OR-parallel solver, and the calibrated simulated race
//! with its speedup over sequential DFS.
//!
//! Run with: `cargo run --release --example prolog_or`

use altx_prolog::{profile_branches, solve_first_parallel, KnowledgeBase, OrSimConfig, Solver};

const PROGRAM: &str = "
    % A chain graph plus a shortcut; three routing rules of wildly
    % different cost. The slow rules walk a long countdown before their
    % final check fails — deep, data-driven work, unknowable in advance.
    edge(0, 1). edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).
    edge(5, 6). edge(6, 7). edge(7, 8). edge(8, 9). edge(9, 10).
    shortcut(0, 10).

    reach(X, X).
    reach(X, Z) :- edge(X, Y), reach(Y, Z).

    countdown(0).
    countdown(N) :- N > 0, M is N - 1, countdown(M).

    % route/2 has three alternative clauses — the OR choice point.
    route(X, Y) :- reach(X, Y), countdown(30000), expensive_check(X, Y).
    route(X, Y) :- reach(X, Y), countdown(60000), expensive_check(X, Y).
    route(X, Y) :- shortcut(X, Y).

    % expensive_check never holds: the first two rules burn work and fail.
    expensive_check(no, way).

    % Arithmetic workload for the sequential demo.
    fib(0, 0). fib(1, 1).
    fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                 fib(A, FA), fib(B, FB), F is FA + FB.
";

fn main() {
    let kb = KnowledgeBase::parse(PROGRAM).expect("valid program");

    // Plain sequential resolution.
    let mut solver = Solver::new(&kb);
    let sols = solver.solve_str("fib(17, F)", 1).expect("valid query");
    println!(
        "sequential: fib(17) = {} in {} resolution steps\n",
        sols[0].binding_str("F").expect("bound"),
        solver.steps()
    );

    // Profile the OR branches of route(0, 10).
    let query = "route(0, 10)";
    let profiles = profile_branches(&kb, query).expect("valid query");
    println!("branch profiles for `{query}`:");
    for p in &profiles {
        println!(
            "  clause {}: {:>8} steps, {}",
            p.clause_index + 1,
            p.steps,
            if p.succeeded { "SUCCEEDS" } else { "fails" }
        );
    }

    // Sequential DFS pays the failing branches first; the threaded
    // OR-parallel solver races them.
    let mut solver = Solver::new(&kb);
    let seq = solver.solve_str(query, 1).expect("valid");
    println!(
        "\nsequential first solution: {} ({} steps — failed branches paid first)",
        if seq.is_empty() { "no" } else { "yes" },
        solver.steps()
    );

    let report = solve_first_parallel(&kb, query).expect("valid");
    println!(
        "threaded OR-parallel:      {} (winner branch {}, {} raced, {:?})",
        if report.solution.is_some() {
            "yes"
        } else {
            "no"
        },
        report.winner_branch.map(|b| b + 1).unwrap_or(0),
        report.branches,
        report.wall
    );

    // The calibrated simulation: what would this look like on the 1989
    // machines, and does racing pay?
    let cmp = altx_prolog::simulate_race(&profiles, &OrSimConfig::default());
    println!(
        "\nsimulated on the calibrated kernel:\n  sequential DFS : {}\n  OR-parallel    : {}\n  speedup        : {:.2}x",
        cmp.sequential, cmp.parallel, cmp.speedup
    );

    // Granularity (§5.2): the same race on a *tiny* query loses to the
    // per-process overhead — 'how aggressively available parallelism is
    // exploited is a function of the overhead associated with maintaining
    // a process'.
    let tiny = profile_branches(&kb, "reach(0, 3)").expect("valid");
    let cmp_tiny = altx_prolog::simulate_race(&tiny, &OrSimConfig::default());
    println!(
        "\ngranularity check on the tiny query `reach(0, 3)`:\n  sequential DFS : {}\n  OR-parallel    : {}\n  speedup        : {:.2}x  (racing does not pay below the fork overhead)",
        cmp_tiny.sequential, cmp_tiny.parallel, cmp_tiny.speedup
    );
}
