//! Deadline-driven racing: the real-time angle of §7.
//!
//! "There is enough difference between the execution times of the
//! alternatives that choosing the fastest and killing the others is
//! worth the overhead … This may also be true in real-time systems,
//! where the sibling elimination can be carried out asynchronously with
//! respect to result delivery."
//!
//! Scenario: a controller must deliver a trajectory estimate before a
//! deadline. Three estimators race: an exact dynamic-programming solver
//! (slow, input-dependent), a heuristic (usually fast, occasionally
//! wrong — its guard rejects bad outputs), and a coarse fallback that
//! always succeeds. Racing delivers the best answer that fits in the
//! time budget; the `alt_wait` timeout turns a blown budget into an
//! explicit failure instead of a late answer.
//!
//! Run with: `cargo run --release --example deadline_race`

use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, EliminationPolicy, GuardSpec, Kernel, KernelConfig, Op, Program,
};

/// One control period: race the estimators under `deadline`, with the
/// exact solver needing `exact_ms` for this input.
fn control_period(
    deadline_ms: u64,
    exact_ms: u64,
    heuristic_ok: bool,
) -> (Option<&'static str>, SimDuration) {
    // Result quality is encoded by which alternative wins.
    let exact = Alternative::new(
        GuardSpec::Const(true),
        Program::new(vec![
            Op::Compute(SimDuration::from_millis(exact_ms)),
            Op::Write {
                addr: 0,
                data: vec![3],
            }, // quality 3: exact
        ]),
    );
    let heuristic = Alternative::new(
        // The heuristic's guard is its sanity check: on some inputs the
        // output is rejected (§5.1's acceptance-test idea).
        GuardSpec::Const(heuristic_ok),
        Program::new(vec![
            Op::Compute(SimDuration::from_millis(18)),
            Op::Write {
                addr: 0,
                data: vec![2],
            }, // quality 2: good
        ]),
    );
    let fallback = Alternative::new(
        GuardSpec::Const(true),
        Program::new(vec![
            Op::Compute(SimDuration::from_millis(60)),
            Op::Write {
                addr: 0,
                data: vec![1],
            }, // quality 1: coarse
        ]),
    );

    let block = AltBlockSpec::new(vec![exact, heuristic, fallback])
        .with_timeout(SimDuration::from_millis(deadline_ms))
        // Real-time: never wait for teardown before delivering.
        .with_elimination(EliminationPolicy::Asynchronous);

    let mut kernel = Kernel::new(KernelConfig::default());
    let root = kernel.spawn(Program::new(vec![Op::AltBlock(block)]), 32 * 1024);
    let report = kernel.run();
    let outcome = &report.block_outcomes(root)[0];
    let answer = match outcome.winner {
        Some(0) => Some("exact"),
        Some(1) => Some("heuristic"),
        Some(2) => Some("fallback"),
        _ => None,
    };
    (answer, outcome.elapsed())
}

fn main() {
    println!("deadline-driven estimator racing (deadline counted from alt_wait):\n");
    println!(
        "{:<28} {:>10} {:>12}  delivered",
        "input scenario", "deadline", "elapsed"
    );

    let scenarios = [
        ("easy input, exact fast", 200u64, 9u64, true),
        ("hard input, heuristic ok", 200, 500, true),
        ("hard input, heuristic bad", 200, 500, false),
        ("impossible deadline", 10, 500, false),
    ];

    let mut delivered = Vec::new();
    for (name, deadline, exact_ms, heuristic_ok) in scenarios {
        let (answer, elapsed) = control_period(deadline, exact_ms, heuristic_ok);
        delivered.push(answer);
        println!(
            "{name:<28} {deadline:>8}ms {:>12}  {}",
            format!("{elapsed}"),
            answer.unwrap_or("MISSED (timeout fired)")
        );
    }

    // The shape the paper predicts: quality degrades gracefully with
    // input difficulty, and the timeout converts a blown budget into an
    // explicit failure.
    assert_eq!(
        delivered[0],
        Some("exact"),
        "fast exact answer wins when available"
    );
    assert_eq!(
        delivered[1],
        Some("heuristic"),
        "heuristic covers hard inputs"
    );
    assert_eq!(
        delivered[2],
        Some("fallback"),
        "fallback covers heuristic failures"
    );
    assert_eq!(
        delivered[3], None,
        "a missed deadline is explicit, not late"
    );

    println!(
        "\nasynchronous elimination means delivery latency never includes sibling\n\
         teardown — the §3.2.1 policy doing real-time work. ✓"
    );
}
