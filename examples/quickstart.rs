//! Quickstart: the alternative block of Figure 1, executed three ways.
//!
//! ```text
//! ALTBEGIN
//!     ENSURE guard1 WITH method1 OR
//!     ENSURE guard2 WITH method2 OR
//!     ENSURE guard3 WITH method3 OR
//!     FAIL
//! END
//! ```
//!
//! Three methods compute the sum 1 + 2 + … + n. One is wrong (its guard
//! rejects it), two are right with very different costs. Each engine
//! selects at most one alternative; the observable semantics are
//! identical, only the execution time differs.
//!
//! Run with: `cargo run --release --example quickstart`

use altx::engine::{OrderedEngine, RandomEngine, ThreadedEngine};
use altx::{AddressSpace, AltBlock, Engine, PageSize};

const N: u64 = 1_000_000;

fn build_block() -> AltBlock<u64> {
    AltBlock::new()
        // Method 1: a deliberate off-by-one. Its guard (the trailing
        // check) rejects the result, so this alternative always fails.
        .alternative("buggy-loop", |_ws, _cancel| {
            let sum: u64 = (1..N).sum(); // forgot the last term
            (sum == N * (N + 1) / 2).then_some(sum)
        })
        // Method 2: correct but does the work element by element,
        // polling for cancellation as it goes.
        .alternative("summing-loop", |_ws, cancel| {
            let mut sum = 0u64;
            for chunk in (1..=N).collect::<Vec<_>>().chunks(10_000) {
                cancel.checkpoint()?;
                sum += chunk.iter().sum::<u64>();
            }
            Some(sum)
        })
        // Method 3: Gauss's closed form — almost always first.
        .alternative("closed-form", |_ws, _cancel| Some(N * (N + 1) / 2))
}

fn main() {
    let expected = N * (N + 1) / 2;
    println!("computing 1 + 2 + … + {N} (expect {expected})\n");

    // Ordered (recovery-block style): first listed success.
    let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
    let r = OrderedEngine::new().execute(&build_block(), &mut ws);
    println!(
        "ordered   : {:>9?}  winner = {:<14} ({} attempts, {:?})",
        r.value,
        r.winner_name.as_deref().unwrap_or("-"),
        r.attempts,
        r.wall
    );

    // Scheme B: arbitrary single selection (may pick the buggy one and
    // fail — run it a few times to see).
    let engine = RandomEngine::seeded(42);
    for trial in 0..3 {
        let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
        let r = engine.execute(&build_block(), &mut ws);
        println!(
            "random #{trial} : {:>9?}  winner = {:<14} ({:?})",
            r.value,
            r.winner_name.as_deref().unwrap_or("FAIL"),
            r.wall
        );
    }

    // Scheme C: race them all, fastest first.
    let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
    let r = ThreadedEngine::new().execute(&build_block(), &mut ws);
    println!(
        "threaded  : {:>9?}  winner = {:<14} ({} raced, {:?})",
        r.value,
        r.winner_name.as_deref().unwrap_or("-"),
        r.attempts,
        r.wall
    );

    assert_eq!(r.value, Some(expected));
    println!("\nall engines agree on the observable result: {expected}");
}
