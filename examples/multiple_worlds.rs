//! Multiple worlds: predicated IPC under speculation (§3.4.2).
//!
//! "An idea from science fiction, inspired by DeWitt's multiple worlds
//! notion, is appropriate here."
//!
//! A logging service receives messages from ordinary and *speculative*
//! processes. When a speculative alternate — which may yet be eliminated
//! — sends it a message, the service cannot simply accept it: if the
//! alternate loses its race, the message must never have been seen. The
//! kernel therefore **splits the receiver into two worlds**: one that
//! accepted the message (betting the sender wins) and one that rejected
//! it (betting the sender loses). When the race resolves, the
//! wrong-world copy is eliminated and no inconsistency was ever
//! observable.
//!
//! The example also shows the source restriction: a speculative process
//! blocks on source (non-idempotent device) access until its fate is
//! known.
//!
//! Run: `cargo run --release --example multiple_worlds`

use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program, Target, TraceEvent,
};

fn main() {
    let mut kernel = Kernel::new(KernelConfig::default());
    kernel.add_source(0, vec![b"operator-input".to_vec()]);

    // The logging service: receive one message, store it, then (as an
    // unconditional process) read from the operator console — a source.
    let logger = Program::new(vec![
        Op::RegisterName("logger".into()),
        Op::Recv { reg: 0 },
        Op::WriteFromRegister { reg: 0, addr: 0 },
        Op::SourcePull {
            source_id: 0,
            index: 0,
            reg: 1,
        },
        Op::WriteFromRegister { reg: 1, addr: 64 },
    ]);

    // A speculative block: the chatty alternate logs eagerly (before its
    // fate is known!) but computes slowly; the quiet alternate computes
    // fast and wins.
    let chatty = Program::new(vec![
        Op::Send {
            to: Target::Name("logger".into()),
            payload: b"chatty-was-here".to_vec(),
        },
        Op::Compute(SimDuration::from_millis(300)),
        Op::Send {
            to: Target::Name("logger".into()),
            payload: b"chatty-finished".to_vec(),
        },
    ]);
    let quiet = Program::new(vec![
        Op::Compute(SimDuration::from_millis(40)),
        Op::Send {
            to: Target::Name("logger".into()),
            payload: b"quiet-won-race!".to_vec(),
        },
    ]);

    let logger_pid = kernel.spawn(logger, 4 * 1024);
    let racer = kernel.spawn(
        Program::new(vec![
            Op::Compute(SimDuration::from_millis(5)), // let the logger register
            Op::AltBlock(AltBlockSpec::new(vec![
                Alternative::new(GuardSpec::Const(true), chatty),
                Alternative::new(GuardSpec::Const(true), quiet),
            ])),
        ]),
        4 * 1024,
    );

    let report = kernel.run();

    println!("trace of the speculative conversation:\n");
    for event in report.trace() {
        match event {
            TraceEvent::WorldSplit { .. }
            | TraceEvent::MessageAccepted { .. }
            | TraceEvent::MessageIgnored { .. }
            | TraceEvent::Synchronized { .. }
            | TraceEvent::Eliminated { .. }
            | TraceEvent::Spawned { .. } => println!("  {event}"),
            _ => {}
        }
    }

    let outcome = &report.block_outcomes(racer)[0];
    println!(
        "\nrace winner: alternative {} (quiet)",
        outcome.winner.expect("won") + 1
    );
    println!("worlds split: {}", report.stats.world_splits);

    // Which logger world survived? Collect every world descended from the
    // logger through splits; exactly one of them runs to completion, and
    // it holds the only consistent history: the chatty message must NOT
    // be visible anywhere, the quiet one must be logged.
    let mut worlds = std::collections::BTreeSet::from([logger_pid]);
    for event in report.trace() {
        if let TraceEvent::WorldSplit {
            accepting,
            rejecting,
            ..
        } = event
        {
            if worlds.contains(accepting) {
                worlds.insert(*rejecting);
            }
        }
    }
    let survivor = worlds
        .iter()
        .copied()
        .find(|&pid| report.exit(pid).map(|s| s.is_success()).unwrap_or(false))
        .expect("exactly one logger world completes");
    println!("logger worlds: {worlds:?}, survivor: {survivor}");

    let mut space = kernel
        .space(survivor)
        .expect("a logger world survives")
        .clone();
    let logged = space.read_vec(0, 15);
    let console = space.read_vec(64, 14);
    println!(
        "surviving logger state: logged={:?} console={:?}",
        String::from_utf8_lossy(&logged),
        String::from_utf8_lossy(&console)
    );

    assert_eq!(
        &logged, b"quiet-won-race!",
        "only the winner's message is real"
    );
    assert_eq!(
        &console, b"operator-input",
        "source read proceeded once unconditional"
    );
    println!(
        "\nno observer can tell the chatty alternate ever spoke — its world was\n\
         eliminated with it. ✓"
    );
}
