//! Racing database query plans — the paper's motivating case.
//!
//! "For problems where the required execution time is unpredictable,
//! such as database queries, this method can show substantial execution
//! time performance increases." (Abstract.)
//!
//! We build a small in-memory "table" inside the COW workspace and answer
//! the same query — *find the key of the record whose value equals a
//! target* — with three plans whose relative speed depends on the data:
//!
//! * full scan (fast when the match is early),
//! * reverse scan (fast when the match is late),
//! * index probe over a sorted projection (fast when it exists; here it
//!   is built lazily, so it pays a setup cost).
//!
//! None of the plans knows where the match is; the racing engine always
//! gets close to the best of the three without choosing in advance —
//! exactly the §4.2 case 3 situation where the input cannot be
//! partitioned by performance in advance.
//!
//! Run with: `cargo run --release --example query_race`

use altx::engine::ThreadedEngine;
use altx::{AddressSpace, AltBlock, Engine, PageSize};
use std::sync::Arc;

/// Number of fixed-width records in the table.
const ROWS: u32 = 400_000;
/// Bytes per record: 4-byte key + 4-byte value.
const RECORD: usize = 8;

/// Deterministic pseudo-shuffled value for each key.
fn value_of(key: u32) -> u32 {
    key.wrapping_mul(2_654_435_761) % ROWS
}

fn build_table(ws: &mut AddressSpace) {
    let mut buf = Vec::with_capacity(ROWS as usize * RECORD);
    for key in 0..ROWS {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&value_of(key).to_le_bytes());
    }
    ws.write(0, &buf);
}

fn record_at(ws: &mut AddressSpace, row: u32) -> (u32, u32) {
    let bytes = ws.read_vec(row as usize * RECORD, RECORD);
    (
        u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
        u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
    )
}

fn build_query_block(target: u32) -> AltBlock<u32> {
    AltBlock::new()
        .alternative("forward-scan", move |ws, cancel| {
            for row in 0..ROWS {
                if row % 4096 == 0 {
                    cancel.checkpoint()?;
                }
                let (key, value) = record_at(ws, row);
                if value == target {
                    return Some(key);
                }
            }
            None
        })
        .alternative("reverse-scan", move |ws, cancel| {
            for row in (0..ROWS).rev() {
                if row % 4096 == 0 {
                    cancel.checkpoint()?;
                }
                let (key, value) = record_at(ws, row);
                if value == target {
                    return Some(key);
                }
            }
            None
        })
        .alternative("build-index-then-probe", move |ws, cancel| {
            // Pay to build a value → key index, then answer instantly.
            let mut index: Vec<(u32, u32)> = Vec::with_capacity(ROWS as usize);
            for row in 0..ROWS {
                if row % 4096 == 0 {
                    cancel.checkpoint()?;
                }
                let (key, value) = record_at(ws, row);
                index.push((value, key));
            }
            index.sort_unstable();
            index
                .binary_search_by_key(&target, |&(v, _)| v)
                .ok()
                .map(|i| index[i].1)
        })
}

fn main() {
    let mut base = AddressSpace::zeroed(ROWS as usize * RECORD, PageSize::K4);
    build_table(&mut base);
    let base = Arc::new(base);

    println!("table: {ROWS} records, plans: forward scan / reverse scan / index probe\n");
    let engine = ThreadedEngine::new();

    for target_key in [1_234u32, 399_000, 200_000] {
        let target = value_of(target_key);
        let mut ws = (*base).clone();
        let result = engine.execute(&build_query_block(target), &mut ws);
        let key = result.value.expect("value exists in table");
        assert_eq!(value_of(key), target, "winner returned a valid key");
        println!(
            "value {target:>6} → key {key:>6}   winner: {:<22} wall: {:?}",
            result.winner_name.as_deref().unwrap_or("-"),
            result.wall
        );
    }

    println!("\nthe winning plan differs by data placement — no planner required");
}
