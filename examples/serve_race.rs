//! Speculation as a service: race two query strategies against a local
//! `altxd` under a deadline.
//!
//! The daemon is started in-process on an ephemeral port (exactly what
//! `bin/altxd` does behind its flag parsing), then a client sends RUN
//! requests over real loopback TCP. Each request names a workload from
//! the daemon's catalog; here `bimodal` plays the role of two query
//! strategies — an index probe that is usually fast and a sequential
//! scan with predictable-but-slow latency — and the reply says which
//! strategy won and how long the race took.
//!
//! The per-request deadline is the serving analogue of the kernel's
//! `alt_wait(timeout)` (§3.2): a budget that converts a too-slow race
//! into an explicit DeadlineExceeded instead of a late answer.
//!
//! Run with: `cargo run --release --example serve_race`

use altx_serve::frame::Response;
use altx_serve::{start, Client, ServerConfig};

fn main() {
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_depth: 32,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    println!("daemon up on {}\n", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Phase 1: race the two strategies with a generous 2 s budget.
    println!("{:<10} {:>12} {:>12}  winner", "query", "value", "latency");
    let mut wins = [0u32; 8];
    for arg in 0..12u64 {
        match client.run("bimodal", arg, 2_000).expect("reply") {
            Response::Ok {
                winner,
                winner_name,
                latency_us,
                value,
            } => {
                wins[winner as usize] += 1;
                println!("q{arg:<9} {value:>12} {latency_us:>10}us  {winner_name}");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    println!(
        "\nwin split across alternatives: {:?} — racing picked the faster\n\
         strategy per input instead of betting on one up front.",
        &wins[..2]
    );

    // Phase 2: an impossible budget. The 10-second sleep workload can
    // never meet a 50 ms deadline; the daemon answers promptly with an
    // explicit failure and the losing race observes cancellation.
    match client.run("sleep", 10_000, 50).expect("reply") {
        Response::DeadlineExceeded { latency_us } => {
            println!(
                "\nimpossible deadline: DeadlineExceeded after {}us (budget 50ms,\n\
                 work 10s) — the blown budget is explicit, not late. ✓",
                latency_us
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The connection is still healthy after a blown deadline.
    match client.run("trivial", 7, 0).expect("reply") {
        Response::Ok { value, .. } => assert_eq!(value, 7),
        other => panic!("expected Ok, got {other:?}"),
    }

    println!("\nserver-side view of the session:");
    print!("{}", client.stats_page().expect("stats"));

    server.shutdown();
    println!("daemon drained. ✓");
}
