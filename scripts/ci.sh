#!/usr/bin/env bash
# The full offline CI gate: build, test, format, and a live smoke run
# of the serving daemon. No network access required beyond loopback.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (tier-1) + workspace bins"
cargo build --release
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> smoke: altxd + altx-load (2s, trivial workload)"
SMOKE_ADDR=127.0.0.1:7979
SMOKE_OUT=$(mktemp /tmp/altx-smoke.XXXXXX.json)
./target/release/altxd --addr "$SMOKE_ADDR" --duration 4 &
ALTXD_PID=$!
trap 'kill "$ALTXD_PID" 2>/dev/null || true; rm -f "$SMOKE_OUT"' EXIT
sleep 0.3
./target/release/altx-load \
    --addr "$SMOKE_ADDR" --workload trivial --clients 4 --duration 2 \
    --out "$SMOKE_OUT"
wait "$ALTXD_PID"
grep -q '"requests"' "$SMOKE_OUT" || {
    echo "smoke run produced no bench artifact" >&2
    exit 1
}
rm -f "$SMOKE_OUT"
trap - EXIT

echo "==> CI gate passed"
