#!/usr/bin/env bash
# The full offline CI gate: build, test, format, and a live smoke run
# of the serving daemon. No network access required beyond loopback.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (tier-1) + workspace bins"
cargo build --release
cargo build --release --workspace

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> chaos soak (pinned seed, own process)"
ALTX_CHAOS_SEED=0xC0FFEE cargo test -q -p altx-serve --test chaos_soak

echo "==> cluster chaos soak (pinned seed, 3 in-process nodes, wire faults + healing partition)"
ALTX_CHAOS_SEED=0xC0FFEE cargo test -q -p altx-serve --test cluster_chaos

echo "==> race scheduler suite (hedged launches + batching)"
cargo test -q -p altx-serve --test sched

echo "==> deadline scheduler suite (EDF order, lanes, stealing, admission, drain)"
cargo test -q -p altx-serve --test edf

echo "==> placement suite (fixture sysfs topologies, pin fallback, pin-off zero-syscall gate)"
cargo test -q -p altx-serve --test topo

echo "==> sharded reactor suite (reuseport spread, drain, per-shard telemetry)"
cargo test -q -p altx-serve --test shards

echo "==> reply-ring suite (exhaustion, wraparound, fan-out, disabled path)"
cargo test -q -p altx-serve --test ring

echo "==> buffer pool suite (leak/cap properties + >90% steady-state hit rate)"
cargo test -q -p altx-serve --test bufpool

echo "==> bench regression gate: altxd + altx-load vs committed baseline"
BASELINE=BENCH_serve_throughput.json
SMOKE_ADDR=127.0.0.1:7979
SMOKE_OUT=$(mktemp /tmp/altx-smoke.XXXXXX.json)
# The committed baseline is a mixed fast/slow run with the deadline
# scheduler on: tight-deadline `trivial` beside infeasible `sleep`
# fodder, lanes + admission + stealing enabled. The gated metric is
# *goodput* — ok replies inside their deadline — so a scheduling
# regression (sleep work starving the fast class, admission not
# shedding) fails the gate even when raw throughput looks healthy.
# --pin matches the committed baseline's recorded configuration: shards
# on disjoint core sets where the kernel allows it, gracefully unpinned
# where it does not (the gate's 70% floor absorbs either outcome).
./target/release/altxd --addr "$SMOKE_ADDR" --duration 8 --shards 4 --pin \
    --lanes 'rt:trivial;batch:sleep' --admission --steal &
ALTXD_PID=$!
trap 'kill "$ALTXD_PID" 2>/dev/null || true; rm -f "$SMOKE_OUT"' EXIT
sleep 0.3
# Pipelined load (--threads) keeps the generator off the daemon's CPUs;
# this matches the committed baseline's configuration so the floors
# compare like with like.
./target/release/altx-load \
    --addr "$SMOKE_ADDR" --workload trivial:50,sleep:25 --clients 8 --threads 1 \
    --duration 6 --out "$SMOKE_OUT" --hist-diff "$BASELINE"
wait "$ALTXD_PID"

# Extract "throughput_rps": N.N with no JSON tooling (offline CI).
rps() {
    grep -o '"throughput_rps": *[0-9.]*' "$1" | grep -o '[0-9.]*$'
}
BASE_RPS=$(rps "$BASELINE")
FRESH_RPS=$(rps "$SMOKE_OUT")
[ -n "$BASE_RPS" ] && [ -n "$FRESH_RPS" ] || {
    echo "bench gate: missing throughput_rps (baseline='$BASE_RPS' fresh='$FRESH_RPS')" >&2
    exit 1
}
# Fail when fresh throughput drops below 70% of the committed baseline.
# The bound is loose on purpose: the gate catches wreckage (an accidental
# lock on the request path), not noise.
awk -v base="$BASE_RPS" -v fresh="$FRESH_RPS" 'BEGIN {
    printf "bench gate: baseline %.1f rps, fresh %.1f rps (floor %.1f)\n",
        base, fresh, base * 0.70
    exit !(fresh >= base * 0.70)
}' || {
    echo "bench gate: throughput regressed more than 30% vs $BASELINE" >&2
    exit 1
}

# Goodput gate: replies that beat their deadline, per second — the
# primary scheduler metric. Two bounds: the absolute rate gets the same
# 70% wreckage floor as throughput (this box's run-to-run CPU noise is
# ±30%, an absolute 10% bound would gate on the weather), and the
# goodput *fraction* — goodput/throughput, the share of ok replies that
# beat their deadline, which divides the CPU noise out — must hold
# within 10% of the committed baseline's fraction. A scheduler
# regression (fast class queueing behind slow work, admission not
# shedding) moves the fraction; a slow CI box does not.
gp() {
    grep -o '"goodput_rps": *[0-9.]*' "$1" | grep -o '[0-9.]*$'
}
BASE_GP=$(gp "$BASELINE")
FRESH_GP=$(gp "$SMOKE_OUT")
[ -n "$BASE_GP" ] && [ -n "$FRESH_GP" ] || {
    echo "bench gate: missing goodput_rps (baseline='$BASE_GP' fresh='$FRESH_GP')" >&2
    exit 1
}
awk -v base="$BASE_GP" -v fresh="$FRESH_GP" 'BEGIN {
    printf "bench gate: baseline %.1f goodput rps, fresh %.1f (floor %.1f)\n",
        base, fresh, base * 0.70
    exit !(fresh >= base * 0.70)
}' || {
    echo "bench gate: goodput regressed more than 30% vs $BASELINE" >&2
    exit 1
}
awk -v brps="$BASE_RPS" -v bgp="$BASE_GP" -v frps="$FRESH_RPS" -v fgp="$FRESH_GP" 'BEGIN {
    bfrac = bgp / brps; ffrac = fgp / frps
    printf "bench gate: goodput fraction baseline %.4f, fresh %.4f (floor %.4f)\n",
        bfrac, ffrac, bfrac * 0.90
    exit !(ffrac >= bfrac * 0.90)
}' || {
    echo "bench gate: goodput fraction regressed more than 10% vs $BASELINE" >&2
    exit 1
}

# p99 latency gate: the fresh tail must stay within 20% of the
# committed baseline. Tolerant of a baseline that predates the field.
p99() {
    grep -o '"p99_us": *[0-9]*' "$1" | grep -o '[0-9]*$'
}
BASE_P99=$(p99 "$BASELINE")
FRESH_P99=$(p99 "$SMOKE_OUT")
if [ -n "$BASE_P99" ] && [ -n "$FRESH_P99" ]; then
    awk -v base="$BASE_P99" -v fresh="$FRESH_P99" 'BEGIN {
        printf "bench gate: baseline p99 %d us, fresh p99 %d us (ceiling %.1f)\n",
            base, fresh, base * 1.20
        exit !(fresh <= base * 1.20)
    }' || {
        echo "bench gate: p99 latency regressed more than 20% vs $BASELINE" >&2
        exit 1
    }
else
    echo "bench gate: p99 gate skipped (baseline='$BASE_P99' fresh='$FRESH_P99')"
fi

# Ring smoke, from the live daemon's counters (scraped into the report
# by altx-load): steady-state replies must ride the ring — hits cover
# at least 90% of requests — and spills stay a rounding error (the
# stats pages altx-load itself fetches are the expected spillers).
jfield() {
    grep -o "\"$2\": *[0-9]*" "$1" | grep -o '[0-9]*$'
}
RING_HITS=$(jfield "$SMOKE_OUT" server_ring_hits)
RING_SPILLS=$(jfield "$SMOKE_OUT" server_ring_spills)
SMOKE_REQS=$(jfield "$SMOKE_OUT" requests)
echo "ring smoke: ring_hits=$RING_HITS ring_spills=$RING_SPILLS requests=$SMOKE_REQS"
[ -n "$RING_HITS" ] && [ "$RING_HITS" -gt 0 ] || {
    echo "ring smoke: the reply ring was never hit" >&2
    exit 1
}
awk -v hits="$RING_HITS" -v reqs="$SMOKE_REQS" 'BEGIN {
    exit !(hits >= reqs * 0.90)
}' || {
    echo "ring smoke: ring_hits=$RING_HITS below 90% of requests=$SMOKE_REQS" >&2
    exit 1
}
awk -v spills="${RING_SPILLS:-0}" -v reqs="$SMOKE_REQS" 'BEGIN {
    exit !(spills <= reqs * 0.01 + 16)
}' || {
    echo "ring smoke: ring_spills=$RING_SPILLS is not bounded (requests=$SMOKE_REQS)" >&2
    exit 1
}
rm -f "$SMOKE_OUT"
trap - EXIT

echo "==> batching smoke: coalesced burst, asserted via live STATS counters"
BATCH_ADDR=127.0.0.1:7983
BATCH_OUT=$(mktemp /tmp/altx-batch.XXXXXX.json)
# 2 ms coalescing window on both sides: the daemon batches, the load
# generator aligns its arg stream so identical keys actually collide.
# Hedging is on too, so the suppression counters run live.
./target/release/altxd --addr "$BATCH_ADDR" --batch-window-us 2000 --hedge \
    --hedge-min-samples 10 --duration 6 &
BATCH_PID=$!
trap 'kill "$BATCH_PID" 2>/dev/null || true; rm -f "$BATCH_OUT"' EXIT
sleep 0.3
./target/release/altx-load \
    --addr "$BATCH_ADDR" --workload trivial --clients 8 \
    --duration 3 --batch-window-us 2000 --out "$BATCH_OUT"
wait "$BATCH_PID"
# The server_* fields are scraped from the live daemon's STATS page by
# altx-load after the run.
counter() {
    grep -o "\"$1\": *[0-9]*" "$BATCH_OUT" | grep -o '[0-9]*$'
}
COALESCED=$(counter server_requests_coalesced)
SUPPRESSED=$(counter server_launches_suppressed)
echo "batching smoke: requests_coalesced=$COALESCED launches_suppressed=$SUPPRESSED"
[ -n "$COALESCED" ] && [ "$COALESCED" -gt 0 ] || {
    echo "batching smoke: a burst of identical requests never coalesced" >&2
    exit 1
}
[ -n "$SUPPRESSED" ] && [ "$SUPPRESSED" -gt 0 ] || {
    echo "batching smoke: hedging never suppressed a launch" >&2
    exit 1
}
rm -f "$BATCH_OUT"
trap - EXIT

echo "==> admission smoke: infeasible burst is shed at the door, not timed out in the queue"
ADM_ADDR=127.0.0.1:7984
ADM_OUT=$(mktemp /tmp/altx-adm.XXXXXX.json)
# The sleep workload parks an alternative for `arg` ms — far past any
# 25 ms deadline, so every admitted request is a guaranteed timeout.
# With --admission the service table converges on ~deadline within its
# 16-sample warm-up and everything after is shed with OVERLOADED.
./target/release/altxd --addr "$ADM_ADDR" --workers 2 --admission --duration 6 &
ADM_PID=$!
trap 'kill "$ADM_PID" 2>/dev/null || true; rm -f "$ADM_OUT"' EXIT
sleep 0.3
./target/release/altx-load \
    --addr "$ADM_ADDR" --workload sleep --deadline-ms 25 --clients 4 \
    --duration 4 --out "$ADM_OUT"
wait "$ADM_PID"
adm() {
    grep -o "\"$1\": *[0-9]*" "$ADM_OUT" | grep -o '[0-9]*$' | head -1
}
SHEDS=$(adm server_sheds_at_admission)
TIMEOUTS=$(adm deadline_exceeded)
echo "admission smoke: sheds_at_admission=$SHEDS deadline_exceeded=$TIMEOUTS"
[ -n "$SHEDS" ] && [ "$SHEDS" -gt 0 ] || {
    echo "admission smoke: an infeasible burst was never shed at admission" >&2
    exit 1
}
# Only the warm-up (first ~16 service samples plus whatever was already
# in flight) may time out; after that the gate must shed instead.
[ -n "$TIMEOUTS" ] && [ "$TIMEOUTS" -le 100 ] || {
    echo "admission smoke: $TIMEOUTS requests timed out in the queue (want near zero: admission should shed them)" >&2
    exit 1
}
rm -f "$ADM_OUT"
trap - EXIT

echo "==> scheduler A/B gate: mixed fast/slow, FIFO defaults vs EDF+lanes+admission+steal"
AB_ADDR_FIFO=127.0.0.1:7985
AB_ADDR_SCHED=127.0.0.1:7986
AB_OUT_FIFO=$(mktemp /tmp/altx-ab-fifo.XXXXXX.json)
AB_OUT_SCHED=$(mktemp /tmp/altx-ab-sched.XXXXXX.json)
# Same mixed load against both daemons: a 50 ms-deadline fast class
# round-robined with infeasible 40 ms-deadline sleep fodder. Under
# FIFO the sleeps occupy the two workers and the fast class queues
# behind them; the scheduler daemon sheds the sleeps at admission and
# lanes the fast class, so its goodput must be decisively higher and
# its tail decisively lower. Each daemon gets a short priming run
# first so the measured window starts with a warm service table (the
# comparison is steady-state scheduling, not warm-up).
AB_LOAD="--workload trivial:50,sleep:40 --clients 8 --duration 4"
./target/release/altxd --addr "$AB_ADDR_FIFO" --workers 2 --shards 2 --duration 9 &
AB_PID_FIFO=$!
trap 'kill "$AB_PID_FIFO" 2>/dev/null || true; rm -f "$AB_OUT_FIFO" "$AB_OUT_SCHED"' EXIT
sleep 0.3
./target/release/altx-load --addr "$AB_ADDR_FIFO" --workload sleep:40 \
    --clients 4 --duration 2 --out /dev/null >/dev/null
./target/release/altx-load --addr "$AB_ADDR_FIFO" $AB_LOAD --out "$AB_OUT_FIFO"
wait "$AB_PID_FIFO"
./target/release/altxd --addr "$AB_ADDR_SCHED" --workers 2 --shards 2 --duration 9 \
    --lanes 'rt:trivial;batch:sleep' --admission --steal &
AB_PID_SCHED=$!
trap 'kill "$AB_PID_SCHED" 2>/dev/null || true; rm -f "$AB_OUT_FIFO" "$AB_OUT_SCHED"' EXIT
sleep 0.3
./target/release/altx-load --addr "$AB_ADDR_SCHED" --workload sleep:40 \
    --clients 4 --duration 2 --out /dev/null >/dev/null
./target/release/altx-load --addr "$AB_ADDR_SCHED" $AB_LOAD --out "$AB_OUT_SCHED"
wait "$AB_PID_SCHED"
abf() {
    grep -o "\"$2\": *[0-9.]*" "$1" | grep -o '[0-9.]*$' | head -1
}
GP_FIFO=$(abf "$AB_OUT_FIFO" goodput_rps)
GP_SCHED=$(abf "$AB_OUT_SCHED" goodput_rps)
P999_FIFO=$(abf "$AB_OUT_FIFO" p999_us)
P999_SCHED=$(abf "$AB_OUT_SCHED" p999_us)
STEALS=$(abf "$AB_OUT_SCHED" server_steals)
echo "scheduler A/B: goodput fifo=$GP_FIFO sched=$GP_SCHED | p99.9 fifo=$P999_FIFO sched=$P999_SCHED | steals=$STEALS"
awk -v fifo="$GP_FIFO" -v sched="$GP_SCHED" 'BEGIN {
    exit !(sched >= fifo * 1.2)
}' || {
    echo "scheduler A/B: goodput under the deadline scheduler ($GP_SCHED) must beat FIFO ($GP_FIFO) by >=20%" >&2
    exit 1
}
awk -v fifo="$P999_FIFO" -v sched="$P999_SCHED" 'BEGIN {
    exit !(sched < fifo)
}' || {
    echo "scheduler A/B: p99.9 under the deadline scheduler ($P999_SCHED us) must drop below FIFO ($P999_FIFO us)" >&2
    exit 1
}
rm -f "$AB_OUT_FIFO" "$AB_OUT_SCHED"
trap - EXIT

echo "==> placement A/B smoke: identical load, --pin off vs on"
PIN_ADDR_OFF=127.0.0.1:7987
PIN_ADDR_ON=127.0.0.1:7988
PIN_OUT_OFF=$(mktemp /tmp/altx-pin-off.XXXXXX.json)
PIN_OUT_ON=$(mktemp /tmp/altx-pin-on.XXXXXX.json)
# The same closed-loop run against two daemons that differ only in
# --pin. Correctness must be identical (pinning is placement, not
# semantics): zero errors on both sides, real completions on both
# sides. The performance bound is deliberately tolerant — on a noisy
# shared box (or a container whose kernel refuses sched_setaffinity)
# pinning cannot be required to *win*, only to never wreck the daemon:
# the pinned run must hold 70% of the unpinned run's goodput.
PIN_LOAD="--workload trivial --clients 8 --threads 1 --duration 4"
./target/release/altxd --addr "$PIN_ADDR_OFF" --shards 2 --steal --duration 7 &
PIN_PID_OFF=$!
trap 'kill "$PIN_PID_OFF" 2>/dev/null || true; rm -f "$PIN_OUT_OFF" "$PIN_OUT_ON"' EXIT
sleep 0.3
./target/release/altx-load --addr "$PIN_ADDR_OFF" $PIN_LOAD --out "$PIN_OUT_OFF"
wait "$PIN_PID_OFF"
./target/release/altxd --addr "$PIN_ADDR_ON" --shards 2 --steal --pin --duration 7 &
PIN_PID_ON=$!
trap 'kill "$PIN_PID_ON" 2>/dev/null || true; rm -f "$PIN_OUT_OFF" "$PIN_OUT_ON"' EXIT
sleep 0.3
./target/release/altx-load --addr "$PIN_ADDR_ON" $PIN_LOAD --out "$PIN_OUT_ON"
wait "$PIN_PID_ON"
pinf() {
    grep -o "\"$2\": *[0-9.]*" "$1" | grep -o '[0-9.]*$' | head -1
}
OK_OFF=$(grep -o '"ok": *[0-9]*' "$PIN_OUT_OFF" | head -1 | grep -o '[0-9]*$')
OK_ON=$(grep -o '"ok": *[0-9]*' "$PIN_OUT_ON" | head -1 | grep -o '[0-9]*$')
ERR_OFF=$(grep -o '"errors": *[0-9]*' "$PIN_OUT_OFF" | head -1 | grep -o '[0-9]*$')
ERR_ON=$(grep -o '"errors": *[0-9]*' "$PIN_OUT_ON" | head -1 | grep -o '[0-9]*$')
GP_OFF=$(pinf "$PIN_OUT_OFF" goodput_rps)
GP_ON=$(pinf "$PIN_OUT_ON" goodput_rps)
PINNED=$(pinf "$PIN_OUT_ON" server_pinned_shards)
echo "placement A/B: ok off=$OK_OFF on=$OK_ON | errors off=$ERR_OFF on=$ERR_ON | goodput off=$GP_OFF on=$GP_ON | pinned_shards=$PINNED"
[ -n "$OK_OFF" ] && [ "$OK_OFF" -gt 0 ] && [ -n "$OK_ON" ] && [ "$OK_ON" -gt 0 ] || {
    echo "placement A/B: both runs must complete requests (off=$OK_OFF on=$OK_ON)" >&2
    exit 1
}
[ "${ERR_OFF:-0}" -eq 0 ] && [ "${ERR_ON:-0}" -eq 0 ] || {
    echo "placement A/B: pinning must not change correctness (errors off=$ERR_OFF on=$ERR_ON)" >&2
    exit 1
}
awk -v off="$GP_OFF" -v on="$GP_ON" 'BEGIN {
    printf "placement A/B: goodput floor %.1f, pinned run %.1f\n", off * 0.70, on
    exit !(on >= off * 0.70)
}' || {
    echo "placement A/B: --pin dropped goodput below 70% of the unpinned run" >&2
    exit 1
}
rm -f "$PIN_OUT_OFF" "$PIN_OUT_ON"
trap - EXIT

echo "==> idle-connection smoke: 1024 idle conns on O(shards + workers) threads"
IDLE_ADDR=127.0.0.1:7981
IDLE_OUT=$(mktemp /tmp/altx-idle.XXXXXX.log)
./target/release/altxd --addr "$IDLE_ADDR" --workers 4 --shards 4 &
IDLE_PID=$!
trap 'kill "$IDLE_PID" 2>/dev/null || true; rm -f "$IDLE_OUT"' EXIT
sleep 0.3
# 8 load clients plus 1024 held-open idle connections. The load runs
# long enough to sample the daemon's thread count while every
# connection is open; under the sharded reactor that count is
# O(shards + workers), not O(connections).
./target/release/altx-load \
    --addr "$IDLE_ADDR" --workload trivial --clients 8 --connections 1032 \
    --duration 4 --out /dev/null >"$IDLE_OUT" &
LOAD_PID=$!
for _ in $(seq 1 100); do
    grep -q 'holding' "$IDLE_OUT" && break
    sleep 0.1
done
grep -q 'holding' "$IDLE_OUT" || {
    echo "idle smoke: altx-load never reported held connections" >&2
    exit 1
}
THREADS=$(awk '/^Threads:/{print $2}' "/proc/$IDLE_PID/status")
CONNS=$(grep -o 'conns_open=[0-9]*' "$IDLE_OUT" | grep -o '[0-9]*$')
wait "$LOAD_PID"
kill "$IDLE_PID" 2>/dev/null || true
wait "$IDLE_PID" 2>/dev/null || true
echo "idle smoke: daemon threads=$THREADS with conns_open=$CONNS"
[ -n "$CONNS" ] && [ "$CONNS" -ge 1024 ] || {
    echo "idle smoke: expected >=1024 open connections, daemon reported '$CONNS'" >&2
    exit 1
}
[ -n "$THREADS" ] && [ "$THREADS" -le 16 ] || {
    echo "idle smoke: idle connections must not cost threads (threads=$THREADS, want <=16)" >&2
    exit 1
}
rm -f "$IDLE_OUT"
trap - EXIT

echo "==> cluster smoke: 3-node mesh, one peer SIGKILLed mid-run"
C1=127.0.0.1:7991
C2=127.0.0.1:7992
C3=127.0.0.1:7993
CL_OUT1=$(mktemp /tmp/altx-cluster1.XXXXXX.json)
CL_OUT2=$(mktemp /tmp/altx-cluster2.XXXXXX.json)
# Full mesh, aggressive exploration so remote dispatch happens from the
# first seconds. The daemons run until killed; the victim gets SIGKILL
# mid-run — no drain, no goodbye, exactly the failure being tested.
./target/release/altxd --addr "$C1" --workers 2 \
    --peer "$C2" --peer "$C3" --peer-explore-every 2 &
CL_PID1=$!
./target/release/altxd --addr "$C2" --workers 2 \
    --peer "$C1" --peer "$C3" --peer-explore-every 2 &
CL_PID2=$!
./target/release/altxd --addr "$C3" --workers 2 \
    --peer "$C1" --peer "$C2" --peer-explore-every 2 &
CL_PID3=$!
trap 'kill -9 "$CL_PID1" "$CL_PID2" "$CL_PID3" 2>/dev/null || true; rm -f "$CL_OUT1" "$CL_OUT2"' EXIT
sleep 0.5
# Mixed load on the two survivors-to-be. The closed loop is itself the
# liveness assertion: a request stranded by the dead peer would hang a
# client and fail the run; a bounded deadline caps how long any one
# race may take instead.
./target/release/altx-load --addr "$C1" --workload lognormal --clients 4 \
    --deadline-ms 2000 --duration 6 --peers "$C2,$C3" --out "$CL_OUT1" &
CL_LOAD1=$!
./target/release/altx-load --addr "$C2" --workload trivial --clients 4 \
    --deadline-ms 2000 --duration 6 --peers "$C1,$C3" --out "$CL_OUT2" &
CL_LOAD2=$!
sleep 2
kill -9 "$CL_PID3"
wait "$CL_LOAD1"
wait "$CL_LOAD2"
jcount() {
    grep -o "\"$2\": *[0-9]*" "$1" | grep -o '[0-9]*$'
}
W1=$(jcount "$CL_OUT1" remote_wins)
W2=$(jcount "$CL_OUT2" remote_wins)
D1=$(jcount "$CL_OUT1" remote_dispatched)
D2=$(jcount "$CL_OUT2" remote_dispatched)
echo "cluster smoke: remote_dispatched=$((D1 + D2)) remote_wins=$((W1 + W2)) (survivor sums)"
[ $((D1 + D2)) -gt 0 ] || {
    echo "cluster smoke: no alternative was ever shipped to a peer" >&2
    exit 1
}
[ $((W1 + W2)) -gt 0 ] || {
    echo "cluster smoke: survivors never won a race remotely" >&2
    exit 1
}
kill -9 "$CL_PID1" "$CL_PID2" 2>/dev/null || true
wait "$CL_PID1" 2>/dev/null || true
wait "$CL_PID2" 2>/dev/null || true
rm -f "$CL_OUT1" "$CL_OUT2"
trap - EXIT

echo "==> CI gate passed"
