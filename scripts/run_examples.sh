#!/usr/bin/env bash
# Builds and runs every repository example; each asserts its own
# invariants, so this doubles as an end-to-end smoke suite.
set -euo pipefail
cd "$(dirname "$0")/.."

examples=(quickstart query_race recovery_blocks prolog_or multiple_worlds deadline_race serve_race)
cargo build --release --examples

for ex in "${examples[@]}"; do
  echo
  echo "================================================================"
  echo "  example: $ex"
  echo "================================================================"
  "./target/release/examples/$ex"
done

echo
echo "all ${#examples[@]} examples ran their assertions clean."
