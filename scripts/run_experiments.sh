#!/usr/bin/env bash
# Runs every paper-reproduction experiment (E1-E13) in sequence.
# Each binary asserts its shape claims; the script fails fast on any
# reproduction regression. See EXPERIMENTS.md for expected output.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p altx-bench --bins

experiments=(
  exp_fig2_trace        # E1  Figures 1 & 2
  exp_table1_pi         # E2  §4.2 PI table
  exp_threaded_pi       # E2b the same table on real host threads
  exp_fork_overhead     # E3  §4.4 fork latency
  exp_page_copy_sweep   # E4  §4.4 copy rates + write fraction
  exp_rfork             # E5  §4.4 remote fork
  exp_speedup_vs_variance # E6 dispersion & crossover
  exp_recovery_blocks   # E7  §5.1 distributed recovery blocks
  exp_prolog_or         # E8  §5.2 OR-parallel Prolog
  exp_sibling_elim      # E9  §3.2.1 elimination policies
  exp_consensus         # E10 majority consensus
  exp_replication       # E11 §6 replication extension
  exp_ablation_cow      # E12 COW vs eager ablation
  exp_schemes           # E13 §4.2 scheme comparison
  exp_ablation_predicates # E14 §3.3 predication-design ablation
  exp_timeout_choice    # E15 §3.2 alt_wait timeout choice
)

for exp in "${experiments[@]}"; do
  echo
  echo "================================================================"
  echo "  $exp"
  echo "================================================================"
  "./target/release/$exp"
done

echo
echo "all ${#experiments[@]} experiments reproduced their paper shapes."
