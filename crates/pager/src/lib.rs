//! # altx-pager — copy-on-write paged memory
//!
//! The paper (§3.1–3.3) buries all *sink* state under a single-level-store
//! page abstraction: "Sink state is manipulated as fixed-size pages. All
//! sink state can be represented in this fashion." Speculative alternates
//! inherit their parent's page map and copy pages lazily on write
//! (Bobrow's TENEX-style copy-on-write), which is what bounds the
//! combinatorial explosion of speculative state.
//!
//! This crate implements that substrate:
//!
//! * [`Page`] / [`PageRef`] — fixed-size pages, structurally shared via
//!   reference counting.
//! * [`PageMap`] — a process's page table; cloning a map is O(#pages)
//!   pointer copies, writing through it copies at page granularity.
//! * [`AddressSpace`] — byte-addressed reads/writes over a page map, with
//!   full copy-on-write accounting.
//! * [`MachineProfile`] — the *cost model*: fork latency and page-copy
//!   service rates calibrated to the constants the paper measured on the
//!   AT&T 3B2/310 and HP 9000/350 (§4.4), so the kernel can charge
//!   realistic virtual time for every operation.
//!
//! # Example
//!
//! ```
//! use altx_pager::{AddressSpace, MachineProfile};
//!
//! let profile = MachineProfile::hp_9000_350();
//! let mut parent = AddressSpace::zeroed(320 * 1024, profile.page_size());
//! parent.write(0, b"original");
//!
//! // COW fork: child shares every page with the parent.
//! let mut child = parent.cow_fork();
//! child.write(0, b"speculat");
//!
//! assert_eq!(&parent.read_vec(0, 8), b"original");
//! assert_eq!(&child.read_vec(0, 8), b"speculat");
//! assert_eq!(child.stats().pages_copied, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod map;
pub mod page;
pub mod space;

pub use machine::MachineProfile;
pub use map::PageMap;
pub use page::{Page, PageIndex, PageRef, PageSize};
pub use space::{AddressSpace, CowStats};
