//! Page maps: per-process page tables with copy-on-write.
//!
//! A [`PageMap`] is the unit of state inheritance in the paper's design:
//! `alt_spawn` gives each alternate a clone of the parent's map (O(#pages)
//! pointer copies — no data copied), and `alt_wait` absorbs the winner by
//! *atomically replacing* the parent's map with the child's (§3.2). Writes
//! through a map copy the underlying page only if it is shared.

use crate::page::{is_shared, Page, PageIndex, PageRef, PageSize};
use std::fmt;
use std::sync::Arc;

/// A page table mapping page indices to (possibly shared) physical pages.
///
/// Unmapped slots read as zero and are materialized on first write
/// (zero-fill-on-demand), mirroring sparse address spaces.
#[derive(Clone)]
pub struct PageMap {
    page_size: PageSize,
    slots: Vec<Option<PageRef>>,
}

impl PageMap {
    /// Creates a map with `npages` unmapped (zero) slots.
    pub fn new(page_size: PageSize, npages: usize) -> Self {
        PageMap {
            page_size,
            slots: vec![None; npages],
        }
    }

    /// The page size of every page in this map.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of slots (mapped or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots currently backed by a physical page.
    pub fn mapped_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of mapped slots whose physical page is shared with another
    /// map (i.e., a write would trigger a COW copy).
    pub fn shared_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(is_shared))
            .count()
    }

    /// Grows the map to at least `npages` slots (new slots unmapped).
    pub fn grow_to(&mut self, npages: usize) {
        if npages > self.slots.len() {
            self.slots.resize(npages, None);
        }
    }

    /// Reads the page at `idx`. Returns `None` for unmapped (zero) pages.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn page(&self, idx: PageIndex) -> Option<&PageRef> {
        self.slots[idx.0].as_ref()
    }

    /// Maps `page` at `idx`, replacing any existing mapping.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or the page size disagrees with
    /// the map's.
    pub fn map_page(&mut self, idx: PageIndex, page: PageRef) {
        assert_eq!(
            page.len(),
            self.page_size.bytes(),
            "page size mismatch: page is {} bytes, map uses {}",
            page.len(),
            self.page_size
        );
        self.slots[idx.0] = Some(page);
    }

    /// Returns a writable view of the page at `idx`, performing a COW copy
    /// (or zero-fill materialization) if needed. The boolean is `true` iff
    /// a *copy of existing data* was performed — the chargeable COW fault.
    ///
    /// Zero-fill of an unmapped page is reported separately (`false`)
    /// because §4.4's copy rate counts only real page copies.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn page_mut(&mut self, idx: PageIndex) -> (&mut Page, CowOutcome) {
        let slot = &mut self.slots[idx.0];
        match slot {
            None => {
                *slot = Some(Arc::new(Page::zeroed(self.page_size)));
                let page = Arc::get_mut(slot.as_mut().expect("just set")).expect("fresh arc");
                (page, CowOutcome::ZeroFilled)
            }
            Some(arc) => {
                let outcome = if is_shared(arc) {
                    CowOutcome::Copied
                } else {
                    CowOutcome::AlreadyPrivate
                };
                // Arc::make_mut clones the Page iff it is shared.
                let page = Arc::make_mut(arc);
                (page, outcome)
            }
        }
    }

    /// Iterates over `(index, page)` for all mapped slots.
    pub fn iter(&self) -> impl Iterator<Item = (PageIndex, &PageRef)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PageIndex(i), p)))
    }

    /// Total bytes of *private* (unshared) physical memory attributable to
    /// this map alone.
    pub fn private_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|p| !is_shared(p)))
            .count()
            * self.page_size.bytes()
    }

    /// Flattens the whole map into a byte vector (unmapped pages read as
    /// zero). Used by checkpointing and by tests as an oracle.
    pub fn flatten(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.slots.len() * self.page_size.bytes()];
        for (idx, page) in self.iter() {
            let start = idx.0 * self.page_size.bytes();
            out[start..start + self.page_size.bytes()].copy_from_slice(page.as_bytes());
        }
        out
    }

    /// Set of page indices whose physical pages differ from `other`'s
    /// (pointer inequality — the cheap "what did the child write" check
    /// used at synchronization).
    pub fn divergent_pages(&self, other: &PageMap) -> Vec<PageIndex> {
        let n = self.slots.len().max(other.slots.len());
        (0..n)
            .filter(|&i| {
                let a = self.slots.get(i).and_then(|s| s.as_ref());
                let b = other.slots.get(i).and_then(|s| s.as_ref());
                match (a, b) {
                    (None, None) => false,
                    (Some(x), Some(y)) => !Arc::ptr_eq(x, y),
                    _ => true,
                }
            })
            .map(PageIndex)
            .collect()
    }
}

/// What [`PageMap::page_mut`] had to do to make the page writable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CowOutcome {
    /// The page was already private; no work done.
    AlreadyPrivate,
    /// A shared page was physically copied (chargeable COW fault).
    Copied,
    /// An unmapped page was materialized as zeros (zero-fill fault).
    ZeroFilled,
}

impl fmt::Debug for PageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PageMap({} slots, {} mapped, {} shared, page={})",
            self.slots.len(),
            self.mapped_count(),
            self.shared_count(),
            self.page_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_map() -> PageMap {
        PageMap::new(PageSize::new(4), 8)
    }

    #[test]
    fn new_map_is_unmapped() {
        let m = small_map();
        assert_eq!(m.len(), 8);
        assert_eq!(m.mapped_count(), 0);
        assert_eq!(m.shared_count(), 0);
        assert!(m.page(PageIndex(3)).is_none());
    }

    #[test]
    fn zero_fill_on_first_write() {
        let mut m = small_map();
        let (page, outcome) = m.page_mut(PageIndex(2));
        assert_eq!(outcome, CowOutcome::ZeroFilled);
        page.as_bytes_mut()[0] = 9;
        assert_eq!(m.mapped_count(), 1);
        assert_eq!(m.page(PageIndex(2)).unwrap().as_bytes()[0], 9);
    }

    #[test]
    fn clone_shares_then_cow_copies() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0)).0.as_bytes_mut()[0] = 1;

        let mut child = parent.clone();
        assert_eq!(parent.shared_count(), 1);
        assert_eq!(child.shared_count(), 1);

        let (page, outcome) = child.page_mut(PageIndex(0));
        assert_eq!(outcome, CowOutcome::Copied);
        page.as_bytes_mut()[0] = 2;

        // Parent unchanged; both now private.
        assert_eq!(parent.page(PageIndex(0)).unwrap().as_bytes()[0], 1);
        assert_eq!(child.page(PageIndex(0)).unwrap().as_bytes()[0], 2);
        assert_eq!(parent.shared_count(), 0);
        assert_eq!(child.shared_count(), 0);
    }

    #[test]
    fn second_write_to_private_page_is_free() {
        let mut m = small_map();
        m.page_mut(PageIndex(1));
        let (_, outcome) = m.page_mut(PageIndex(1));
        assert_eq!(outcome, CowOutcome::AlreadyPrivate);
    }

    #[test]
    fn flatten_reads_zero_for_unmapped() {
        let mut m = small_map();
        m.page_mut(PageIndex(1))
            .0
            .as_bytes_mut()
            .copy_from_slice(&[1, 2, 3, 4]);
        let flat = m.flatten();
        assert_eq!(flat.len(), 32);
        assert_eq!(&flat[0..4], &[0, 0, 0, 0]);
        assert_eq!(&flat[4..8], &[1, 2, 3, 4]);
    }

    #[test]
    fn divergent_pages_detects_child_writes() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0));
        parent.page_mut(PageIndex(5));
        let mut child = parent.clone();
        assert!(child.divergent_pages(&parent).is_empty());

        child.page_mut(PageIndex(5)); // COW copy → pointer diverges
        child.page_mut(PageIndex(7)); // new mapping
        assert_eq!(
            child.divergent_pages(&parent),
            vec![PageIndex(5), PageIndex(7)]
        );
    }

    #[test]
    fn private_bytes_counts_only_unshared() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0));
        parent.page_mut(PageIndex(1));
        assert_eq!(parent.private_bytes(), 8);
        let _child = parent.clone();
        assert_eq!(parent.private_bytes(), 0);
    }

    #[test]
    fn grow_to_extends_with_unmapped() {
        let mut m = small_map();
        m.grow_to(16);
        assert_eq!(m.len(), 16);
        assert!(m.page(PageIndex(15)).is_none());
        m.grow_to(4); // shrink requests are ignored
        assert_eq!(m.len(), 16);
    }

    #[test]
    #[should_panic(expected = "page size mismatch")]
    fn map_page_rejects_wrong_size() {
        let mut m = small_map();
        m.map_page(PageIndex(0), Arc::new(Page::zeroed(PageSize::new(8))));
    }

    #[test]
    fn debug_shows_counts() {
        let m = small_map();
        let s = format!("{m:?}");
        assert!(s.contains("8 slots"), "{s}");
    }
}
