//! Page maps: per-process page tables with copy-on-write.
//!
//! A [`PageMap`] is the unit of state inheritance in the paper's design:
//! `alt_spawn` gives each alternate a clone of the parent's map (O(#pages)
//! pointer copies — no data copied), and `alt_wait` absorbs the winner by
//! *atomically replacing* the parent's map with the child's (§3.2). Writes
//! through a map copy the underlying page only if it is shared.

use crate::page::{is_shared, Page, PageIndex, PageRef, PageSize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A page table mapping page indices to (possibly shared) physical pages.
///
/// Unmapped slots read as zero and are materialized on first write
/// (zero-fill-on-demand), mirroring sparse address spaces.
///
/// The occupancy counters are *maintained*, not scanned:
/// [`PageMap::mapped_count`] is an exact field updated by every mapping
/// mutation (these all take `&mut self`), and [`PageMap::shared_count`]
/// keeps an upper-bound *hint* so the common "nothing shared" case — a
/// map that was never cloned, or whose sharing has fully decayed —
/// answers without touching a single slot. Both used to be O(#pages)
/// scans sitting inside the kernel's cost-charging loop.
pub struct PageMap {
    page_size: PageSize,
    slots: Vec<Option<PageRef>>,
    /// Exact number of `Some` slots.
    mapped: usize,
    /// Packed `(epoch << 32) | shared_hint`. The hint is an upper bound
    /// on how many mapped pages *might* be shared: sharedness lives in
    /// `Arc` strong counts that other maps decay invisibly (dropping a
    /// sibling privatizes our pages without telling us), so an exact
    /// maintained count is impossible — but sharing can only *increase*
    /// through this map's own clone/`map_page`, which bump the hint.
    /// Hint 0 therefore proves nothing is shared. The epoch counts
    /// clones; [`PageMap::shared_count`] publishes a scan result only
    /// if no clone raced it (single compare-exchange on the packed
    /// word), so a refreshed hint can never understate sharing.
    sharing: AtomicU64,
}

/// Packs a clone epoch and a shared-pages hint into one atomic word.
fn pack(epoch: u32, hint: usize) -> u64 {
    (u64::from(epoch) << 32) | hint.min(u32::MAX as usize) as u64
}

/// Inverse of [`pack`].
fn unpack(state: u64) -> (u32, usize) {
    ((state >> 32) as u32, (state & u64::from(u32::MAX)) as usize)
}

impl Clone for PageMap {
    /// Cloning re-shares every mapped page — both maps now hold a ref to
    /// each one — so both sides' hints become exactly `mapped`. The
    /// parent's epoch is bumped *after* the refs are cloned, through
    /// `&self`, so a concurrently scanning [`PageMap::shared_count`]
    /// cannot publish a stale lower hint over the top of this clone.
    fn clone(&self) -> Self {
        let slots = self.slots.clone();
        let mapped = self.mapped;
        let _ = self
            .sharing
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                Some(pack(unpack(s).0.wrapping_add(1), mapped))
            });
        PageMap {
            page_size: self.page_size,
            slots,
            mapped,
            sharing: AtomicU64::new(pack(0, mapped)),
        }
    }
}

impl PageMap {
    /// Creates a map with `npages` unmapped (zero) slots.
    pub fn new(page_size: PageSize, npages: usize) -> Self {
        PageMap {
            page_size,
            slots: vec![None; npages],
            mapped: 0,
            sharing: AtomicU64::new(0),
        }
    }

    /// The page size of every page in this map.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of slots (mapped or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots currently backed by a physical page. O(1): the
    /// count is maintained by every mutation.
    pub fn mapped_count(&self) -> usize {
        debug_assert_eq!(
            self.mapped,
            self.slots.iter().filter(|s| s.is_some()).count(),
            "maintained mapped count drifted from the slots"
        );
        self.mapped
    }

    /// Number of mapped slots whose physical page is shared with another
    /// map (i.e., a write would trigger a COW copy). O(1) whenever the
    /// hint proves nothing can be shared (never cloned, or a previous
    /// call observed full decay); otherwise one scan that refreshes the
    /// hint for the next caller.
    pub fn shared_count(&self) -> usize {
        let state = self.sharing.load(Ordering::Acquire);
        let (epoch, hint) = unpack(state);
        if hint == 0 {
            return 0;
        }
        let n = self
            .slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(is_shared))
            .count();
        // Publish the observed count as the new hint — but only if no
        // clone raced the scan (the epoch half of the word is part of
        // the compare), because a racing clone re-shares every page.
        let _ = self.sharing.compare_exchange(
            state,
            pack(epoch, n),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
        n
    }

    /// Grows the map to at least `npages` slots (new slots unmapped).
    pub fn grow_to(&mut self, npages: usize) {
        if npages > self.slots.len() {
            self.slots.resize(npages, None);
        }
    }

    /// Reads the page at `idx`. Returns `None` for unmapped (zero) pages.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn page(&self, idx: PageIndex) -> Option<&PageRef> {
        self.slots[idx.0].as_ref()
    }

    /// Maps `page` at `idx`, replacing any existing mapping.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or the page size disagrees with
    /// the map's.
    pub fn map_page(&mut self, idx: PageIndex, page: PageRef) {
        assert_eq!(
            page.len(),
            self.page_size.bytes(),
            "page size mismatch: page is {} bytes, map uses {}",
            page.len(),
            self.page_size
        );
        // An incoming ref the caller still holds elsewhere is shared on
        // arrival; raise the hint so shared_count can't miss it.
        if is_shared(&page) {
            let s = self.sharing.get_mut();
            let (epoch, hint) = unpack(*s);
            *s = pack(epoch, hint.saturating_add(1));
        }
        self.mapped += usize::from(self.slots[idx.0].is_none());
        self.slots[idx.0] = Some(page);
    }

    /// Returns a writable view of the page at `idx`, performing a COW copy
    /// (or zero-fill materialization) if needed. The boolean is `true` iff
    /// a *copy of existing data* was performed — the chargeable COW fault.
    ///
    /// Zero-fill of an unmapped page is reported separately (`false`)
    /// because §4.4's copy rate counts only real page copies.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn page_mut(&mut self, idx: PageIndex) -> (&mut Page, CowOutcome) {
        let slot = &mut self.slots[idx.0];
        match slot {
            None => {
                self.mapped += 1;
                *slot = Some(Arc::new(Page::zeroed(self.page_size)));
                let page = Arc::get_mut(slot.as_mut().expect("just set")).expect("fresh arc");
                (page, CowOutcome::ZeroFilled)
            }
            Some(arc) => {
                let outcome = if is_shared(arc) {
                    CowOutcome::Copied
                } else {
                    CowOutcome::AlreadyPrivate
                };
                if outcome == CowOutcome::Copied {
                    // The copy privatizes this page: one fewer shared
                    // page, so the upper bound can come down with it.
                    let s = self.sharing.get_mut();
                    let (epoch, hint) = unpack(*s);
                    *s = pack(epoch, hint.saturating_sub(1));
                }
                // Arc::make_mut clones the Page iff it is shared.
                let page = Arc::make_mut(arc);
                (page, outcome)
            }
        }
    }

    /// Iterates over `(index, page)` for all mapped slots.
    pub fn iter(&self) -> impl Iterator<Item = (PageIndex, &PageRef)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PageIndex(i), p)))
    }

    /// Total bytes of *private* (unshared) physical memory attributable to
    /// this map alone.
    pub fn private_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|p| !is_shared(p)))
            .count()
            * self.page_size.bytes()
    }

    /// Flattens the whole map into a byte vector (unmapped pages read as
    /// zero). Used by checkpointing and by tests as an oracle.
    pub fn flatten(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.slots.len() * self.page_size.bytes()];
        for (idx, page) in self.iter() {
            let start = idx.0 * self.page_size.bytes();
            out[start..start + self.page_size.bytes()].copy_from_slice(page.as_bytes());
        }
        out
    }

    /// Set of page indices whose physical pages differ from `other`'s
    /// (pointer inequality — the cheap "what did the child write" check
    /// used at synchronization).
    pub fn divergent_pages(&self, other: &PageMap) -> Vec<PageIndex> {
        let n = self.slots.len().max(other.slots.len());
        (0..n)
            .filter(|&i| {
                let a = self.slots.get(i).and_then(|s| s.as_ref());
                let b = other.slots.get(i).and_then(|s| s.as_ref());
                match (a, b) {
                    (None, None) => false,
                    (Some(x), Some(y)) => !Arc::ptr_eq(x, y),
                    _ => true,
                }
            })
            .map(PageIndex)
            .collect()
    }
}

/// What [`PageMap::page_mut`] had to do to make the page writable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CowOutcome {
    /// The page was already private; no work done.
    AlreadyPrivate,
    /// A shared page was physically copied (chargeable COW fault).
    Copied,
    /// An unmapped page was materialized as zeros (zero-fill fault).
    ZeroFilled,
}

impl fmt::Debug for PageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PageMap({} slots, {} mapped, {} shared, page={})",
            self.slots.len(),
            self.mapped_count(),
            self.shared_count(),
            self.page_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_map() -> PageMap {
        PageMap::new(PageSize::new(4), 8)
    }

    #[test]
    fn new_map_is_unmapped() {
        let m = small_map();
        assert_eq!(m.len(), 8);
        assert_eq!(m.mapped_count(), 0);
        assert_eq!(m.shared_count(), 0);
        assert!(m.page(PageIndex(3)).is_none());
    }

    #[test]
    fn zero_fill_on_first_write() {
        let mut m = small_map();
        let (page, outcome) = m.page_mut(PageIndex(2));
        assert_eq!(outcome, CowOutcome::ZeroFilled);
        page.as_bytes_mut()[0] = 9;
        assert_eq!(m.mapped_count(), 1);
        assert_eq!(m.page(PageIndex(2)).unwrap().as_bytes()[0], 9);
    }

    #[test]
    fn clone_shares_then_cow_copies() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0)).0.as_bytes_mut()[0] = 1;

        let mut child = parent.clone();
        assert_eq!(parent.shared_count(), 1);
        assert_eq!(child.shared_count(), 1);

        let (page, outcome) = child.page_mut(PageIndex(0));
        assert_eq!(outcome, CowOutcome::Copied);
        page.as_bytes_mut()[0] = 2;

        // Parent unchanged; both now private.
        assert_eq!(parent.page(PageIndex(0)).unwrap().as_bytes()[0], 1);
        assert_eq!(child.page(PageIndex(0)).unwrap().as_bytes()[0], 2);
        assert_eq!(parent.shared_count(), 0);
        assert_eq!(child.shared_count(), 0);
    }

    #[test]
    fn second_write_to_private_page_is_free() {
        let mut m = small_map();
        m.page_mut(PageIndex(1));
        let (_, outcome) = m.page_mut(PageIndex(1));
        assert_eq!(outcome, CowOutcome::AlreadyPrivate);
    }

    #[test]
    fn flatten_reads_zero_for_unmapped() {
        let mut m = small_map();
        m.page_mut(PageIndex(1))
            .0
            .as_bytes_mut()
            .copy_from_slice(&[1, 2, 3, 4]);
        let flat = m.flatten();
        assert_eq!(flat.len(), 32);
        assert_eq!(&flat[0..4], &[0, 0, 0, 0]);
        assert_eq!(&flat[4..8], &[1, 2, 3, 4]);
    }

    #[test]
    fn divergent_pages_detects_child_writes() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0));
        parent.page_mut(PageIndex(5));
        let mut child = parent.clone();
        assert!(child.divergent_pages(&parent).is_empty());

        child.page_mut(PageIndex(5)); // COW copy → pointer diverges
        child.page_mut(PageIndex(7)); // new mapping
        assert_eq!(
            child.divergent_pages(&parent),
            vec![PageIndex(5), PageIndex(7)]
        );
    }

    #[test]
    fn private_bytes_counts_only_unshared() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0));
        parent.page_mut(PageIndex(1));
        assert_eq!(parent.private_bytes(), 8);
        let _child = parent.clone();
        assert_eq!(parent.private_bytes(), 0);
    }

    #[test]
    fn grow_to_extends_with_unmapped() {
        let mut m = small_map();
        m.grow_to(16);
        assert_eq!(m.len(), 16);
        assert!(m.page(PageIndex(15)).is_none());
        m.grow_to(4); // shrink requests are ignored
        assert_eq!(m.len(), 16);
    }

    #[test]
    #[should_panic(expected = "page size mismatch")]
    fn map_page_rejects_wrong_size() {
        let mut m = small_map();
        m.map_page(PageIndex(0), Arc::new(Page::zeroed(PageSize::new(8))));
    }

    #[test]
    fn debug_shows_counts() {
        let m = small_map();
        let s = format!("{m:?}");
        assert!(s.contains("8 slots"), "{s}");
    }

    /// Oracle check: the maintained counters must agree with a fresh
    /// scan after every kind of mutation.
    #[test]
    fn maintained_counts_match_scan_oracle() {
        fn oracle_mapped(m: &PageMap) -> usize {
            (0..m.len())
                .filter(|&i| m.page(PageIndex(i)).is_some())
                .count()
        }
        fn oracle_shared(m: &PageMap) -> usize {
            (0..m.len())
                .filter(|&i| m.page(PageIndex(i)).is_some_and(is_shared))
                .count()
        }
        let mut m = small_map();
        m.page_mut(PageIndex(0)); // zero-fill
        m.page_mut(PageIndex(0)); // already private
        m.map_page(PageIndex(1), Arc::new(Page::zeroed(PageSize::new(4))));
        m.map_page(PageIndex(1), Arc::new(Page::zeroed(PageSize::new(4)))); // replace
        m.grow_to(12);
        assert_eq!(m.mapped_count(), oracle_mapped(&m));
        assert_eq!(m.shared_count(), oracle_shared(&m));

        let mut child = m.clone();
        assert_eq!(m.mapped_count(), oracle_mapped(&m));
        assert_eq!(m.shared_count(), oracle_shared(&m));
        assert_eq!(child.shared_count(), oracle_shared(&child));

        child.page_mut(PageIndex(0)); // COW copy
        child.page_mut(PageIndex(2)); // fresh zero-fill in the child
        assert_eq!(child.mapped_count(), oracle_mapped(&child));
        assert_eq!(child.shared_count(), oracle_shared(&child));

        drop(child); // sharing decays invisibly; scan path must refresh
        assert_eq!(m.shared_count(), oracle_shared(&m));
        assert_eq!(m.shared_count(), 0); // second call takes the O(1) path
    }

    /// `map_page` with a ref the caller still holds must register as
    /// shared even though the map was never cloned.
    #[test]
    fn map_page_with_held_ref_counts_as_shared() {
        let mut m = small_map();
        let page = Arc::new(Page::zeroed(PageSize::new(4)));
        m.map_page(PageIndex(0), Arc::clone(&page));
        assert_eq!(m.shared_count(), 1);
        drop(page);
        assert_eq!(m.shared_count(), 0);
    }

    /// A second clone after full COW divergence must re-arm the hint.
    #[test]
    fn reclone_after_divergence_rearms_hint() {
        let mut parent = small_map();
        parent.page_mut(PageIndex(0));
        let mut child = parent.clone();
        child.page_mut(PageIndex(0)); // diverge completely
        assert_eq!(parent.shared_count(), 0); // hint settles at 0
        let _second = parent.clone();
        assert_eq!(parent.shared_count(), 1);
    }
}
