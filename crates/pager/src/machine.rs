//! Machine cost profiles.
//!
//! §4.4 of the paper reports the measured constants this reproduction
//! calibrates against:
//!
//! * **AT&T 3B2/310** — `fork()` of a 320 KB address space with no memory
//!   updates: ≈ 31 ms; page-copy service rate: 326 × 2 KB pages/second.
//! * **HP 9000/350** — same fork: ≈ 12 ms; 1034 × 4 KB pages/second.
//!
//! A [`MachineProfile`] turns those constants into a chargeable cost model
//! for the simulated kernel: fork setup, per-page map inheritance,
//! copy-on-write faults, context switches, and process teardown. The split
//! between the fixed and per-page components of `fork()` is a calibration
//! choice (the paper reports only the 320 KB total); the defaults are
//! chosen so that the headline 31 ms / 12 ms numbers are reproduced
//! *exactly* for a 320 KB address space (experiment E3) and fork time
//! scales linearly with address-space size as in the companion
//! measurements (Smith & Maguire 1988).

use crate::page::PageSize;
use altx_des::SimDuration;
use std::fmt;

/// The cost model for one machine: every virtual-time charge the simulated
/// kernel and pager make is derived from these constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineProfile {
    name: &'static str,
    page_size: PageSize,
    fork_fixed: SimDuration,
    fork_per_page: SimDuration,
    page_copy: SimDuration,
    page_fault: SimDuration,
    context_switch: SimDuration,
    syscall: SimDuration,
    teardown_fixed: SimDuration,
    teardown_per_page: SimDuration,
}

impl MachineProfile {
    /// The AT&T 3B2/310 profile (WE 32101 MMU, 2 KB pages).
    ///
    /// Calibration: `fork(320K) = 7 ms + 160 pages × 150 µs = 31 ms`;
    /// page-copy service time `1 s / 326 ≈ 3.067 ms` per 2 KB page.
    pub fn att_3b2_310() -> Self {
        MachineProfile {
            name: "AT&T 3B2/310",
            page_size: PageSize::K2,
            fork_fixed: SimDuration::from_micros(7_000),
            fork_per_page: SimDuration::from_micros(150),
            page_copy: SimDuration::from_nanos(1_000_000_000 / 326),
            page_fault: SimDuration::from_micros(350),
            context_switch: SimDuration::from_micros(500),
            syscall: SimDuration::from_micros(200),
            teardown_fixed: SimDuration::from_micros(3_000),
            teardown_per_page: SimDuration::from_micros(20),
        }
    }

    /// The HP 9000/350 profile (HP-UX, 4 KB pages).
    ///
    /// Calibration: `fork(320K) = 4 ms + 80 pages × 100 µs = 12 ms`;
    /// page-copy service time `1 s / 1034 ≈ 0.967 ms` per 4 KB page.
    pub fn hp_9000_350() -> Self {
        MachineProfile {
            name: "HP 9000/350",
            page_size: PageSize::K4,
            fork_fixed: SimDuration::from_micros(4_000),
            fork_per_page: SimDuration::from_micros(100),
            page_copy: SimDuration::from_nanos(1_000_000_000 / 1034),
            page_fault: SimDuration::from_micros(150),
            context_switch: SimDuration::from_micros(250),
            syscall: SimDuration::from_micros(100),
            teardown_fixed: SimDuration::from_micros(1_500),
            teardown_per_page: SimDuration::from_micros(10),
        }
    }

    /// A "frictionless" profile with zero overhead everywhere. Useful for
    /// isolating algorithmic effects from system costs (the paper's
    /// idealized Scheme C without τ(overhead)).
    pub fn frictionless() -> Self {
        MachineProfile {
            name: "frictionless",
            page_size: PageSize::K4,
            fork_fixed: SimDuration::ZERO,
            fork_per_page: SimDuration::ZERO,
            page_copy: SimDuration::ZERO,
            page_fault: SimDuration::ZERO,
            context_switch: SimDuration::ZERO,
            syscall: SimDuration::ZERO,
            teardown_fixed: SimDuration::ZERO,
            teardown_per_page: SimDuration::ZERO,
        }
    }

    /// Builder-style profile for experiments that sweep individual costs.
    pub fn custom(name: &'static str, page_size: PageSize) -> MachineProfileBuilder {
        MachineProfileBuilder {
            profile: MachineProfile {
                name,
                page_size,
                ..MachineProfile::frictionless()
            },
        }
    }

    /// Human-readable machine name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The machine's page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Total virtual-time cost of a `fork()` that inherits `npages` page
    /// map entries and copies nothing (pure COW fork).
    pub fn fork_cost(&self, npages: usize) -> SimDuration {
        self.fork_fixed + self.fork_per_page * npages as u64
    }

    /// Cost of servicing one copy-on-write fault (trap + page copy).
    pub fn cow_fault_cost(&self) -> SimDuration {
        self.page_fault + self.page_copy
    }

    /// Cost of copying `npages` pages (faults included).
    pub fn copy_cost(&self, npages: usize) -> SimDuration {
        self.cow_fault_cost() * npages as u64
    }

    /// Pure per-page copy service time (no fault overhead) — the quantity
    /// whose reciprocal §4.4 reports as pages/second.
    pub fn page_copy_time(&self) -> SimDuration {
        self.page_copy
    }

    /// Page-copy service rate in pages/second (§4.4's metric).
    pub fn page_copy_rate(&self) -> f64 {
        1e9 / self.page_copy.as_nanos() as f64
    }

    /// Trap-only page fault cost (e.g., zero-fill or protection update).
    pub fn page_fault_cost(&self) -> SimDuration {
        self.page_fault
    }

    /// Cost of one context switch.
    pub fn context_switch_cost(&self) -> SimDuration {
        self.context_switch
    }

    /// Fixed kernel-entry cost of one system call.
    pub fn syscall_cost(&self) -> SimDuration {
        self.syscall
    }

    /// Cost of tearing down a process holding `npages` page-map entries
    /// (sibling elimination charges this per eliminated alternate).
    pub fn teardown_cost(&self, npages: usize) -> SimDuration {
        self.teardown_fixed + self.teardown_per_page * npages as u64
    }
}

impl Default for MachineProfile {
    /// Defaults to the HP 9000/350, the faster of the paper's machines.
    fn default() -> Self {
        MachineProfile::hp_9000_350()
    }
}

impl fmt::Display for MachineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} pages, fork(320K)={}, copy={:.0} pages/s)",
            self.name,
            self.page_size,
            self.fork_cost(self.page_size.pages_for(320 * 1024)),
            self.page_copy_rate()
        )
    }
}

/// Builder for custom [`MachineProfile`]s, used by cost-sweep experiments.
#[derive(Debug, Clone)]
pub struct MachineProfileBuilder {
    profile: MachineProfile,
}

impl MachineProfileBuilder {
    /// Sets the fixed fork cost.
    pub fn fork_fixed(mut self, d: SimDuration) -> Self {
        self.profile.fork_fixed = d;
        self
    }

    /// Sets the per-inherited-page fork cost.
    pub fn fork_per_page(mut self, d: SimDuration) -> Self {
        self.profile.fork_per_page = d;
        self
    }

    /// Sets the per-page copy service time.
    pub fn page_copy(mut self, d: SimDuration) -> Self {
        self.profile.page_copy = d;
        self
    }

    /// Sets the trap-only fault cost.
    pub fn page_fault(mut self, d: SimDuration) -> Self {
        self.profile.page_fault = d;
        self
    }

    /// Sets the context-switch cost.
    pub fn context_switch(mut self, d: SimDuration) -> Self {
        self.profile.context_switch = d;
        self
    }

    /// Sets the syscall entry cost.
    pub fn syscall(mut self, d: SimDuration) -> Self {
        self.profile.syscall = d;
        self
    }

    /// Sets the process teardown costs.
    pub fn teardown(mut self, fixed: SimDuration, per_page: SimDuration) -> Self {
        self.profile.teardown_fixed = fixed;
        self.profile.teardown_per_page = per_page;
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> MachineProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn att_3b2_fork_calibration_matches_paper() {
        // §4.4: "a fork() (with no memory updates to a 320K address space)
        // takes about 31 milliseconds" on the 3B2.
        let m = MachineProfile::att_3b2_310();
        let pages = m.page_size().pages_for(320 * 1024);
        assert_eq!(pages, 160);
        assert_eq!(m.fork_cost(pages), SimDuration::from_millis(31));
    }

    #[test]
    fn hp_fork_calibration_matches_paper() {
        // §4.4: "under the same conditions the HP requires about 12 ms".
        let m = MachineProfile::hp_9000_350();
        let pages = m.page_size().pages_for(320 * 1024);
        assert_eq!(pages, 80);
        assert_eq!(m.fork_cost(pages), SimDuration::from_millis(12));
    }

    #[test]
    fn page_copy_rates_match_paper() {
        // §4.4: 326 2K-pages/s on the 3B2, 1034 4K-pages/s on the HP.
        let att = MachineProfile::att_3b2_310();
        let hp = MachineProfile::hp_9000_350();
        assert!(
            (att.page_copy_rate() - 326.0).abs() < 1.0,
            "{}",
            att.page_copy_rate()
        );
        assert!(
            (hp.page_copy_rate() - 1034.0).abs() < 1.0,
            "{}",
            hp.page_copy_rate()
        );
    }

    #[test]
    fn fork_scales_linearly_with_address_space() {
        let m = MachineProfile::att_3b2_310();
        let f1 = m.fork_cost(100);
        let f2 = m.fork_cost(200);
        // Doubling the page count doubles the variable component.
        assert_eq!(f2 - f1, m.fork_cost(100) - m.fork_cost(0));
    }

    #[test]
    fn cow_fault_includes_trap_and_copy() {
        let m = MachineProfile::hp_9000_350();
        assert_eq!(m.cow_fault_cost(), m.page_fault_cost() + m.page_copy_time());
        assert_eq!(m.copy_cost(10), m.cow_fault_cost() * 10);
    }

    #[test]
    fn frictionless_is_free() {
        let m = MachineProfile::frictionless();
        assert_eq!(m.fork_cost(1000), SimDuration::ZERO);
        assert_eq!(m.copy_cost(1000), SimDuration::ZERO);
        assert_eq!(m.teardown_cost(1000), SimDuration::ZERO);
    }

    #[test]
    fn builder_overrides_fields() {
        let m = MachineProfile::custom("test", PageSize::K2)
            .fork_fixed(SimDuration::from_millis(1))
            .fork_per_page(SimDuration::from_micros(10))
            .page_copy(SimDuration::from_millis(2))
            .build();
        assert_eq!(m.name(), "test");
        assert_eq!(m.fork_cost(100), SimDuration::from_millis(2));
        assert_eq!(m.page_copy_time(), SimDuration::from_millis(2));
    }

    #[test]
    fn display_mentions_name() {
        let s = MachineProfile::att_3b2_310().to_string();
        assert!(s.contains("3B2"), "{s}");
        assert!(s.contains("31.000ms"), "{s}");
    }
}
