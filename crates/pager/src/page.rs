//! Fixed-size pages with structural sharing.
//!
//! A [`Page`] owns its bytes; a [`PageRef`] is an `Arc<Page>` so that many
//! speculative address spaces can reference one physical page. A write to
//! a shared page triggers copy-on-write in [`PageMap`](crate::PageMap).

use std::fmt;
use std::sync::Arc;

/// The page size of an address space, in bytes.
///
/// The paper's machines used 2 KiB (AT&T 3B2/310) and 4 KiB (HP 9000/350)
/// pages; both are provided as constants. Arbitrary positive sizes are
/// allowed for experiments on granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageSize(usize);

impl PageSize {
    /// 2 KiB — the AT&T 3B2/310 page size (§4.4).
    pub const K2: PageSize = PageSize(2 * 1024);
    /// 4 KiB — the HP 9000/350 page size (§4.4).
    pub const K4: PageSize = PageSize(4 * 1024);

    /// Creates a page size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(bytes: usize) -> Self {
        assert!(bytes > 0, "PageSize must be positive");
        PageSize(bytes)
    }

    /// Size in bytes.
    pub const fn bytes(self) -> usize {
        self.0
    }

    /// Number of pages needed to hold `len` bytes (ceiling division).
    pub const fn pages_for(self, len: usize) -> usize {
        len.div_ceil(self.0)
    }

    /// Splits a byte address into `(page index, offset within page)`.
    pub const fn split_addr(self, addr: usize) -> (PageIndex, usize) {
        (PageIndex(addr / self.0), addr % self.0)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1024) {
            write!(f, "{}K", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Index of a page within an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageIndex(pub usize);

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A physical page: a fixed-size run of bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl Page {
    /// An all-zero page of the given size.
    pub fn zeroed(size: PageSize) -> Self {
        Page {
            bytes: vec![0u8; size.bytes()].into_boxed_slice(),
        }
    }

    /// A page initialized from `data`, zero-padded to `size`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the page.
    pub fn from_bytes(size: PageSize, data: &[u8]) -> Self {
        assert!(
            data.len() <= size.bytes(),
            "page data ({} bytes) exceeds page size {}",
            data.len(),
            size
        );
        let mut bytes = vec![0u8; size.bytes()];
        bytes[..data.len()].copy_from_slice(data);
        Page {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Size of this page in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Pages are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read access to the page contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Write access to the page contents (only reachable once unshared).
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// True iff every byte is zero (used to detect sparse pages).
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Page({} bytes, zero={})",
            self.bytes.len(),
            self.is_zero()
        )
    }
}

/// A shared reference to a physical page.
///
/// `PageRef::strong_count` > 1 means the page is shared between address
/// spaces (or with the zero-page pool) and must be copied before writing.
pub type PageRef = Arc<Page>;

/// Returns true iff the page is shared (write requires a copy).
pub fn is_shared(page: &PageRef) -> bool {
    Arc::strong_count(page) > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_math() {
        let ps = PageSize::K2;
        assert_eq!(ps.bytes(), 2048);
        assert_eq!(ps.pages_for(0), 0);
        assert_eq!(ps.pages_for(1), 1);
        assert_eq!(ps.pages_for(2048), 1);
        assert_eq!(ps.pages_for(2049), 2);
        assert_eq!(ps.pages_for(320 * 1024), 160);
        assert_eq!(PageSize::K4.pages_for(320 * 1024), 80);
    }

    #[test]
    fn split_addr() {
        let ps = PageSize::new(100);
        assert_eq!(ps.split_addr(0), (PageIndex(0), 0));
        assert_eq!(ps.split_addr(99), (PageIndex(0), 99));
        assert_eq!(ps.split_addr(100), (PageIndex(1), 0));
        assert_eq!(ps.split_addr(250), (PageIndex(2), 50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_size_panics() {
        PageSize::new(0);
    }

    #[test]
    fn zeroed_page_is_zero() {
        let p = Page::zeroed(PageSize::K2);
        assert_eq!(p.len(), 2048);
        assert!(p.is_zero());
        assert!(!p.is_empty());
    }

    #[test]
    fn from_bytes_pads() {
        let p = Page::from_bytes(PageSize::new(8), &[1, 2, 3]);
        assert_eq!(p.as_bytes(), &[1, 2, 3, 0, 0, 0, 0, 0]);
        assert!(!p.is_zero());
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn from_bytes_too_long_panics() {
        Page::from_bytes(PageSize::new(2), &[1, 2, 3]);
    }

    #[test]
    fn sharing_detection() {
        let a: PageRef = Arc::new(Page::zeroed(PageSize::K2));
        assert!(!is_shared(&a));
        let b = Arc::clone(&a);
        assert!(is_shared(&a));
        drop(b);
        assert!(!is_shared(&a));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PageSize::K2.to_string(), "2K");
        assert_eq!(PageSize::new(100).to_string(), "100B");
        assert_eq!(PageIndex(7).to_string(), "page#7");
    }
}
