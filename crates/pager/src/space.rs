//! Byte-addressed address spaces over page maps, with COW accounting.
//!
//! [`AddressSpace`] is what a simulated process actually owns: a
//! [`PageMap`] plus cumulative [`CowStats`]. The two operations the
//! paper's design leans on are:
//!
//! * [`AddressSpace::cow_fork`] — the `alt_spawn` state inheritance: the
//!   child gets a structural copy of the page map, all pages shared.
//! * [`AddressSpace::absorb`] — the `alt_wait` rendezvous: the parent
//!   "absorbs the state changes made by its child by atomically replacing
//!   its page pointer with that of the child" (§3.2).

use crate::machine::MachineProfile;
use crate::map::{CowOutcome, PageMap};
use crate::page::{PageIndex, PageSize};
use altx_des::SimDuration;
use std::fmt;

/// Cumulative copy-on-write accounting for one address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Shared pages physically copied due to writes (chargeable COW
    /// faults; the quantity behind §4.4's pages/second rate).
    pub pages_copied: u64,
    /// Unmapped pages materialized as zeros on first write.
    pub pages_zero_filled: u64,
    /// Write operations serviced without any copy (page already private).
    pub writes_in_place: u64,
    /// Read operations serviced.
    pub reads: u64,
}

impl CowStats {
    /// Sum of both kinds of page materialization.
    pub fn total_faults(&self) -> u64 {
        self.pages_copied + self.pages_zero_filled
    }
}

/// Receipt describing what one read/write operation did, so callers can
/// charge virtual time for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpReceipt {
    /// Pages copied (COW faults) during this operation.
    pub pages_copied: u64,
    /// Pages zero-filled during this operation.
    pub pages_zero_filled: u64,
    /// Pages touched in total.
    pub pages_touched: u64,
}

impl OpReceipt {
    /// The virtual-time cost of this operation under `profile`
    /// (copy faults + zero-fill traps; in-place access is free at page
    /// granularity, matching the paper's model where only copying counts).
    pub fn cost(&self, profile: &MachineProfile) -> SimDuration {
        profile.cow_fault_cost() * self.pages_copied
            + profile.page_fault_cost() * self.pages_zero_filled
    }

    fn absorb_outcome(&mut self, outcome: CowOutcome) {
        self.pages_touched += 1;
        match outcome {
            CowOutcome::Copied => self.pages_copied += 1,
            CowOutcome::ZeroFilled => self.pages_zero_filled += 1,
            CowOutcome::AlreadyPrivate => {}
        }
    }
}

/// A byte-addressed, page-backed address space.
///
/// # Example
///
/// ```
/// use altx_pager::{AddressSpace, PageSize};
///
/// let mut a = AddressSpace::zeroed(64, PageSize::new(16));
/// a.write(10, &[1, 2, 3]);
/// assert_eq!(a.read_vec(9, 5), vec![0, 1, 2, 3, 0]);
/// ```
#[derive(Clone)]
pub struct AddressSpace {
    map: PageMap,
    stats: CowStats,
}

impl AddressSpace {
    /// Creates a zeroed address space of at least `bytes` bytes.
    pub fn zeroed(bytes: usize, page_size: PageSize) -> Self {
        AddressSpace {
            map: PageMap::new(page_size, page_size.pages_for(bytes)),
            stats: CowStats::default(),
        }
    }

    /// Creates an address space holding `data`, padded to whole pages.
    ///
    /// The initializing writes are *not* counted in the stats (this is
    /// image load, not speculative execution).
    pub fn from_bytes(data: &[u8], page_size: PageSize) -> Self {
        let mut space = AddressSpace::zeroed(data.len(), page_size);
        space.write(0, data);
        space.stats = CowStats::default();
        space
    }

    /// Wraps an existing page map.
    pub fn from_map(map: PageMap) -> Self {
        AddressSpace {
            map,
            stats: CowStats::default(),
        }
    }

    /// The page size.
    pub fn page_size(&self) -> PageSize {
        self.map.page_size()
    }

    /// Size of the space in bytes (page-granular).
    pub fn len(&self) -> usize {
        self.map.len() * self.map.page_size().bytes()
    }

    /// True iff the space has zero pages.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of page slots.
    pub fn page_count(&self) -> usize {
        self.map.len()
    }

    /// Cumulative COW accounting.
    pub fn stats(&self) -> CowStats {
        self.stats
    }

    /// Resets the accounting counters (e.g., at the start of a measured
    /// region).
    pub fn reset_stats(&mut self) {
        self.stats = CowStats::default();
    }

    /// Read-only access to the underlying page map.
    pub fn map(&self) -> &PageMap {
        &self.map
    }

    /// Forks this address space copy-on-write: the child shares every
    /// mapped page with the parent. O(#pages) pointer work, no data
    /// copies. The child's stats start at zero.
    pub fn cow_fork(&self) -> AddressSpace {
        AddressSpace {
            map: self.map.clone(),
            stats: CowStats::default(),
        }
    }

    /// The virtual-time cost of [`cow_fork`](Self::cow_fork) under
    /// `profile` (fixed fork cost + per-inherited-page map cost).
    pub fn fork_cost(&self, profile: &MachineProfile) -> SimDuration {
        profile.fork_cost(self.map.len())
    }

    /// Atomically replaces this space's page map with `winner`'s — the
    /// `alt_wait` absorption of §3.2. The winner's COW accounting is
    /// merged into the parent's (those copies really happened).
    pub fn absorb(&mut self, winner: AddressSpace) {
        self.map = winner.map;
        self.stats.pages_copied += winner.stats.pages_copied;
        self.stats.pages_zero_filled += winner.stats.pages_zero_filled;
        self.stats.writes_in_place += winner.stats.writes_in_place;
        self.stats.reads += winner.stats.reads;
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the space.
    pub fn read_vec(&mut self, addr: usize, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Reads into `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the space.
    pub fn read(&mut self, addr: usize, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        self.stats.reads += 1;
        let ps = self.map.page_size().bytes();
        let mut off = 0;
        while off < buf.len() {
            let (page_idx, page_off) = self.map.page_size().split_addr(addr + off);
            let chunk = (ps - page_off).min(buf.len() - off);
            match self.map.page(page_idx) {
                Some(page) => {
                    buf[off..off + chunk]
                        .copy_from_slice(&page.as_bytes()[page_off..page_off + chunk]);
                }
                None => {
                    buf[off..off + chunk].fill(0);
                }
            }
            off += chunk;
        }
    }

    /// Writes `data` at `addr`, returning a receipt of the page work done.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the space.
    pub fn write(&mut self, addr: usize, data: &[u8]) -> OpReceipt {
        self.check_range(addr, data.len());
        let ps = self.map.page_size().bytes();
        let mut receipt = OpReceipt::default();
        let mut off = 0;
        while off < data.len() {
            let (page_idx, page_off) = self.map.page_size().split_addr(addr + off);
            let chunk = (ps - page_off).min(data.len() - off);
            let (page, outcome) = self.map.page_mut(page_idx);
            page.as_bytes_mut()[page_off..page_off + chunk]
                .copy_from_slice(&data[off..off + chunk]);
            receipt.absorb_outcome(outcome);
            match outcome {
                CowOutcome::Copied => self.stats.pages_copied += 1,
                CowOutcome::ZeroFilled => self.stats.pages_zero_filled += 1,
                CowOutcome::AlreadyPrivate => self.stats.writes_in_place += 1,
            }
            off += chunk;
        }
        receipt
    }

    /// Touches (dirties) whole pages `[first, first+count)` with a marker
    /// byte — the write-fraction experiment primitive (E4). Returns the
    /// receipt.
    ///
    /// # Panics
    ///
    /// Panics if the page range is out of bounds.
    pub fn touch_pages(&mut self, first: usize, count: usize, marker: u8) -> OpReceipt {
        assert!(
            first + count <= self.map.len(),
            "touch_pages: range {}..{} out of bounds ({} pages)",
            first,
            first + count,
            self.map.len()
        );
        let mut receipt = OpReceipt::default();
        for i in first..first + count {
            let (page, outcome) = self.map.page_mut(PageIndex(i));
            page.as_bytes_mut()[0] = marker;
            receipt.absorb_outcome(outcome);
            match outcome {
                CowOutcome::Copied => self.stats.pages_copied += 1,
                CowOutcome::ZeroFilled => self.stats.pages_zero_filled += 1,
                CowOutcome::AlreadyPrivate => self.stats.writes_in_place += 1,
            }
        }
        receipt
    }

    /// Flattens the space to a plain byte vector (test oracle /
    /// checkpointing).
    pub fn flatten(&self) -> Vec<u8> {
        self.map.flatten()
    }

    /// Pages whose contents diverge (by pointer) from `other` — the cheap
    /// "what did this alternate change" computation used at sync time.
    pub fn divergent_pages(&self, other: &AddressSpace) -> Vec<PageIndex> {
        self.map.divergent_pages(&other.map)
    }

    fn check_range(&self, addr: usize, len: usize) {
        let end = addr.checked_add(len).expect("address range overflow");
        assert!(
            end <= self.len(),
            "access {addr}..{end} out of bounds (space is {} bytes)",
            self.len()
        );
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AddressSpace({} bytes, {:?}, stats: {} copied / {} zero-filled)",
            self.len(),
            self.map,
            self.stats.pages_copied,
            self.stats.pages_zero_filled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::zeroed(64, PageSize::new(16))
    }

    #[test]
    fn zeroed_space_reads_zero() {
        let mut s = space();
        assert_eq!(s.read_vec(0, 64), vec![0u8; 64]);
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().total_faults(), 0, "reads never fault pages in");
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = space();
        s.write(5, &[9, 8, 7]);
        assert_eq!(s.read_vec(4, 5), vec![0, 9, 8, 7, 0]);
    }

    #[test]
    fn write_spanning_pages() {
        let mut s = space();
        let data: Vec<u8> = (1..=40).collect();
        let receipt = s.write(10, &data);
        // Bytes 10..50 span pages 0,1,2,3.
        assert_eq!(receipt.pages_touched, 4);
        assert_eq!(receipt.pages_zero_filled, 4);
        assert_eq!(s.read_vec(10, 40), data);
    }

    #[test]
    fn from_bytes_does_not_count_load_as_faults() {
        let s = AddressSpace::from_bytes(&[1; 100], PageSize::new(16));
        assert_eq!(s.stats(), CowStats::default());
        assert_eq!(s.page_count(), 7);
    }

    #[test]
    fn cow_fork_isolation_both_directions() {
        let mut parent = AddressSpace::from_bytes(b"hello world!", PageSize::new(4));
        let mut child = parent.cow_fork();

        child.write(0, b"HELLO");
        parent.write(6, b"WORLD");

        assert_eq!(&parent.read_vec(0, 12), b"hello WORLD!");
        assert_eq!(&child.read_vec(0, 12), b"HELLO world!");
    }

    #[test]
    fn fork_then_write_charges_cow_copy() {
        let mut parent = AddressSpace::from_bytes(&[42; 64], PageSize::new(16));
        let mut child = parent.cow_fork();
        let receipt = child.write(0, &[1]);
        assert_eq!(receipt.pages_copied, 1);
        assert_eq!(child.stats().pages_copied, 1);
        // Parent's copy of the page is untouched.
        assert_eq!(parent.read_vec(1, 1), vec![42]);
    }

    #[test]
    fn absorb_replaces_parent_state() {
        let mut parent = AddressSpace::from_bytes(b"original", PageSize::new(4));
        let mut child = parent.cow_fork();
        child.write(0, b"CHANGED!");
        parent.absorb(child);
        assert_eq!(&parent.read_vec(0, 8), b"CHANGED!");
        assert_eq!(parent.stats().pages_copied, 2, "winner's copies merged");
    }

    #[test]
    fn touch_pages_write_fraction() {
        let parent = AddressSpace::from_bytes(&[7; 160], PageSize::new(16)); // 10 pages
        let mut child = parent.cow_fork();
        let receipt = child.touch_pages(0, 4, 0xFF);
        assert_eq!(receipt.pages_copied, 4);
        // Touching the same pages again is free.
        let receipt2 = child.touch_pages(0, 4, 0xEE);
        assert_eq!(receipt2.pages_copied, 0);
        assert_eq!(child.stats().pages_copied, 4);
        assert_eq!(child.stats().writes_in_place, 4);
    }

    #[test]
    fn receipt_cost_uses_profile() {
        let profile = MachineProfile::hp_9000_350();
        let receipt = OpReceipt {
            pages_copied: 3,
            pages_zero_filled: 2,
            pages_touched: 5,
        };
        let expected = profile.cow_fault_cost() * 3 + profile.page_fault_cost() * 2;
        assert_eq!(receipt.cost(&profile), expected);
    }

    #[test]
    fn fork_cost_scales_with_pages() {
        let profile = MachineProfile::att_3b2_310();
        let s = AddressSpace::zeroed(320 * 1024, profile.page_size());
        assert_eq!(s.fork_cost(&profile), SimDuration::from_millis(31));
    }

    #[test]
    fn flatten_matches_reads() {
        let mut s = space();
        s.write(3, &[1, 2, 3]);
        s.write(40, &[9]);
        let flat = s.flatten();
        assert_eq!(flat.len(), 64);
        assert_eq!(flat[3], 1);
        assert_eq!(flat[40], 9);
    }

    #[test]
    fn divergence_after_fork() {
        let parent = AddressSpace::from_bytes(&[1; 64], PageSize::new(16));
        let mut child = parent.cow_fork();
        assert!(child.divergent_pages(&parent).is_empty());
        child.write(17, &[2]); // page 1
        assert_eq!(child.divergent_pages(&parent), vec![PageIndex(1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        space().write(60, &[0; 10]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_touch_panics() {
        space().touch_pages(3, 2, 0);
    }
}
