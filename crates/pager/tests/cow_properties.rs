//! Property-based tests for the copy-on-write pager.
//!
//! The key invariant (the paper's correctness requirement for speculative
//! state, §3.1/§3.3) is *isolation*: writes made by one forked address
//! space must never be observable in any other, and every space must be
//! byte-for-byte identical to a plain flat-buffer oracle that received the
//! same operations.

use altx_pager::{AddressSpace, PageSize};
use proptest::prelude::*;

/// A flat, non-COW model of an address space.
#[derive(Clone)]
struct Oracle {
    bytes: Vec<u8>,
}

impl Oracle {
    fn new(len: usize) -> Self {
        Oracle { bytes: vec![0; len] }
    }
    fn write(&mut self, addr: usize, data: &[u8]) {
        self.bytes[addr..addr + data.len()].copy_from_slice(data);
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Write `data` at `addr` in space `target` (modulo live spaces).
    Write { target: usize, addr: usize, data: Vec<u8> },
    /// Fork space `target` into a new space.
    Fork { target: usize },
}

fn op_strategy(space_bytes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<usize>(), 0..space_bytes, prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(move |(target, addr, mut data)| {
                let max_len = space_bytes - addr;
                data.truncate(max_len.max(1).min(data.len()));
                Op::Write { target, addr, data }
            }),
        1 => any::<usize>().prop_map(|target| Op::Fork { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every space always equals its oracle, no matter how ops interleave
    /// across forks.
    #[test]
    fn spaces_match_flat_oracles(
        ops in prop::collection::vec(op_strategy(256), 1..60),
        page_size in 1usize..64,
    ) {
        let ps = PageSize::new(page_size);
        let mut spaces = vec![AddressSpace::zeroed(256, ps)];
        let mut oracles = vec![Oracle::new(spaces[0].len())];
        let space_len = spaces[0].len();

        for op in ops {
            match op {
                Op::Write { target, addr, data } => {
                    let t = target % spaces.len();
                    if addr + data.len() <= space_len {
                        spaces[t].write(addr, &data);
                        oracles[t].write(addr, &data);
                    }
                }
                Op::Fork { target } => {
                    if spaces.len() < 8 {
                        let t = target % spaces.len();
                        let child = spaces[t].cow_fork();
                        let oracle = oracles[t].clone();
                        spaces.push(child);
                        oracles.push(oracle);
                    }
                }
            }
        }

        for (space, oracle) in spaces.iter().zip(&oracles) {
            prop_assert_eq!(space.flatten(), oracle.bytes.clone());
        }
    }

    /// Copies are only charged when pages are genuinely shared: a space
    /// that never forks never records a COW copy.
    #[test]
    fn no_fork_no_cow_copies(
        writes in prop::collection::vec((0usize..200, prop::collection::vec(any::<u8>(), 1..32)), 1..40),
    ) {
        let mut s = AddressSpace::zeroed(256, PageSize::new(16));
        for (addr, data) in writes {
            if addr + data.len() <= s.len() {
                s.write(addr, &data);
            }
        }
        prop_assert_eq!(s.stats().pages_copied, 0);
    }

    /// After a fork, the first write to each inherited non-zero page
    /// copies exactly once; repeat writes are in-place.
    #[test]
    fn each_shared_page_copied_at_most_once(
        touches in prop::collection::vec(0usize..10, 1..50),
    ) {
        let parent = AddressSpace::from_bytes(&[1u8; 160], PageSize::new(16)); // 10 pages
        let mut child = parent.cow_fork();
        let mut unique = std::collections::HashSet::new();
        for t in touches {
            child.touch_pages(t, 1, 0xAB);
            unique.insert(t);
        }
        prop_assert_eq!(child.stats().pages_copied, unique.len() as u64);
        // Parent never observes child writes.
        prop_assert!(parent.flatten().iter().all(|&b| b == 1));
    }

    /// absorb() makes the parent bit-identical to the winning child.
    #[test]
    fn absorb_equals_child_state(
        child_writes in prop::collection::vec((0usize..200, prop::collection::vec(any::<u8>(), 1..16)), 0..20),
    ) {
        let mut parent = AddressSpace::from_bytes(&[7u8; 256], PageSize::new(32));
        let mut child = parent.cow_fork();
        for (addr, data) in child_writes {
            if addr + data.len() <= child.len() {
                child.write(addr, &data);
            }
        }
        let expect = child.flatten();
        parent.absorb(child);
        prop_assert_eq!(parent.flatten(), expect);
    }
}
