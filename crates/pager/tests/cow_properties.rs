//! Property-based tests for the copy-on-write pager.
//!
//! The key invariant (the paper's correctness requirement for speculative
//! state, §3.1/§3.3) is *isolation*: writes made by one forked address
//! space must never be observable in any other, and every space must be
//! byte-for-byte identical to a plain flat-buffer oracle that received the
//! same operations.

use altx_check::{check, CaseRng};
use altx_pager::{AddressSpace, PageSize};

/// A flat, non-COW model of an address space.
#[derive(Clone)]
struct Oracle {
    bytes: Vec<u8>,
}

impl Oracle {
    fn new(len: usize) -> Self {
        Oracle {
            bytes: vec![0; len],
        }
    }
    fn write(&mut self, addr: usize, data: &[u8]) {
        self.bytes[addr..addr + data.len()].copy_from_slice(data);
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Write `data` at `addr` in space `target` (modulo live spaces).
    Write {
        target: usize,
        addr: usize,
        data: Vec<u8>,
    },
    /// Fork space `target` into a new space.
    Fork { target: usize },
}

fn arb_op(rng: &mut CaseRng, space_bytes: usize) -> Op {
    if rng.usize_in(0, 5) < 4 {
        let target = rng.u64() as usize;
        let addr = rng.usize_in(0, space_bytes);
        let mut data = rng.bytes(1, 64);
        let max_len = space_bytes - addr;
        data.truncate(max_len.max(1).min(data.len()));
        Op::Write { target, addr, data }
    } else {
        Op::Fork {
            target: rng.u64() as usize,
        }
    }
}

/// Every space always equals its oracle, no matter how ops interleave
/// across forks.
#[test]
fn spaces_match_flat_oracles() {
    check("spaces_match_flat_oracles", 64, |rng| {
        let page_size = rng.usize_in(1, 64);
        let ops = rng.vec(1, 60, |r| arb_op(r, 256));

        let ps = PageSize::new(page_size);
        let mut spaces = vec![AddressSpace::zeroed(256, ps)];
        let mut oracles = vec![Oracle::new(spaces[0].len())];
        let space_len = spaces[0].len();

        for op in ops {
            match op {
                Op::Write { target, addr, data } => {
                    let t = target % spaces.len();
                    if addr + data.len() <= space_len {
                        spaces[t].write(addr, &data);
                        oracles[t].write(addr, &data);
                    }
                }
                Op::Fork { target } => {
                    if spaces.len() < 8 {
                        let t = target % spaces.len();
                        let child = spaces[t].cow_fork();
                        let oracle = oracles[t].clone();
                        spaces.push(child);
                        oracles.push(oracle);
                    }
                }
            }
        }

        for (space, oracle) in spaces.iter().zip(&oracles) {
            assert_eq!(space.flatten(), oracle.bytes.clone());
        }
    });
}

/// Copies are only charged when pages are genuinely shared: a space
/// that never forks never records a COW copy.
#[test]
fn no_fork_no_cow_copies() {
    check("no_fork_no_cow_copies", 64, |rng| {
        let writes = rng.vec(1, 40, |r| (r.usize_in(0, 200), r.bytes(1, 32)));
        let mut s = AddressSpace::zeroed(256, PageSize::new(16));
        for (addr, data) in writes {
            if addr + data.len() <= s.len() {
                s.write(addr, &data);
            }
        }
        assert_eq!(s.stats().pages_copied, 0);
    });
}

/// After a fork, the first write to each inherited non-zero page
/// copies exactly once; repeat writes are in-place.
#[test]
fn each_shared_page_copied_at_most_once() {
    check("each_shared_page_copied_at_most_once", 64, |rng| {
        let touches = rng.vec(1, 50, |r| r.usize_in(0, 10));
        let parent = AddressSpace::from_bytes(&[1u8; 160], PageSize::new(16)); // 10 pages
        let mut child = parent.cow_fork();
        let mut unique = std::collections::HashSet::new();
        for t in touches {
            child.touch_pages(t, 1, 0xAB);
            unique.insert(t);
        }
        assert_eq!(child.stats().pages_copied, unique.len() as u64);
        // Parent never observes child writes.
        assert!(parent.flatten().iter().all(|&b| b == 1));
    });
}

/// absorb() makes the parent bit-identical to the winning child.
#[test]
fn absorb_equals_child_state() {
    check("absorb_equals_child_state", 64, |rng| {
        let child_writes = rng.vec(0, 20, |r| (r.usize_in(0, 200), r.bytes(1, 16)));
        let mut parent = AddressSpace::from_bytes(&[7u8; 256], PageSize::new(32));
        let mut child = parent.cow_fork();
        for (addr, data) in child_writes {
            if addr + data.len() <= child.len() {
                child.write(addr, &data);
            }
        }
        let expect = child.flatten();
        parent.absorb(child);
        assert_eq!(parent.flatten(), expect);
    });
}
