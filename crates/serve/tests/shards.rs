//! Sharded front-end tests: connection distribution across the
//! per-shard `SO_REUSEPORT` listeners (kernel-hashed, with the
//! round-robin acceptor as fallback), per-connection pipeline order
//! under sharding, cross-shard shutdown drain, and the per-shard
//! telemetry surfacing.
//!
//! These run a real daemon in-process and some assert on process-wide
//! state (thread counts), so the tests serialize on a mutex like the
//! reactor suite does.

use altx_serve::frame::{Request, Response};
use altx_serve::{start, Client, ServerConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn sharded_server(shards: usize) -> altx_serve::ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        shards,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn run_req(workload: &str, arg: u64, deadline_ms: u32) -> Request {
    Request::Run {
        workload: workload.to_owned(),
        deadline_ms,
        arg,
    }
}

/// Waits until the summed conns-open gauge reaches `want`.
fn await_conns_open(telemetry: &altx_serve::telemetry::Telemetry, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let open = telemetry.snapshot().conns_open;
        if open >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "conns_open stuck at {open}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Connections spread across every shard. With per-shard `SO_REUSEPORT`
/// listeners the kernel hashes each new 4-tuple to a listener, so the
/// split is statistical, not exact — 64 connections against 4 shards
/// leave each shard non-empty with overwhelming probability (and the
/// round-robin acceptor fallback trivially satisfies the same bound).
/// The per-shard gauges must still sum to the global gauge existing
/// STATS consumers scrape.
#[test]
fn connections_spread_across_all_shards() {
    let _guard = serial();
    const SHARDS: usize = 4;
    const CONNS: usize = 64;
    let server = sharded_server(SHARDS);
    let telemetry = server.telemetry();
    assert_eq!(telemetry.per_shard().len(), SHARDS);

    let mut clients: Vec<Client> = (0..CONNS)
        .map(|i| Client::connect(server.local_addr()).unwrap_or_else(|e| panic!("conn {i}: {e}")))
        .collect();
    // Each connection answers a request, proving every shard serves.
    for (i, c) in clients.iter_mut().enumerate() {
        match c.run("trivial", i as u64, 0).expect("reply") {
            Response::Ok { value, .. } => assert_eq!(value, i as u64),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    await_conns_open(&telemetry, CONNS as u64);

    let per: Vec<u64> = telemetry
        .per_shard()
        .iter()
        .map(|s| s.conns_open())
        .collect();
    assert!(
        per.iter().all(|&n| n > 0),
        "{CONNS} connections must reach all {SHARDS} shards, got {per:?}"
    );
    assert_eq!(
        telemetry.snapshot().conns_open,
        per.iter().sum::<u64>(),
        "the global gauge is the sum of the shard gauges"
    );

    drop(clients);
    server.shutdown();
}

/// Pipelined replies stay in per-connection request order when the
/// connection lives on a shard: a slow race sent first replies before
/// fast races sent after it, concurrently on two different shards.
#[test]
fn pipeline_order_preserved_per_connection_under_sharding() {
    let _guard = serial();
    let server = sharded_server(2);
    // Two connections — the kernel hash may land them on the same shard
    // or different ones; per-connection order must hold either way.
    let mut a = Client::connect(server.local_addr()).expect("connect a");
    let mut b = Client::connect(server.local_addr()).expect("connect b");

    for c in [&mut a, &mut b] {
        c.send(&run_req("sleep", 100, 0)).expect("send sleep");
        for arg in [1u64, 2, 3] {
            c.send(&run_req("trivial", arg, 0)).expect("send trivial");
        }
    }
    for c in [&mut a, &mut b] {
        match c.recv().expect("first reply") {
            Response::Ok { value, .. } => assert_eq!(value, 100, "sleep replies first"),
            other => panic!("expected sleep's Ok first, got {other:?}"),
        }
        for expect in [1u64, 2, 3] {
            match c.recv().expect("pipelined reply") {
                Response::Ok { value, .. } => assert_eq!(value, expect, "reply order"),
                other => panic!("expected Ok({expect}), got {other:?}"),
            }
        }
    }
    server.shutdown();
}

/// The SHUTDOWN opcode lands on *one* shard but must drain the whole
/// daemon: every other shard (and the acceptor, when the fallback is
/// in play) exits, in-flight races on other shards still flush their
/// replies, and `wait()` returns.
#[test]
fn shutdown_opcode_drains_every_shard() {
    let _guard = serial();
    let server = sharded_server(4);
    let addr = server.local_addr();
    let telemetry = server.telemetry();

    // Park an in-flight race on a different shard than the one that
    // will receive the SHUTDOWN frame. Wait until the request is
    // *admitted* — the drain contract covers admitted requests; a frame
    // still sitting unread in a socket buffer when shutdown lands is
    // legitimately dropped with its connection.
    let mut busy = Client::connect(addr).expect("connect busy");
    busy.send(&run_req("sleep", 150, 0)).expect("send sleep");
    let deadline = Instant::now() + Duration::from_secs(5);
    while telemetry.snapshot().accepted == 0 {
        assert!(Instant::now() < deadline, "sleep race never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut killer = Client::connect(addr).expect("connect killer");
    killer.shutdown().expect("shutdown acknowledged");

    // The admitted race must still answer through the drain.
    match busy.recv().expect("drained reply") {
        Response::Ok { value, .. } => assert_eq!(value, 150),
        other => panic!("expected the parked race's Ok, got {other:?}"),
    }
    // All four shard threads and the acceptor join.
    server.wait();
}

/// Per-shard telemetry shows up in both renderings, and the new pool
/// gauges count recycled frame buffers once traffic has flowed.
#[test]
fn shard_telemetry_surfaces_in_stats_and_prometheus() {
    let _guard = serial();
    let server = sharded_server(4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for arg in 0..8u64 {
        assert!(matches!(
            client.run("trivial", arg, 0).expect("reply"),
            Response::Ok { .. }
        ));
    }

    let stats = client.stats_page().expect("stats");
    assert!(stats.contains("shards              4"), "{stats}");
    assert!(stats.contains("pool recycled"), "{stats}");
    assert!(stats.contains("pool misses"), "{stats}");
    assert!(stats.contains("ring hits"), "{stats}");
    assert!(stats.contains("ring spills"), "{stats}");
    assert!(stats.contains("pollout spurious"), "{stats}");
    for i in 0..4 {
        assert!(stats.contains(&format!("shard {i}:")), "{stats}");
    }

    let prom = client.prometheus().expect("prometheus");
    assert!(prom.contains("altxd_shards 4"), "{prom}");
    assert!(prom.contains("altxd_bufpool_recycled_total"), "{prom}");
    assert!(prom.contains("altxd_bufpool_misses_total"), "{prom}");
    assert!(prom.contains("altxd_ring_hits_total"), "{prom}");
    assert!(prom.contains("altxd_ring_spills_total"), "{prom}");
    assert!(
        prom.contains("altxd_reactor_pollout_spurious_total"),
        "{prom}"
    );
    // The kernel hash decides which shard carries the one client, so
    // assert the per-shard gauge lines exist rather than their values.
    assert!(
        prom.contains("altxd_shard_conns_open{shard=\"0\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("altxd_shard_conns_open{shard=\"3\"}"),
        "{prom}"
    );

    // After a burst of requests on one connection the shard's pool is
    // primed: decode and reply buffers recycle instead of allocating.
    let snap = server.telemetry().snapshot();
    assert!(
        snap.pool_recycled > 0,
        "steady traffic must recycle buffers, got {snap:?}"
    );
    server.shutdown();
}

/// `--shards N` still costs O(shards + workers) threads: a thousand
/// idle connections on a 4-shard daemon leave the process thread count
/// flat.
#[test]
fn sharded_idle_connections_cost_no_threads() {
    let _guard = serial();
    const IDLE: usize = 512;
    let server = sharded_server(4);
    let addr = server.local_addr();
    let telemetry = server.telemetry();

    let mut active = Client::connect(addr).expect("connect");
    assert!(matches!(
        active.run("trivial", 1, 0).expect("reply"),
        Response::Ok { .. }
    ));
    let before = thread_count();

    let idles: Vec<Client> = (0..IDLE)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();
    await_conns_open(&telemetry, (IDLE + 1) as u64);

    if before > 0 {
        let during = thread_count();
        assert!(
            during <= before + 2,
            "{IDLE} idle connections grew threads {before} -> {during} on a sharded daemon"
        );
    }
    // Still serving under the idle load.
    assert!(matches!(
        active.run("trivial", 2, 0).expect("reply under idle load"),
        Response::Ok { .. }
    ));

    drop(idles);
    server.shutdown();
}

/// Threads in this process, from /proc (0 when unavailable).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}
