//! Integration tests for the deadline-aware scheduler: EDF ordering,
//! worker-group isolation vs stealing, feasibility admission, lane
//! starvation aging, and the drain guarantee under a deep queue.
//!
//! These drive the pool through its public API only — each test builds
//! the exact geometry it needs with [`PoolConfig`] and observes
//! execution order through channels, so the assertions hold on any
//! machine regardless of scheduling jitter.

use altx_serve::pool::{JobMeta, PoolConfig, WorkerPool};
use altx_serve::sched::{Admission, CatalogStats, ADMISSION_MIN_SAMPLES};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Occupies every worker of the pool and returns a sender that releases
/// them; used to build a known backlog before any job is popped.
fn block_workers(pool: &WorkerPool, n: usize) -> mpsc::Sender<()> {
    let (tx, rx) = mpsc::channel::<()>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..n {
        let rx = Arc::clone(&rx);
        pool.try_submit(Box::new(move || {
            rx.lock().expect("blocker lock").recv().ok();
        }))
        .expect("blocker admitted");
    }
    // Wait until all blockers are actually *running* (off the queue),
    // so jobs submitted next stay queued and the heap order is decided
    // by a single drain.
    while pool.busy() < n as u64 {
        std::thread::sleep(Duration::from_millis(1));
    }
    tx
}

/// Submits a job that records its id in `order`, with the given
/// deadline (`None` = best-effort) on the default lane/group.
fn submit_recorded(
    pool: &WorkerPool,
    order: &Arc<Mutex<Vec<u64>>>,
    id: u64,
    deadline_ms: Option<u64>,
) {
    let order = Arc::clone(order);
    let meta = JobMeta {
        deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        ..JobMeta::default()
    };
    pool.try_submit_at(
        Box::new(move || order.lock().expect("order lock").push(id)),
        meta,
    )
    .expect("admitted");
}

#[test]
fn interleaved_submits_run_in_edf_order() {
    let pool = WorkerPool::with_config(PoolConfig::fifo(1, 64));
    let release = block_workers(&pool, 1);
    let order = Arc::new(Mutex::new(Vec::new()));
    // Interleave deadlined and best-effort submissions out of deadline
    // order: the pop order must be earliest-deadline-first, ties FIFO,
    // best-effort last in FIFO order.
    submit_recorded(&pool, &order, 0, None); //           best-effort, first in
    submit_recorded(&pool, &order, 1, Some(5_000)); //    late deadline
    submit_recorded(&pool, &order, 2, Some(1_000)); //    earliest deadline
    submit_recorded(&pool, &order, 3, Some(5_000)); //    ties with 1 → after it
    submit_recorded(&pool, &order, 4, None); //           best-effort, last in
    submit_recorded(&pool, &order, 5, Some(3_000)); //    middle deadline
    release.send(()).expect("worker parked");
    pool.shutdown();
    assert_eq!(
        *order.lock().expect("order lock"),
        vec![2, 5, 1, 3, 0, 4],
        "EDF first, FIFO ties, best-effort last"
    );
}

#[test]
fn all_best_effort_degrades_to_fifo() {
    let pool = WorkerPool::with_config(PoolConfig::fifo(1, 64));
    let release = block_workers(&pool, 1);
    let order = Arc::new(Mutex::new(Vec::new()));
    for id in 0..20 {
        submit_recorded(&pool, &order, id, None);
    }
    release.send(()).expect("worker parked");
    pool.shutdown();
    assert_eq!(
        *order.lock().expect("order lock"),
        (0..20).collect::<Vec<_>>(),
        "with no deadlines the EDF heap must behave exactly like the old FIFO"
    );
}

#[test]
fn without_steal_groups_are_isolated() {
    // Two groups, one worker each, stealing off: group 1's worker must
    // never touch group 0's backlog.
    let pool = WorkerPool::with_config(PoolConfig {
        groups: 2,
        ..PoolConfig::fifo(2, 64)
    });
    // Block only group 0's worker (group index 0).
    let (tx, rx) = mpsc::channel::<()>();
    pool.try_submit_at(
        Box::new(move || {
            rx.recv().ok();
        }),
        JobMeta::default(), // group 0
    )
    .expect("blocker admitted");
    while pool.busy() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let ran = Arc::new(AtomicUsize::new(0));
    for _ in 0..4 {
        let ran = Arc::clone(&ran);
        pool.try_submit_at(
            Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }),
            JobMeta::default(), // group 0 — behind the blocker
        )
        .expect("admitted");
    }
    // Group 1's worker is idle the whole time; with stealing off it
    // must leave group 0's queue alone.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "an idle sibling group must not run another group's jobs when stealing is off"
    );
    assert_eq!(pool.stats().steals(), 0);
    tx.send(()).expect("worker parked");
    pool.shutdown();
    assert_eq!(ran.load(Ordering::SeqCst), 4, "drain still runs everything");
}

#[test]
fn steal_lets_idle_group_drain_a_blocked_sibling() {
    let pool = WorkerPool::with_config(PoolConfig {
        groups: 2,
        steal: true,
        ..PoolConfig::fifo(2, 64)
    });
    // The idle sibling may steal the *blocker* itself, so ask the
    // blocker which group's worker it actually landed on (workers are
    // named `altxd-worker-g{group}-{i}`) and aim the backlog there.
    let (gtx, grx) = mpsc::channel();
    let (tx, rx) = mpsc::channel::<()>();
    pool.try_submit_at(
        Box::new(move || {
            let group: usize = std::thread::current()
                .name()
                .and_then(|n| n.strip_prefix("altxd-worker-g"))
                .and_then(|n| n.split('-').next())
                .and_then(|n| n.parse().ok())
                .expect("worker thread is named with its group");
            gtx.send(group).expect("receiver alive");
            rx.recv().ok();
        }),
        JobMeta::default(),
    )
    .expect("blocker admitted");
    let blocked_group = grx
        .recv_timeout(Duration::from_secs(5))
        .expect("blocker started");
    let (done_tx, done_rx) = mpsc::channel();
    for i in 0..4 {
        let done_tx = done_tx.clone();
        pool.try_submit_at(
            Box::new(move || done_tx.send(i).expect("receiver alive")),
            JobMeta {
                group: blocked_group, // behind the blocker
                ..JobMeta::default()
            },
        )
        .expect("admitted");
    }
    // The blocked group's worker is parked; only a steal by the other
    // group's worker can run these.
    for _ in 0..4 {
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("stolen jobs complete while the home group is blocked");
    }
    assert!(
        pool.stats().steals() >= 4,
        "steals counter records the cross-group pops (got {})",
        pool.stats().steals()
    );
    tx.send(()).expect("worker parked");
    pool.shutdown();
}

#[test]
fn starvation_aging_promotes_a_waiting_lower_lane() {
    let pool = WorkerPool::with_config(PoolConfig {
        lanes: 2,
        lane_aging: Duration::from_millis(10),
        ..PoolConfig::fifo(1, 64)
    });
    let release = block_workers(&pool, 1);
    let order = Arc::new(Mutex::new(Vec::new()));
    // A lane-1 job queued first, then left to wait past the aging
    // threshold while lane 0 fills up behind it.
    {
        let order = Arc::clone(&order);
        pool.try_submit_at(
            Box::new(move || order.lock().expect("order lock").push(99)),
            JobMeta {
                lane: 1,
                ..JobMeta::default()
            },
        )
        .expect("admitted");
    }
    std::thread::sleep(Duration::from_millis(30)); // > lane_aging
    for id in 0..4 {
        submit_recorded(&pool, &order, id, None); // lane 0
    }
    release.send(()).expect("worker parked");
    pool.shutdown();
    let order = order.lock().expect("order lock");
    assert_eq!(
        order[0], 99,
        "the aged lane-1 entry must be served before fresh lane-0 work (got {order:?})"
    );
}

#[test]
fn strict_priority_without_aging_always_serves_the_high_lane_first() {
    let pool = WorkerPool::with_config(PoolConfig {
        lanes: 2,
        lane_aging: Duration::ZERO, // aging off: pure strict priority
        ..PoolConfig::fifo(1, 64)
    });
    let release = block_workers(&pool, 1);
    let order = Arc::new(Mutex::new(Vec::new()));
    {
        let order = Arc::clone(&order);
        pool.try_submit_at(
            Box::new(move || order.lock().expect("order lock").push(99)),
            JobMeta {
                lane: 1,
                ..JobMeta::default()
            },
        )
        .expect("admitted");
    }
    std::thread::sleep(Duration::from_millis(30)); // would age if aging were on
    for id in 0..4 {
        submit_recorded(&pool, &order, id, None); // lane 0
    }
    release.send(()).expect("worker parked");
    pool.shutdown();
    assert_eq!(
        *order.lock().expect("order lock"),
        vec![0, 1, 2, 3, 99],
        "with aging disabled the lower lane waits out the whole high lane"
    );
}

#[test]
fn admission_sheds_deterministically_from_pinned_stats() {
    // Pin the service-time table: enough samples at ~4ms each that the
    // p99 bucket is known exactly (power-of-two upper bound → 4096us).
    let catalog = Arc::new(CatalogStats::new());
    for _ in 0..ADMISSION_MIN_SAMPLES * 4 {
        catalog.record_service(0, 4_000);
    }
    let admission = Admission::new(true, Arc::clone(&catalog));
    // Empty queue, plenty of workers: a 10ms deadline is feasible, a
    // 2ms deadline provably is not (p99 alone exceeds it).
    assert!(admission.admit(0, 10, 0, 4));
    assert!(!admission.admit(0, 2, 0, 4));
    // A feasible per-job deadline becomes infeasible once the queue
    // wait in front of it is long enough: 64 queued jobs at ~4ms mean
    // service over 4 workers ≈ 64ms of wait.
    assert!(!admission.admit(0, 10, 64, 4));
    // Best-effort and disabled admission always pass.
    assert!(admission.admit(0, 0, 64, 4));
    let off = Admission::new(false, catalog);
    assert!(off.admit(0, 2, 64, 4));
}

#[test]
fn deep_queue_drain_notifies_every_admitted_job_exactly_once() {
    // Satellite regression: replies == requests through a shutdown with
    // a deep backlog. Every admitted notify-job must fire its notifier
    // exactly once whether it ran before the close or drained after.
    let pool = WorkerPool::with_config(PoolConfig {
        lanes: 2,
        ..PoolConfig::fifo(2, 256)
    });
    let notified = Arc::new(AtomicUsize::new(0));
    let mut admitted = 0usize;
    for i in 0..200u64 {
        let notified = Arc::clone(&notified);
        let meta = JobMeta {
            deadline: (i % 3 == 0).then(|| Instant::now() + Duration::from_millis(50)),
            lane: (i % 2) as usize,
            ..JobMeta::default()
        };
        let submitted = pool.try_submit_notify_at(
            Box::new(|| std::thread::sleep(Duration::from_micros(100))),
            Box::new(move || {
                notified.fetch_add(1, Ordering::SeqCst);
            }),
            meta,
        );
        if submitted.is_ok() {
            admitted += 1;
        }
    }
    pool.shutdown(); // deep queue at close: the drain must answer all of it
    assert_eq!(
        notified.load(Ordering::SeqCst),
        admitted,
        "every admitted job notifies exactly once through the drain"
    );
}
