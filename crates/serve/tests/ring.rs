//! Reply-ring lifecycle tests against a real daemon: slot exhaustion
//! spilling to the buffer pool without losing a reply, wraparound
//! reclamation under pipelined bursts, oversize replies taking the
//! spill path intact, coalesced fan-out delivering exactly one reply
//! per waiter, and `ring_slots: 0` reproducing the pre-ring data plane
//! (zero ring counters, same replies).
//!
//! Assertions about ring accounting go through the in-process
//! [`Telemetry`] snapshot, *not* the STATS page: fetching STATS is
//! itself a reply that draws on the ring, so scraping would perturb the
//! very counters under test.
//!
//! [`Telemetry`]: altx_serve::telemetry::Telemetry

use altx_serve::frame::{Request, Response};
use altx_serve::{start, Client, ServerConfig, ServerHandle};
use std::time::Duration;

fn ring_server(ring_slots: usize, ring_slot_bytes: usize) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_depth: 64,
        ring_slots,
        ring_slot_bytes,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn run_req(workload: &str, arg: u64, deadline_ms: u32) -> Request {
    Request::Run {
        workload: workload.to_owned(),
        deadline_ms,
        arg,
    }
}

/// A one-slot ring exhausted by replies parked behind a slow head of
/// line: a pipelined connection sends a long `sleep` first, then a
/// burst of trivial requests. The trivial races finish (and encode)
/// while the sleep still runs, but per-connection order parks their
/// frames — each holding its encoding — until the sleep replies. With
/// one slot, the first parked frame takes it and every later encode
/// must spill to the heap/pool path. The contract: spills are
/// accounted, and not one reply is lost or reordered.
#[test]
fn exhaustion_spills_without_losing_replies() {
    const BURST: u64 = 8;
    let server = ring_server(1, 1024);
    let telemetry = server.telemetry();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.send(&run_req("sleep", 300, 0)).expect("send sleep");
    for arg in 0..BURST {
        client
            .send(&run_req("trivial", arg, 0))
            .expect("send burst");
    }
    match client.recv().expect("sleep reply") {
        Response::Ok { value, .. } => assert_eq!(value, 300, "sleep replies first"),
        other => panic!("expected sleep's Ok first, got {other:?}"),
    }
    for expect in 0..BURST {
        match client.recv().expect("burst reply") {
            Response::Ok { value, .. } => assert_eq!(value, expect, "pipeline order"),
            other => panic!("expected Ok({expect}), got {other:?}"),
        }
    }

    let snap = telemetry.snapshot();
    assert!(
        snap.ring_spills >= BURST - 1,
        "a one-slot ring under a parked {BURST}-deep burst must spill, got {snap:?}"
    );
    assert_eq!(
        snap.ring_hits + snap.ring_spills,
        BURST + 1,
        "every reply encodes exactly once, as a hit or a spill: {snap:?}"
    );
    server.shutdown();
}

/// Wraparound: a ring far smaller than the traffic serves it all by
/// reclaiming slots as writes complete. Ring hits exceeding the slot
/// count prove slots were recycled, not just consumed.
#[test]
fn wraparound_reclaims_slots_under_pipelined_bursts() {
    const SLOTS: usize = 4;
    const ROUNDS: usize = 3;
    const BURST: u64 = 32;
    let server = ring_server(SLOTS, 1024);
    let telemetry = server.telemetry();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for round in 0..ROUNDS as u64 {
        for arg in 0..BURST {
            client
                .send(&run_req("trivial", round * BURST + arg, 0))
                .expect("send");
        }
        for arg in 0..BURST {
            match client.recv().expect("reply") {
                Response::Ok { value, .. } => assert_eq!(value, round * BURST + arg),
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    let snap = telemetry.snapshot();
    assert!(
        snap.ring_hits > SLOTS as u64,
        "{} hits through a {SLOTS}-slot ring requires reclamation: {snap:?}",
        ROUNDS * BURST as usize
    );
    assert_eq!(
        snap.ring_hits + snap.ring_spills,
        ROUNDS as u64 * BURST,
        "every reply encodes exactly once: {snap:?}"
    );
    server.shutdown();
}

/// A reply larger than a slot takes the spill path and still arrives
/// intact: with slots clamped to the 64-byte minimum, the STATS page —
/// hundreds of bytes of text — cannot fit and must spill, yet the
/// client reads the full page.
#[test]
fn oversize_reply_spills_and_arrives_intact() {
    let server = ring_server(8, 1); // clamps to the 64-byte slot minimum
    let telemetry = server.telemetry();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    assert!(matches!(
        client.run("trivial", 1, 0).expect("reply"),
        Response::Ok { .. }
    ));
    let stats = client.stats_page().expect("stats");
    assert!(stats.contains("requests"), "stats page truncated:\n{stats}");
    assert!(stats.contains("ring spills"), "{stats}");

    let snap = telemetry.snapshot();
    assert!(
        snap.ring_spills >= 1,
        "a multi-hundred-byte STATS reply cannot fit a 64-byte slot: {snap:?}"
    );
    server.shutdown();
}

/// Coalesced fan-out delivers exactly one reply per waiter: N clients
/// send the identical request inside one batching window, the daemon
/// races it once and fans the single encoding out. A dropped reply
/// hangs a client; a duplicate desynchronizes its framing — so "every
/// client reads exactly its replies, in order" is the exactly-once
/// check.
#[test]
fn coalesced_fanout_reads_one_reply_per_waiter() {
    const WAITERS: usize = 6;
    const ROUNDS: u64 = 5;
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_depth: 64,
        batch_window: Duration::from_millis(10),
        ring_slots: 16,
        ring_slot_bytes: 1024,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let telemetry = server.telemetry();

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(WAITERS));
    let handles: Vec<_> = (0..WAITERS)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect waiter");
                for round in 0..ROUNDS {
                    barrier.wait(); // land all waiters inside one window
                    match client.run("trivial", round, 0).expect("reply") {
                        Response::Ok { value, .. } => assert_eq!(value, round),
                        other => panic!("expected Ok({round}), got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("waiter thread exits cleanly");
    }

    let snap = telemetry.snapshot();
    assert!(
        snap.requests_coalesced > 0,
        "{WAITERS} identical requests per 10 ms window never coalesced: {snap:?}"
    );
    assert!(
        snap.ring_hits > 0,
        "fanned-out replies should still flow through ring slots: {snap:?}"
    );
    server.shutdown();
}

/// `ring_slots: 0` disables the ring and reproduces the pre-ring data
/// plane: service is identical (same values, same winners, stats page
/// intact) and the ring counters stay exactly zero — nothing is
/// half-enabled.
#[test]
fn disabled_ring_serves_identically_with_zero_counters() {
    let with_ring = ring_server(256, 1024);
    let without = ring_server(0, 1024);

    let mut a = Client::connect(with_ring.local_addr()).expect("connect ringed");
    let mut b = Client::connect(without.local_addr()).expect("connect ringless");
    for arg in 0..16u64 {
        let (ra, rb) = (
            a.run("trivial", arg, 0).expect("ringed reply"),
            b.run("trivial", arg, 0).expect("ringless reply"),
        );
        match (ra, rb) {
            (
                Response::Ok {
                    value: va,
                    winner_name: wa,
                    ..
                },
                Response::Ok {
                    value: vb,
                    winner_name: wb,
                    ..
                },
            ) => {
                assert_eq!(va, vb, "same value either way");
                assert_eq!(wa, wb, "same winner either way");
            }
            (ra, rb) => panic!("expected Ok/Ok, got {ra:?} / {rb:?}"),
        }
    }
    let stats = b.stats_page().expect("ringless stats");
    assert!(stats.contains("ring hits"), "{stats}");

    let ringed = with_ring.telemetry().snapshot();
    let ringless = without.telemetry().snapshot();
    assert!(
        ringed.ring_hits > 0,
        "enabled ring must be used: {ringed:?}"
    );
    assert_eq!(
        (ringless.ring_hits, ringless.ring_spills),
        (0, 0),
        "a disabled ring never counts: {ringless:?}"
    );
    with_ring.shutdown();
    without.shutdown();
}
