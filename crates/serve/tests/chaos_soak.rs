//! Chaos soak: a real daemon on the loopback, hammered by resilient
//! clients while a seeded fault plan injects panics, delays, spurious
//! cancellations, and forced failures at every instrumented site.
//!
//! The contract under test is the serving stack's whole failure story
//! at once:
//!
//! * **liveness** — every request gets *some* reply; no connection
//!   hangs, no request is silently dropped;
//! * **containment** — injected panics become per-alternative failures
//!   or error replies, never a dead daemon;
//! * **self-healing** — workers killed at the `pool.worker` site are
//!   respawned, so capacity is restored and the daemon still serves
//!   cleanly after the plan is cleared;
//! * **resilience accounting** — the injected faults, respawns, and
//!   client retries all show up in telemetry, proving the machinery
//!   actually fired rather than the soak passing vacuously.
//!
//! This test lives in its own binary because the fault plan is
//! process-global: sharing a process with other tests would inject
//! faults into them too. The seed comes from `ALTX_CHAOS_SEED` (decimal
//! or 0x-hex) so CI can pin it and failures replay exactly.
//!
//! The soak also runs with a small **coalescing window**: the 8 clients
//! walk the same request sequence, so identical `(workload, arg,
//! deadline)` requests land inside one window and share a race. That
//! puts the batching fan-out path under chaos too — a coalesced waiter
//! must get exactly one reply even when its shared race panics, sheds,
//! or loses its worker. The `answered == CLIENTS × REQUESTS` liveness
//! assertion is the exactly-once check: a dropped reply hangs a client
//! (socket timeout → panic) and a duplicate desynchronizes its framing.

use altx::faults::{self, FaultPlan};
use altx_serve::client::{ClientConfig, RetryPolicy};
use altx_serve::frame::Response;
use altx_serve::{start, Client, ServerConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The fault plan is process-global, so the tests in this binary must
/// not overlap: a plan installed by one would inject into the other.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const DEFAULT_SEED: u64 = 0x00C0_FFEE;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 40;

fn seed_from_env() -> u64 {
    match std::env::var("ALTX_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = s
                .strip_prefix("0x")
                .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or_else(|_| panic!("ALTX_CHAOS_SEED must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

fn resilient_config(seed: u64) -> ClientConfig {
    ClientConfig {
        // Generous socket timeouts: the soak asserts liveness, and a
        // legitimate reply delayed by injected sleeps must not be
        // misread as a hang.
        read_timeout: Some(Duration::from_secs(30)),
        write_timeout: Some(Duration::from_secs(30)),
        retry: Some(RetryPolicy {
            max_attempts: 6,
            budget: u32::MAX, // the soak is request-bounded, not budget-bounded
            jitter_seed: seed,
            ..RetryPolicy::default()
        }),
        ..ClientConfig::default()
    }
}

#[test]
fn chaos_soak_every_request_is_answered() {
    let _guard = serial();
    let seed = seed_from_env();
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_depth: 32,
        // Wide enough that the clients' identical request streams
        // actually coalesce; the soak asserts they did.
        batch_window: Duration::from_millis(2),
        // Chaos with per-shard reactors in play (reuseport listeners,
        // or the fallback acceptor): faults, drains, and reply routing
        // must hold across shard boundaries.
        shards: 4,
        // Explicit ring sizing: the soak must exercise the zero-copy
        // reply path, and the assertion below proves replies actually
        // went through ring slots while the chaos plan was live.
        ring_slots: 64,
        ring_slot_bytes: 1024,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let telemetry = server.telemetry();

    let plan = FaultPlan::chaos(seed);
    let answered = {
        let _guard = faults::install_guarded(plan.clone());
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let config = resilient_config(seed ^ (i as u64).wrapping_mul(0x9E37));
                std::thread::spawn(move || {
                    let mut client =
                        Client::connect_with(addr, config).expect("connect during chaos");
                    let mut answered = 0usize;
                    for n in 0..REQUESTS_PER_CLIENT {
                        let workload = ["trivial", "lognormal", "bimodal"][n % 3];
                        // Every reply kind counts as "answered" — the
                        // liveness contract is no hangs and no transport
                        // failures, not no errors. Errors ARE the
                        // contained form of the injected faults.
                        match client.run(workload, n as u64, 500) {
                            Ok(_) => answered += 1,
                            Err(e) => panic!("client {i} request {n} died: {e} (seed {seed:#x})"),
                        }
                    }
                    (answered, client.stats().retries())
                })
            })
            .collect();
        let mut answered = 0usize;
        let mut retries = 0u64;
        for h in handles {
            let (a, r) = h.join().expect("client thread survives chaos");
            answered += a;
            retries += r;
        }
        // The chaos config injects at ~30% per site visit, and sites are
        // visited per *race*: coalescing collapses up to CLIENTS
        // identical requests into one race, so the floor scales with
        // unique keys (one per request index), not raw request count. A
        // soak that injected nothing proves nothing.
        let min_races = REQUESTS_PER_CLIENT;
        assert!(
            plan.injected_total() as usize >= min_races / 5,
            "only {} faults across >= {} races (seed {seed:#x})",
            plan.injected_total(),
            min_races
        );
        let _ = retries; // tallied below from telemetry-independent stats

        // Fault accounting reached telemetry. Snapshot while the plan
        // is still installed: `faults_injected` mirrors the live plan
        // and documents itself as zero once no plan is present.
        let snap = telemetry.snapshot();
        assert!(
            snap.faults_injected > 0,
            "telemetry missed the injected faults (seed {seed:#x})"
        );
        answered
    };
    assert_eq!(
        answered,
        CLIENTS * REQUESTS_PER_CLIENT,
        "every request must be answered (seed {seed:#x})"
    );
    assert!(
        telemetry.snapshot().worker_respawns > 0,
        "no worker was killed+respawned — the pool.worker site never fired \
         or the supervisor is dead (seed {seed:#x})"
    );
    assert!(
        telemetry.snapshot().requests_coalesced > 0,
        "8 clients replaying the same request sequence inside a 2 ms window \
         never coalesced — the batching path went untested (seed {seed:#x})"
    );
    assert!(
        telemetry.snapshot().ring_hits > 0,
        "no reply was encoded into a ring slot — the zero-copy data plane \
         went untested under chaos (seed {seed:#x})"
    );

    // Self-healing: with the plan cleared (guard dropped above), the
    // respawned pool must serve a clean burst with zero errors.
    let mut client = Client::connect(addr).expect("connect after chaos");
    for n in 0..20u64 {
        match client.run("trivial", n, 0).expect("post-chaos reply") {
            Response::Ok { .. } => {}
            other => panic!("post-chaos request failed: {other:?} (seed {seed:#x})"),
        }
    }
    let stats = client.stats_page().expect("stats");
    assert!(
        stats.contains("worker respawns"),
        "stats page must surface respawns:\n{stats}"
    );
    server.shutdown();
}

/// Retries must actually fire under chaos: with a tiny queue the shed
/// path (`Overloaded`) is hit, and the retrying client absorbs it.
#[test]
fn retries_absorb_overload_shed() {
    let _guard = serial(); // no faults here — just a saturated daemon
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect_with(
                    addr,
                    ClientConfig {
                        retry: Some(RetryPolicy {
                            max_attempts: 8,
                            jitter_seed: 7 + i,
                            ..RetryPolicy::default()
                        }),
                        ..ClientConfig::default()
                    },
                )
                .expect("connect");
                let mut sheds_seen = 0u64;
                for n in 0..30u64 {
                    // sleep(2ms) holds the single worker long enough for
                    // siblings to pile onto the depth-1 queue.
                    match client.run("sleep", 2, 0).expect("reply") {
                        Response::Ok { .. } => {}
                        Response::Overloaded => sheds_seen += 1,
                        other => panic!("request {n}: unexpected {other:?}"),
                    }
                }
                (client.stats().retries(), sheds_seen)
            })
        })
        .collect();
    let mut retries = 0u64;
    for h in handles {
        let (r, _sheds) = h.join().expect("client thread exits");
        retries += r;
    }
    assert!(
        retries > 0,
        "4 clients on a 1-worker/depth-1 daemon never got shed — overload \
         retry path untested"
    );
    server.shutdown();
}
