//! Reactor front-end tests: pipelining order, idle-connection cost,
//! and eager reclamation of closed connections.
//!
//! These run a real daemon in-process and assert on process-wide state
//! (thread counts), so the tests serialize on a mutex like the loopback
//! suite does.

use altx_serve::frame::{Request, Response};
use altx_serve::{start, Client, ServerConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn local_server(workers: usize, queue_depth: usize) -> altx_serve::ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Threads in this process, from /proc (0 when unavailable).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn run_req(workload: &str, arg: u64, deadline_ms: u32) -> Request {
    Request::Run {
        workload: workload.to_owned(),
        deadline_ms,
        arg,
    }
}

/// Pipelined requests on one connection are answered in request order:
/// a slow race submitted first must reply before fast races submitted
/// after it, even though the fast ones finish first.
#[test]
fn pipelined_replies_come_back_in_request_order() {
    let _guard = serial();
    let server = local_server(4, 32);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // sleep(120ms) first, then three trivial races that win immediately
    // on other workers. All four frames go out before any reply is read.
    client.send(&run_req("sleep", 120, 0)).expect("send sleep");
    for arg in [1u64, 2, 3] {
        client
            .send(&run_req("trivial", arg, 0))
            .expect("send trivial");
    }

    let first = client.recv().expect("first reply");
    match first {
        Response::Ok { value, .. } => assert_eq!(value, 120, "sleep's value replies first"),
        other => panic!("expected sleep's Ok first, got {other:?}"),
    }
    for expect in [1u64, 2, 3] {
        match client.recv().expect("pipelined reply") {
            Response::Ok { value, .. } => assert_eq!(value, expect, "reply order"),
            other => panic!("expected Ok({expect}), got {other:?}"),
        }
    }
    server.shutdown();
}

/// Interleaving control frames (STATS) with RUNs preserves order too —
/// the immediate reply parks behind the in-flight race's slot.
#[test]
fn control_frames_respect_pipeline_order() {
    let _guard = serial();
    let server = local_server(2, 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.send(&run_req("sleep", 80, 0)).expect("send sleep");
    client.send(&Request::Stats).expect("send stats");

    match client.recv().expect("first reply") {
        Response::Ok { value, .. } => assert_eq!(value, 80),
        other => panic!("expected the race's Ok first, got {other:?}"),
    }
    match client.recv().expect("second reply") {
        Response::Text { body } => assert!(body.contains("altxd stats"), "{body}"),
        other => panic!("expected the stats text second, got {other:?}"),
    }
    server.shutdown();
}

/// Idle connections cost file descriptors, not threads: hundreds of
/// open connections leave the daemon's thread count flat, and telemetry
/// reports them in the `conns_open` gauge.
#[test]
fn idle_connections_cost_no_threads() {
    let _guard = serial();
    const IDLE: usize = 256;
    let workers = 2;
    let server = local_server(workers, 16);
    let addr = server.local_addr();
    let telemetry = server.telemetry();

    // One active connection proves the daemon serves while idles hang.
    let mut active = Client::connect(addr).expect("connect");
    assert!(matches!(
        active.run("trivial", 1, 0).expect("reply"),
        Response::Ok { .. }
    ));
    let before = thread_count();

    let idles: Vec<Client> = (0..IDLE)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();

    // The reactor learns about each connection on its next poll pass.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let open = telemetry.snapshot().conns_open;
        if open >= (IDLE + 1) as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "conns_open stuck at {open}, want {}",
            IDLE + 1
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    if before > 0 {
        let during = thread_count();
        assert!(
            during <= before + 2,
            "{IDLE} idle connections grew threads {before} -> {during}; \
             idle connections must not cost threads"
        );
    }

    // The daemon still races under the idle load, on the same thread
    // budget.
    assert!(matches!(
        active.run("trivial", 2, 0).expect("reply under idle load"),
        Response::Ok { .. }
    ));

    drop(idles);
    server.shutdown();
}

/// Closed connections are reclaimed eagerly — the reactor notices the
/// hangup on its next poll and the gauge returns to zero without any
/// new connection arriving (regression: the old accept loop only reaped
/// finished handles when a *new* client connected, so a burst-then-idle
/// daemon held dead state indefinitely).
#[test]
fn closed_connections_are_reclaimed_without_new_arrivals() {
    let _guard = serial();
    const BURST: usize = 64;
    let server = local_server(2, 16);
    let addr = server.local_addr();
    let telemetry = server.telemetry();

    let mut burst: Vec<Client> = (0..BURST)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("burst conn {i}: {e}")))
        .collect();
    for (i, c) in burst.iter_mut().enumerate() {
        assert!(matches!(
            c.run("trivial", i as u64, 0).expect("burst reply"),
            Response::Ok { .. }
        ));
    }
    assert!(telemetry.snapshot().conns_open >= BURST as u64);

    // Drop every client. No new connection will arrive; the reactor
    // must still reclaim all per-connection state.
    drop(burst);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = telemetry.snapshot();
        if snap.conns_open == 0 && snap.conns_active == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connection state leaked: conns_open={} conns_active={}",
            snap.conns_open,
            snap.conns_active
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// The connection gauges and wakeup counter are visible over the wire
/// in both STATS and Prometheus renderings.
#[test]
fn conn_gauges_surface_in_stats_and_prometheus() {
    let _guard = serial();
    let server = local_server(2, 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(matches!(
        client.run("trivial", 7, 0).expect("reply"),
        Response::Ok { .. }
    ));

    let stats = client.stats_page().expect("stats");
    assert!(stats.contains("conns open          1"), "{stats}");
    assert!(stats.contains("reactor wakeups"), "{stats}");

    let prom = client.prometheus().expect("prometheus");
    assert!(prom.contains("altxd_conns_open 1"), "{prom}");
    assert!(prom.contains("# TYPE altxd_conns_open gauge"), "{prom}");
    assert!(prom.contains("altxd_reactor_wakeups_total"), "{prom}");
    server.shutdown();
}

/// A malformed frame gets an error reply *after* the replies it owes
/// for earlier pipelined requests, and then the connection closes.
#[test]
fn protocol_error_replies_in_order_then_closes() {
    use altx_serve::frame::{read_frame, write_frame};
    use std::io::Write;

    let _guard = serial();
    let server = local_server(2, 16);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    write_frame(&mut stream, &run_req("sleep", 60, 0).encode()).expect("send sleep");
    // A well-framed but malformed body: a RUN frame truncated to its
    // opcode byte alone (no workload, no deadline, no arg).
    stream
        .write_all(&1u32.to_be_bytes())
        .and_then(|_| stream.write_all(&[0x01]))
        .expect("write garbage frame");

    let first = read_frame(&mut stream)
        .expect("read")
        .expect("race reply first");
    match Response::decode(&first).expect("decode") {
        Response::Ok { value, .. } => assert_eq!(value, 60),
        other => panic!("expected the race's Ok, got {other:?}"),
    }
    let second = read_frame(&mut stream)
        .expect("read")
        .expect("error reply second");
    match Response::decode(&second).expect("decode") {
        Response::Error { message } => assert!(message.contains("malformed"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The daemon closed the connection after the error reply.
    match read_frame(&mut stream) {
        Ok(None) | Err(_) => {}
        Ok(Some(extra)) => panic!("connection must close, got another frame: {extra:?}"),
    }
    server.shutdown();
}

/// An *unknown opcode* in a well-formed frame is a per-request error,
/// not a connection-level one: the stream is still in sync, so the
/// daemon answers with a protocol ERROR and keeps serving — later
/// requests on the same connection still work.
#[test]
fn unknown_opcode_replies_error_and_keeps_connection() {
    use altx_serve::frame::{read_frame, write_frame};
    use std::io::Write;

    let _guard = serial();
    let server = local_server(2, 16);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    // A well-framed body with an opcode this daemon has never heard of.
    stream
        .write_all(&1u32.to_be_bytes())
        .and_then(|_| stream.write_all(&[0xEE]))
        .expect("write unknown opcode frame");
    let first = read_frame(&mut stream).expect("read").expect("error reply");
    match Response::decode(&first).expect("decode") {
        Response::Error { message } => {
            assert!(message.contains("unknown request opcode 0xee"), "{message}")
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // The connection survived: a real request on it still races.
    write_frame(&mut stream, &run_req("trivial", 5, 0).encode()).expect("send run");
    let second = read_frame(&mut stream)
        .expect("read")
        .expect("race reply after the error");
    match Response::decode(&second).expect("decode") {
        Response::Ok { value, .. } => assert_eq!(value, 5),
        other => panic!("expected Ok after unknown opcode, got {other:?}"),
    }
    server.shutdown();
}
