//! End-to-end tests: a real daemon on an ephemeral port, real client
//! connections, racing requests over the loopback.
//!
//! Tests in this binary serialize on a mutex — several assert on
//! process-wide state (thread counts) that concurrent servers would
//! perturb.

use altx::engine::OrderedEngine;
use altx::Engine;
use altx_pager::{AddressSpace, PageSize};
use altx_serve::frame::Response;
use altx_serve::{start, Client, ServerConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn local_server(workers: usize, queue_depth: usize) -> altx_serve::ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Threads in this process, from /proc (0 when unavailable).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Racing over the wire agrees with a sequential OrderedEngine run of
/// the same workload: the race always succeeds when the ordered run
/// does, and for the deterministic workload the value is identical —
/// the paper's claim that concurrency must be observably equivalent to
/// a sequential choice, now measured through the socket.
#[test]
fn racing_requests_match_ordered_engine() {
    let _guard = serial();
    let server = local_server(4, 32);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for arg in [0u64, 1, 7, 42, 1_000_003] {
        for workload in ["trivial", "lognormal", "bimodal", "prolog"] {
            let block = altx_serve::workload::build(workload, arg).expect("catalog name");
            let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
            let ordered = OrderedEngine::new().execute(&block, &mut ws);
            assert!(ordered.succeeded(), "{workload} must be satisfiable");

            match client.run(workload, arg, 0).expect("reply") {
                Response::Ok {
                    winner,
                    winner_name,
                    value,
                    ..
                } => {
                    assert!(
                        (winner as usize) < block.len(),
                        "{workload}: winner {winner} out of range"
                    );
                    assert_eq!(
                        block.alternatives()[winner as usize].name(),
                        winner_name,
                        "{workload}: name/index mismatch"
                    );
                    if workload == "trivial" {
                        assert_eq!(value, ordered.value.expect("ordered value"), "{workload}");
                    }
                }
                other => panic!("{workload}: expected Ok, got {other:?}"),
            }
        }
    }
    server.shutdown();
}

/// A deadline shorter than the work comes back DeadlineExceeded — and
/// promptly: the loser observes cancellation instead of sleeping its
/// full request out. The daemon stays healthy afterwards.
#[test]
fn deadline_exceeded_is_prompt_and_recoverable() {
    let _guard = serial();
    let server = local_server(2, 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let begin = Instant::now();
    match client.run("sleep", 10_000, 50).expect("reply") {
        Response::DeadlineExceeded { latency_us } => {
            // The race returned close to the 50 ms budget, not the 10 s
            // sleep; generous bound for loaded CI hosts.
            assert!(
                begin.elapsed() < Duration::from_secs(2),
                "deadline reply took {:?}",
                begin.elapsed()
            );
            assert!(
                latency_us >= 50_000,
                "cannot beat its own deadline: {latency_us}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // An unbounded request on the same connection still works.
    match client.run("trivial", 5, 0).expect("reply") {
        Response::Ok { value, .. } => assert_eq!(value, 5),
        other => panic!("expected Ok, got {other:?}"),
    }

    // And a deadline long enough to finish is NOT exceeded.
    match client.run("sleep", 10, 5_000).expect("reply") {
        Response::Ok { value, .. } => assert_eq!(value, 10),
        other => panic!("expected Ok, got {other:?}"),
    }
    server.shutdown();
}

/// With one worker and a depth-1 queue, concurrent slow requests are
/// shed with Overloaded — and every request still gets *some* reply.
#[test]
fn overload_sheds_with_explicit_reply() {
    let _guard = serial();
    let server = local_server(1, 1);
    let addr = server.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.run("sleep", 150, 0).expect("every request is answered")
            })
        })
        .collect();
    let replies: Vec<Response> = clients
        .into_iter()
        .map(|h| h.join().expect("joins"))
        .collect();

    let ok = replies
        .iter()
        .filter(|r| matches!(r, Response::Ok { .. }))
        .count();
    let shed = replies
        .iter()
        .filter(|r| matches!(r, Response::Overloaded))
        .count();
    assert_eq!(
        ok + shed,
        replies.len(),
        "only Ok/Overloaded expected: {replies:?}"
    );
    assert!(ok >= 1, "someone must win admission");
    assert!(
        shed >= 1,
        "8 concurrent 150ms sleeps must overflow a depth-1 queue"
    );

    // Telemetry saw the sheds.
    let snap = server.telemetry().snapshot();
    assert_eq!(snap.shed, shed as u64);
    assert_eq!(snap.completed, ok as u64);
    server.shutdown();
}

/// Unknown workloads are refused without consuming a queue slot.
#[test]
fn unknown_workload_refused() {
    let _guard = serial();
    let server = local_server(1, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(matches!(
        client.run("no-such-workload", 1, 0).expect("reply"),
        Response::UnknownWorkload
    ));
    assert_eq!(server.telemetry().snapshot().accepted, 0);
    server.shutdown();
}

/// STATS and PROMETHEUS reflect traffic, served over the same socket.
#[test]
fn stats_and_prometheus_over_the_wire() {
    let _guard = serial();
    let server = local_server(2, 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for arg in 0..5 {
        assert!(matches!(
            client.run("trivial", arg, 0).expect("reply"),
            Response::Ok { .. }
        ));
    }
    let _ = client.run("sleep", 10_000, 20).expect("reply"); // one blown deadline

    let stats = client.stats_page().expect("stats");
    assert!(stats.contains("completed           5"), "{stats}");
    assert!(stats.contains("deadline exceeded   1"), "{stats}");

    let prom = client.prometheus().expect("prometheus");
    assert!(prom.contains("altxd_requests_completed_total 5"), "{prom}");
    assert!(
        prom.contains("altxd_requests_deadline_exceeded_total 1"),
        "{prom}"
    );
    assert!(
        prom.contains("altxd_race_latency_us_bucket{le=\"+Inf\"} 5"),
        "{prom}"
    );
    assert!(
        prom.contains("altxd_alternative_wins_total{workload=\"trivial\""),
        "{prom}"
    );
    server.shutdown();
}

/// Graceful drain: a race in flight when shutdown starts is still
/// answered, and after shutdown returns no daemon thread survives —
/// losing alternatives observed cancellation rather than being leaked.
#[test]
fn shutdown_drains_in_flight_and_leaks_no_threads() {
    let _guard = serial();
    let baseline = thread_count();

    let server = local_server(2, 8);
    let addr = server.local_addr();

    // Park a slow race in flight.
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.run("sleep", 300, 0)
            .expect("in-flight request is answered")
    });
    std::thread::sleep(Duration::from_millis(100)); // let it get admitted

    server.shutdown(); // must drain the sleeper before returning
    let reply = in_flight.join().expect("client joins");
    assert!(
        matches!(reply, Response::Ok { value: 300, .. }),
        "got {reply:?}"
    );

    if baseline > 0 {
        // All daemon threads (accept, connections, workers, race
        // alternates) are joined; only OS reaping latency remains.
        let deadline = Instant::now() + Duration::from_secs(3);
        loop {
            let now = thread_count();
            if now <= baseline {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "thread leak: {now} threads vs baseline {baseline}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// The SHUTDOWN opcode drains the daemon remotely.
#[test]
fn shutdown_opcode_stops_the_daemon() {
    let _guard = serial();
    let server = local_server(1, 4);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(
        client.run("trivial", 1, 0).expect("reply"),
        Response::Ok { .. }
    ));
    client.shutdown().expect("shutdown acked");
    server.wait(); // returns only because the opcode stopped the daemon
    assert!(
        Client::connect(addr).is_err() || {
            // The listener is gone; a racing connect may still succeed
            // before the OS tears the socket down, but no frames flow.
            let mut c = Client::connect(addr).expect("checked above");
            c.run("trivial", 1, 0).is_err()
        },
        "daemon must stop accepting after SHUTDOWN"
    );
}
