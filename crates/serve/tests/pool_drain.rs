//! Property tests for the worker pool's shutdown drain guarantee.
//!
//! The contract under concurrent `shutdown()` + `try_submit()`:
//!
//! * every job whose `try_submit` returned `Ok` runs **exactly once**,
//!   and has finished by the time `shutdown()` returns;
//! * a refused submission fails with `Overloaded` (queue full) or
//!   `ShuttingDown` (queue closed) — nothing else, and the job is
//!   provably never run;
//! * the guarantee holds when admitted jobs panic (satellite of the
//!   fault-injection work: a poisoned queue lock must not wedge the
//!   drain).
//!
//! Driven by `altx-check`: each case draws pool geometry and a
//! submitter schedule from a seeded RNG, so a failure prints a replay
//! seed.

use altx_check::{check, CaseRng};
use altx_serve::pool::{SubmitError, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

#[test]
fn admitted_jobs_all_run_before_shutdown_returns() {
    check("pool-drain", 40, |rng: &mut CaseRng| {
        let workers = rng.usize_in(1, 4);
        let queue_depth = rng.usize_in(1, 16);
        let submitters = rng.usize_in(1, 4);
        let jobs_per_submitter = rng.usize_in(5, 40);
        let panic_one_in = rng.u64_in(3, 20); // some cases crash often

        let pool = Arc::new(WorkerPool::new(workers, queue_depth));
        let ran = Arc::new(AtomicU64::new(0));
        // Submitters and the shutdown all release together so admission
        // genuinely races the close.
        let barrier = Arc::new(Barrier::new(submitters + 1));

        let handles: Vec<_> = (0..submitters)
            .map(|s| {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut admitted = 0u64;
                    let mut admitted_panickers = 0u64;
                    for j in 0..jobs_per_submitter {
                        let crashes = (s + j) as u64 % panic_one_in == 0;
                        let ran = Arc::clone(&ran);
                        let submitted = pool.try_submit(Box::new(move || {
                            ran.fetch_add(1, Ordering::SeqCst);
                            if crashes {
                                panic!("chaos job {s}/{j}");
                            }
                        }));
                        match submitted {
                            Ok(()) => {
                                admitted += 1;
                                admitted_panickers += u64::from(crashes);
                            }
                            Err(SubmitError::Overloaded | SubmitError::ShuttingDown) => {}
                        }
                    }
                    (admitted, admitted_panickers)
                })
            })
            .collect();

        barrier.wait();
        pool.shutdown(); // races the submitters; must never panic

        let mut admitted = 0u64;
        let mut admitted_panickers = 0u64;
        for h in handles {
            let (a, p) = h.join().expect("submitter exits");
            admitted += a;
            admitted_panickers += p;
        }
        // `shutdown` returned before the submitter tallies were merged,
        // but the drain guarantee is about jobs, not tallies: every
        // admitted job already ran (exactly once — the counter can't
        // exceed admissions).
        assert_eq!(
            ran.load(Ordering::SeqCst),
            admitted,
            "admitted jobs must run exactly once before shutdown returns"
        );
        assert_eq!(
            pool.stats().jobs_panicked(),
            admitted_panickers,
            "every admitted panicking job is contained and counted"
        );
        // Post-shutdown submissions are refused with ShuttingDown.
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
    });
}

/// Once `shutdown` has returned, submissions must be refused with
/// `ShuttingDown` from every thread, forever — not `Overloaded`, and
/// never admitted.
#[test]
fn submissions_after_shutdown_always_shutting_down() {
    check("post-shutdown-submit", 20, |rng: &mut CaseRng| {
        let pool = Arc::new(WorkerPool::new(rng.usize_in(1, 3), rng.usize_in(1, 8)));
        pool.shutdown();
        let threads = rng.usize_in(1, 4);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(
                            pool.try_submit(Box::new(|| panic!("must never run"))),
                            Err(SubmitError::ShuttingDown)
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("checker exits");
        }
        assert_eq!(pool.stats().jobs_panicked(), 0, "refused jobs never ran");
    });
}
