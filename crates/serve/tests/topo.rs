//! CPU placement: topology discovery against fixture sysfs trees, the
//! pinning failure contract, worker-group placement, and the `--pin`-off
//! zero-syscall equivalence gate.
//!
//! The discovery tests never touch the live machine: each builds a fake
//! `/sys/devices/system/cpu` under the temp dir (an SMT desktop, a
//! 2-node NUMA box, a cgroup-restricted cpuset) and drives
//! [`CpuTopology::from_sysfs`] at it, so they pass identically on a
//! 1-CPU CI container and a 2-socket server.
//!
//! The syscall-facing tests share one process-wide counter
//! ([`pin::affinity_syscalls`]), so every test that may move it — or
//! that asserts it does *not* move — serializes on [`SYSCALLS`].

use altx_serve::pool::{JobMeta, PoolConfig, WorkerPool};
use altx_serve::server::{start, ServerConfig};
use altx_serve::topo::{plan_shards, CpuTopology};
use altx_serve::{pin, Lanes};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Serializes tests that read or move the process-wide affinity
/// syscall counter (or the thread affinity itself).
static SYSCALLS: Mutex<()> = Mutex::new(());

fn syscall_guard() -> std::sync::MutexGuard<'static, ()> {
    SYSCALLS.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh fixture root under the temp dir, unique per test.
fn fixture_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("altx-topo-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).expect("create fixture root");
    root
}

/// Adds `cpuN` with the given topology files; `node` also creates the
/// `nodeM` link-directory the kernel exposes inside each cpu dir.
fn add_cpu(root: &Path, id: usize, package: usize, core: usize, node: Option<usize>) {
    let dir = root.join(format!("cpu{id}/topology"));
    fs::create_dir_all(&dir).expect("create cpu dir");
    fs::write(dir.join("physical_package_id"), format!("{package}\n")).unwrap();
    fs::write(dir.join("core_id"), format!("{core}\n")).unwrap();
    if let Some(n) = node {
        fs::create_dir_all(root.join(format!("cpu{id}/node{n}"))).unwrap();
    }
}

/// An 8-thread/4-core single-socket SMT box with the usual Linux
/// numbering: cpu i and cpu i+4 are siblings on physical core i.
fn smt_box() -> PathBuf {
    let root = fixture_root("smt");
    for id in 0..8 {
        add_cpu(&root, id, 0, id % 4, None);
    }
    fs::write(root.join("online"), "0-7\n").unwrap();
    root
}

/// A 2-node NUMA box: node 0 holds cpus 0-3 (socket 0), node 1 holds
/// cpus 4-7 (socket 1), no SMT.
fn numa_box() -> PathBuf {
    let root = fixture_root("numa");
    for id in 0..8 {
        let socket = id / 4;
        add_cpu(&root, id, socket, id % 4, Some(socket));
    }
    fs::write(root.join("online"), "0-7\n").unwrap();
    root
}

#[test]
fn smt_siblings_stay_on_one_physical_core() {
    let root = smt_box();
    let topo = CpuTopology::from_sysfs(&root, None).expect("parse SMT fixture");
    assert_eq!(topo.cpus.len(), 8);
    assert_eq!(topo.nodes(), 1);
    assert_eq!(
        topo.physical_cores(),
        vec![vec![0, 4], vec![1, 5], vec![2, 6], vec![3, 7]],
        "hyperthread pairs group under their physical core"
    );

    let plan = plan_shards(&topo, 4);
    assert!(plan.disjoint);
    assert_eq!(plan.cores, 4);
    for (i, set) in plan.shards.iter().enumerate() {
        assert_eq!(
            set,
            &vec![i, i + 4],
            "each shard owns one whole core, both siblings"
        );
    }

    let plan = plan_shards(&topo, 2);
    assert_eq!(plan.shards, vec![vec![0, 4, 1, 5], vec![2, 6, 3, 7]]);
}

#[test]
fn numa_shards_land_on_single_nodes() {
    let root = numa_box();
    let topo = CpuTopology::from_sysfs(&root, None).expect("parse NUMA fixture");
    assert_eq!(topo.nodes(), 2);

    let plan = plan_shards(&topo, 2);
    assert!(plan.disjoint);
    assert_eq!(plan.nodes, 2);
    assert_eq!(
        plan.shards,
        vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        "node-major layout keeps each shard on one node's cpus"
    );

    // 4 shards across 2 nodes: still disjoint, still node-pure.
    let plan = plan_shards(&topo, 4);
    assert!(plan.disjoint);
    for set in &plan.shards {
        let topo_nodes: Vec<usize> = set
            .iter()
            .map(|id| topo.cpus.iter().find(|c| c.id == *id).unwrap().node)
            .collect();
        assert!(
            topo_nodes.windows(2).all(|w| w[0] == w[1]),
            "shard {set:?} spans nodes {topo_nodes:?}"
        );
    }
}

#[test]
fn restricted_cpuset_narrows_discovery() {
    let root = numa_box();
    // A cgroup cpuset (or inherited taskset) of {2,3,6}: discovery must
    // only see those cpus, and the plan must only hand out those cpus.
    let topo = CpuTopology::from_sysfs(&root, Some(&[2, 3, 6])).expect("parse restricted");
    let ids: Vec<usize> = topo.cpus.iter().map(|c| c.id).collect();
    assert_eq!(ids, vec![2, 3, 6]);
    let plan = plan_shards(&topo, 2);
    let union = plan.union();
    assert!(union.iter().all(|id| [2, 3, 6].contains(id)));

    // A mask that excludes every present cpu is an error, not a panic
    // and not an empty plan.
    let err = CpuTopology::from_sysfs(&root, Some(&[64, 65])).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn online_cpulist_wins_but_malformed_falls_back_to_dirs() {
    let root = smt_box();
    fs::write(root.join("online"), "0-2\n").unwrap();
    let topo = CpuTopology::from_sysfs(&root, None).expect("parse trimmed online");
    let ids: Vec<usize> = topo.cpus.iter().map(|c| c.id).collect();
    assert_eq!(ids, vec![0, 1, 2], "the online cpulist is authoritative");

    fs::write(root.join("online"), "not-a-cpulist\n").unwrap();
    let topo = CpuTopology::from_sysfs(&root, None).expect("fall back to cpuN dirs");
    assert_eq!(topo.cpus.len(), 8, "malformed online degrades to listing");
}

#[test]
fn sparse_tree_defaults_instead_of_failing() {
    // Only bare cpuN dirs, no topology files, no node links, no online
    // file: every cpu defaults to package 0 / core = id / node 0.
    let root = fixture_root("sparse");
    for id in 0..3 {
        fs::create_dir_all(root.join(format!("cpu{id}"))).unwrap();
    }
    let topo = CpuTopology::from_sysfs(&root, None).expect("parse sparse tree");
    assert_eq!(topo.cpus.len(), 3);
    assert_eq!(topo.nodes(), 1);
    assert_eq!(topo.physical_cores().len(), 3, "no SMT assumed");
}

#[cfg(target_os = "linux")]
#[test]
fn refused_pin_logs_and_leaves_affinity_untouched() {
    let _g = syscall_guard();
    let before = pin::current_affinity().expect("getaffinity works on Linux");
    // CPU 1023 almost certainly does not exist here: the kernel answers
    // EINVAL. Inside a locked-down container the same call may draw
    // EPERM. Either way the contract is identical — report false, leave
    // the thread unpinned, never abort.
    assert!(!pin::pin_current_thread("topo-test", &[pin::MAX_CPUS - 1]));
    assert_eq!(
        pin::current_affinity().expect("still readable"),
        before,
        "a refused pin must not change the running mask"
    );
}

#[cfg(target_os = "linux")]
#[test]
fn pinned_pool_places_each_worker_group_on_its_cores() {
    let _g = syscall_guard();
    let avail = pin::current_affinity().expect("getaffinity works on Linux");
    if avail.len() < 2 {
        eprintln!("skipping: needs >= 2 cpus, have {}", avail.len());
        return;
    }
    // Two worker groups, each pinned to half the available cpus.
    let mid = avail.len() / 2;
    let sets = vec![avail[..mid].to_vec(), avail[mid..].to_vec()];
    // Stealing stays off so each probe provably runs on its own
    // group's worker (a stolen probe would report the thief's mask).
    let pool = WorkerPool::with_config(PoolConfig {
        groups: 2,
        pin_cores: Some(sets.clone()),
        ..PoolConfig::fifo(2, 64)
    });
    // Each group's lone worker reports its own mask from inside a job.
    let (tx, rx) = mpsc::channel::<(usize, Vec<usize>)>();
    for group in 0..2 {
        let tx = tx.clone();
        pool.try_submit_at(
            Box::new(move || {
                let mask = pin::current_affinity().unwrap_or_default();
                let _ = tx.send((group, mask));
            }),
            JobMeta {
                group,
                ..JobMeta::default()
            },
        )
        .expect("submit probe job");
    }
    for _ in 0..2 {
        let (group, mask) = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("probe job ran");
        assert_eq!(
            mask, sets[group],
            "group {group}'s worker runs on exactly its assigned cpus"
        );
    }
    pool.shutdown();
}

#[test]
fn pin_off_server_makes_zero_affinity_syscalls() {
    let _g = syscall_guard();
    let before = pin::affinity_syscalls();
    // A representative pin-off config: sharded, stealing, laned — every
    // subsystem that *could* pin, with pinning left at the default.
    let server = start(ServerConfig {
        shards: 2,
        workers: 2,
        steal: true,
        lanes: Lanes::parse("rt:trivial;batch:sleep").expect("valid lane spec"),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    server.shutdown();
    assert_eq!(
        pin::affinity_syscalls(),
        before,
        "--pin off must mean zero affinity syscalls, not pin-to-everything"
    );
}

#[cfg(target_os = "linux")]
#[test]
fn pin_on_server_starts_serves_and_counts_placement() {
    let _g = syscall_guard();
    let before = pin::affinity_syscalls();
    let server = start(ServerConfig {
        shards: 2,
        workers: 2,
        steal: true,
        pin: true,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let telemetry = server.telemetry();
    server.shutdown();
    // Discovery alone costs one counted getaffinity; each successful
    // thread pin adds a set. In a restrictive sandbox the pins may all
    // be refused — the daemon must still come up and drain cleanly —
    // so only the discovery floor is asserted unconditionally.
    assert!(
        pin::affinity_syscalls() > before,
        "--pin at least attempts discovery"
    );
    let snap = telemetry.snapshot();
    assert!(
        snap.pinned_shards <= 2,
        "pinned shard gauge never exceeds the shard count"
    );
}
