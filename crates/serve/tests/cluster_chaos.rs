//! Cluster chaos soak: three in-process daemons racing alternatives
//! across real loopback links while a seeded fault plan mangles the
//! wire — drops, delays, duplicates, truncations — plus a timed
//! one-way partition that heals.
//!
//! The contract under test is the cluster's whole failure story at
//! once:
//!
//! * **exactly-once answers** — every client request gets exactly one
//!   reply no matter what the peer links do; a dropped reply hangs the
//!   client (socket timeout → panic) and a duplicate desynchronizes
//!   its framing, so the plain `client.run` loop *is* the check;
//! * **hedged recovery** — remote legs whose results the wire eats are
//!   redispatched locally when their per-leg deadline expires
//!   (`remote_redispatched > 0`);
//! * **health lifecycle** — a one-way partition that TCP keeps alive
//!   (heartbeat replies silently swallowed) drives the peer through
//!   Suspect into Quarantined, placement stops shipping to it, and
//!   after the heal the peer is readmitted and *wins races again* —
//!   quarantine is an episode, not a verdict.
//!
//! This test lives in its own binary because the fault plan is
//! process-global. The seed comes from `ALTX_CHAOS_SEED` (decimal or
//! 0x-hex) so CI can pin it and failures replay exactly; every
//! assertion message carries the seed.

use altx::faults::{self, FaultConfig, FaultPlan};
use altx_serve::client::ClientConfig;
use altx_serve::server::{start, ServerConfig, ServerHandle};
use altx_serve::{Client, PeerConfig};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The fault plan is process-global, so tests in this binary must not
/// overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const DEFAULT_SEED: u64 = 0x0C1D_5EED;

fn seed_from_env() -> u64 {
    match std::env::var("ALTX_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = s
                .strip_prefix("0x")
                .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or_else(|_| panic!("ALTX_CHAOS_SEED must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// A pure executor: no peers of its own, it only admits shipped legs
/// and dials results home.
fn executor() -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        ..ServerConfig::default()
    })
    .expect("start executor node")
}

/// The origin node: ships one leg of every race (explore every race)
/// and runs a fast heartbeat so the health lifecycle turns over inside
/// a test-sized window.
fn origin(peers: Vec<String>) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        peer: PeerConfig {
            peers,
            explore_every: 1,
            heartbeat_ms: 50,
            suspect_ms: 150,
            ..PeerConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start origin node")
}

fn wait_for(
    handle: &ServerHandle,
    seed: u64,
    what: &str,
    cond: impl Fn(&altx_serve::telemetry::Snapshot) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if cond(&handle.telemetry().snapshot()) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what} (seed {seed:#x})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Extracts one peer's row from the peer stats page.
fn peer_line<'a>(page: &'a str, addr: &str) -> &'a str {
    page.lines()
        .find(|l| {
            let mut it = l.split_whitespace();
            it.next() == Some("peer") && it.next() == Some(addr)
        })
        .unwrap_or_else(|| panic!("no stats row for peer {addr}:\n{page}"))
}

/// Reads the token following `key` in a peer stats row.
fn peer_field<'a>(line: &'a str, key: &str) -> &'a str {
    let mut it = line.split_whitespace();
    while let Some(tok) = it.next() {
        if tok == key {
            return it
                .next()
                .unwrap_or_else(|| panic!("{key} has no value: {line}"));
        }
    }
    panic!("no {key} field in peer row: {line}");
}

fn peer_wins(page: &str, addr: &str) -> u64 {
    peer_field(peer_line(page, addr), "wins")
        .parse()
        .expect("wins is a counter")
}

fn peer_health(page: &str, addr: &str) -> String {
    peer_field(peer_line(page, addr), "health").to_owned()
}

#[test]
fn cluster_survives_wire_chaos_and_a_healing_partition() {
    let _guard = serial();
    let seed = seed_from_env();

    // Executors first so the origin's dials land; the origin explores
    // every race, so one leg of every lognormal race ships out.
    let b = executor();
    let c = executor();
    let b_addr = b.local_addr().to_string();
    let c_addr = c.local_addr().to_string();
    let a = origin(vec![b_addr.clone(), c_addr.clone()]);
    wait_for(&a, seed, "links to both executors", |s| s.peers_up == 2);

    // The client-daemon connection carries no chaos sites: a lost or
    // doubled reply here is the cluster's fault, not the test rig's.
    let mut client = Client::connect_with(
        a.local_addr(),
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            ..ClientConfig::default()
        },
    )
    .expect("connect to origin");
    // Bimodal races: the local leg is slow 30% of the time, so when the
    // wire eats a remote result the race is regularly still open at the
    // leg deadline — exactly the window hedged recovery exists for.
    let mut arg = 0u64;
    let mut race = |client: &mut Client| {
        let n = arg;
        arg += 1;
        match client.run("bimodal", n, 0) {
            Ok(_) => {}
            Err(e) => panic!("race {n} lost its reply: {e} (seed {seed:#x})"),
        }
    };

    // --- Phase 1: seeded wire chaos on every peer link. -------------
    // On top of the wire mix, a slice of local legs fail outright
    // (guard-unsatisfied semantics): a race whose local leg failed and
    // whose remote result the wire ate can *only* finish through the
    // leg-deadline redispatch path, so hedged recovery is exercised
    // structurally rather than by timing luck.
    let t0 = Instant::now();
    let mut cfg = FaultConfig::net_chaos(seed);
    cfg.p_fail = 0.2;
    // Partitions are driven manually below so the quarantine and the
    // heal happen at asserted points; random multi-second partition
    // windows on top would only turn phase boundaries into dice rolls.
    cfg.net.p_partition = 0.0;
    let plan = FaultPlan::new(cfg);
    let chaos = faults::install_guarded(plan.clone());
    for _ in 0..120 {
        race(&mut client);
    }
    assert!(
        plan.net_injected_total() > 0,
        "120 races with the chaos mix installed injected nothing (seed {seed:#x})"
    );
    eprintln!("phase 1 (wire chaos): {:?}", t0.elapsed());

    // --- Phase 2: a timed one-way partition. ------------------------
    // Everything B says is swallowed while the origin's sends still
    // flow: the asymmetric failure TCP keeps alive. Heartbeat replies
    // vanish on the origin's receive side of its B link, and results
    // vanish on the executors' dial-back path (both executors dial the
    // same origin address, so that send site covers B and C alike).
    // B goes Suspect then Quarantined, placement stops shipping to it,
    // and the legs whose results the partition ate expire and are
    // redispatched locally.
    let t1 = Instant::now();
    let a_addr = a.local_addr().to_string();
    let recv_site = format!("peer.link.{b_addr}.recv");
    let result_site = format!("peer.link.{a_addr}.send");
    plan.partition(&recv_site);
    plan.partition(&result_site);
    let deadline = Instant::now() + Duration::from_secs(15);
    let wins_before_heal = loop {
        let page = client.peer_stats().expect("stats during partition");
        if peer_health(&page, &b_addr) == "quarantined" {
            break peer_wins(&page, &b_addr);
        }
        assert!(
            Instant::now() < deadline,
            "the partitioned peer was never quarantined (seed {seed:#x}):\n{page}"
        );
        race(&mut client);
        std::thread::sleep(Duration::from_millis(20));
    };
    eprintln!("phase 2 (partition → quarantine): {:?}", t1.elapsed());

    // Legs shipped into the chaos (dropped EXEC_ALTs, swallowed
    // results, the partition window) must have expired and been
    // redispatched locally by now; drive a few more races if the
    // counter is still settling.
    let t2 = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(15);
    while a.telemetry().snapshot().remote_redispatched == 0 {
        assert!(
            Instant::now() < deadline,
            "no remote leg was ever redispatched locally (seed {seed:#x})"
        );
        race(&mut client);
        std::thread::sleep(Duration::from_millis(10));
    }
    eprintln!("phase 2b (redispatch observed): {:?}", t2.elapsed());

    // --- Phase 3: heal. ---------------------------------------------
    // The wire chaos stays on — healing the partition is not the end
    // of a soak — and the next heartbeat reply readmits B.
    let t3 = Instant::now();
    plan.heal(&recv_site);
    plan.heal(&result_site);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let page = client.peer_stats().expect("stats after heal");
        if peer_health(&page, &b_addr) == "up" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healed peer was never readmitted (seed {seed:#x}):\n{page}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    eprintln!("phase 3 (heal → readmission): {:?}", t3.elapsed());

    // Readmission must be real: the healed peer gets legs again and
    // wins races again, not just a label flip. The wire chaos is still
    // on, and a race whose result the wire eats blocks for the full
    // unbounded leg allowance before its redispatch — a couple of
    // those in one burst eat tens of seconds, hence the wide deadline.
    let t4 = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for _ in 0..20 {
            race(&mut client);
        }
        let page = client.peer_stats().expect("stats while racing after heal");
        if peer_wins(&page, &b_addr) > wins_before_heal {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "readmitted peer never won a race after the heal \
             (wins stuck at {wins_before_heal}, seed {seed:#x}):\n{page}"
        );
    }
    eprintln!("phase 3b (healed peer wins again): {:?}", t4.elapsed());
    drop(chaos);

    // The lifecycle and recovery machinery all actually fired.
    let snap = a.telemetry().snapshot();
    assert!(
        snap.peer_quarantines >= 1,
        "quarantine counter lost the episode (seed {seed:#x})"
    );
    assert!(
        snap.remote_redispatched >= 1,
        "redispatch counter lost the recoveries (seed {seed:#x})"
    );
    assert!(
        snap.remote_dispatched > 0 && snap.completed > 0,
        "the soak never actually raced (seed {seed:#x})"
    );

    // With the plan cleared the cluster serves a clean burst.
    for n in 0..20u64 {
        client.run("trivial", n, 0).expect("post-chaos reply");
    }
    a.shutdown();
    b.shutdown();
    c.shutdown();
}
