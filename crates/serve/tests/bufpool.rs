//! Property tests of the frame-buffer pool: recycled buffers never leak
//! bytes between frames, the high-water cap holds under any put/get
//! interleaving, and the pooled encode/decode path runs with a >90% hit
//! rate at steady state (timed with the micro-benchmark harness).

use altx_bench::Micro;
use altx_check::check;
use altx_serve::bufpool::{BufPool, DEFAULT_MAX_HELD, MAX_RETAIN_CAPACITY};
use altx_serve::frame::{FrameDecoder, Response};

/// Decoding through recycled buffers yields exactly the bytes that were
/// framed — no stale tail from a previous (longer) tenant, no
/// truncation — across random frame sizes, orders, and pool pressure.
#[test]
fn recycled_buffers_never_leak_bytes() {
    check("recycled_buffers_never_leak_bytes", 64, |rng| {
        let mut pool = BufPool::new(rng.usize_in(1, 8));
        let mut decoder = FrameDecoder::new();
        let nframes = rng.usize_in(1, 24);
        // Frame i carries `len` copies of a per-frame marker byte.
        let bodies: Vec<Vec<u8>> = (0..nframes)
            .map(|i| {
                let len = rng.usize_in(0, 2048);
                vec![(i % 251) as u8 + 1; len]
            })
            .collect();
        let mut wire = Vec::new();
        for body in &bodies {
            wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
            wire.extend_from_slice(body);
        }
        // Feed the wire bytes in random-sized chunks, draining after each.
        let mut decoded: Vec<Vec<u8>> = Vec::new();
        let mut off = 0;
        while off < wire.len() {
            let n = rng.usize_in(1, (wire.len() - off).min(512) + 1);
            decoder.extend(&wire[off..off + n]);
            off += n;
            loop {
                let mut buf = pool.get();
                match decoder.next_frame_into(&mut buf) {
                    Ok(true) => {
                        decoded.push(buf.clone());
                        pool.put(buf); // return it dirty: the pool must scrub
                    }
                    Ok(false) => {
                        pool.put(buf);
                        break;
                    }
                    Err(e) => panic!("well-formed wire stream failed: {e}"),
                }
            }
        }
        assert_eq!(decoded, bodies, "pooled decode must be byte-identical");
        decoder.finish().expect("no partial frame left behind");
    });
}

/// Every buffer handed out by the pool is empty, whatever was left in
/// it when it was returned.
#[test]
fn pool_gets_are_always_empty() {
    check("pool_gets_are_always_empty", 64, |rng| {
        let mut pool = BufPool::new(rng.usize_in(1, 16));
        for _ in 0..rng.usize_in(1, 100) {
            if rng.bool() {
                let mut junk = pool.get();
                junk.extend_from_slice(&rng.bytes(0, 300));
                pool.put(junk);
            } else {
                let buf = pool.get();
                assert!(buf.is_empty(), "pool leaked {} bytes", buf.len());
                pool.put(buf);
            }
        }
    });
}

/// The pool never holds more than its cap, and never retains a buffer
/// whose capacity exceeds the retention limit, under random churn.
#[test]
fn high_water_cap_holds_under_churn() {
    check("high_water_cap_holds_under_churn", 64, |rng| {
        let cap = rng.usize_in(0, 12);
        let mut pool = BufPool::new(cap);
        let mut out: Vec<Vec<u8>> = Vec::new();
        for _ in 0..rng.usize_in(1, 200) {
            if rng.bool() || out.is_empty() {
                out.push(pool.get());
            } else {
                let mut buf = out.swap_remove(rng.usize_in(0, out.len()));
                if rng.chance(0.1) {
                    // Occasionally grow a buffer past the retention
                    // limit; the pool must refuse to keep it.
                    buf.reserve(MAX_RETAIN_CAPACITY + 1);
                }
                pool.put(buf);
            }
            assert!(pool.held() <= cap, "held {} > cap {cap}", pool.held());
        }
        for buf in out {
            pool.put(buf);
        }
        assert!(pool.held() <= cap);
    });
}

/// Steady-state encode/decode through the pool: after the first lap
/// primes the free list, essentially every get is a recycle. The loop
/// is timed with the micro harness so the bench target and this test
/// exercise the identical path; the assertion is on the hit rate.
#[test]
fn steady_state_hit_rate_exceeds_90_percent() {
    let mut pool = BufPool::new(DEFAULT_MAX_HELD);
    let reply = Response::Ok {
        winner: 1,
        winner_name: "instant-b".to_owned(),
        latency_us: 123,
        value: 42,
    };
    let mut decoder = FrameDecoder::new();
    Micro::new().sample_size(5).run("pooled encode+decode", || {
        // Encode a reply into a pooled buffer, frame it, decode it back
        // through another pooled buffer — the daemon's per-request path.
        let mut encoded = pool.get();
        reply.encode_into(&mut encoded);
        decoder.extend(&(encoded.len() as u32).to_be_bytes());
        decoder.extend(&encoded);
        let mut body = pool.get();
        assert!(matches!(decoder.next_frame_into(&mut body), Ok(true)));
        let decoded = Response::decode(&body).expect("round-trips");
        pool.put(encoded);
        pool.put(body);
        decoded
    });
    let stats = pool.stats();
    let (recycled, misses) = (stats.recycled(), stats.misses());
    let hit_rate = recycled as f64 / (recycled + misses) as f64;
    assert!(
        hit_rate > 0.90,
        "steady-state pool hit rate {hit_rate:.3} (recycled {recycled}, misses {misses})"
    );
}
