//! Cluster peering end-to-end: two real daemons racing alternatives
//! across the wire, plus a byte-level fake peer for failure injection.
//!
//! The mesh under test is deliberately asymmetric: node A runs with no
//! peers configured (pure executor role — its outbound links are dialed
//! on demand to ship results home), node B lists A as a peer and is
//! forced to explore (`explore_every = 1`) so every race ships one
//! non-favourite alternative. That exercises both roles of every node
//! without waiting for the transfer model to warm up.

use altx_serve::frame::{read_frame, write_frame, Request, Response};
use altx_serve::server::{start, ServerConfig, ServerHandle};
use altx_serve::{Client, PeerConfig};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Serialize the servers in this file: each opens real sockets and
/// spawns pools; overlapping them makes timing assertions flaky.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn node(peers: Vec<String>, explore_every: u64) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        peer: PeerConfig {
            peers,
            explore_every,
            ..PeerConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start node")
}

/// Polls until `cond(snapshot)` holds or the deadline passes.
fn wait_for(
    handle: &ServerHandle,
    what: &str,
    cond: impl Fn(&altx_serve::telemetry::Snapshot) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if cond(&handle.telemetry().snapshot()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A two-node mesh where B ships one alternative of every race to A:
/// with a heavy-tailed workload some shipped draws beat the local
/// favourite, so remote dispatch, results, majority commits, and
/// remote wins all happen over real sockets.
#[test]
fn remote_alternatives_win_races_across_the_mesh() {
    let _guard = serial();
    let a = node(Vec::new(), 16);
    let b = node(vec![a.local_addr().to_string()], 1);
    wait_for(&b, "B's link to A to come up", |s| s.peers_up == 1);

    let mut client = Client::connect(b.local_addr()).expect("connect B");
    let mut ok = 0u64;
    for arg in 0..200u64 {
        match client.run("lognormal", arg, 0).expect("reply") {
            Response::Ok { .. } => ok += 1,
            Response::Overloaded => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert!(ok > 0, "no race completed");

    let sb = b.telemetry().snapshot();
    assert!(sb.remote_dispatched > 0, "B never shipped an alternative");
    assert!(sb.remote_results > 0, "no remote result ever came home");
    assert!(
        sb.remote_wins > 0,
        "200 heavy-tailed races and the remote leg never won once \
         (dispatched {}, results {})",
        sb.remote_dispatched,
        sb.remote_results
    );
    let sa = a.telemetry().snapshot();
    assert!(
        sa.remote_execs > 0,
        "A never executed a shipped alternative"
    );
    assert!(
        sa.commit_votes > 0,
        "B committed winners without ever asking A for a vote"
    );

    // The per-peer table is visible over the wire on both nodes.
    let page = client.peer_stats().expect("peer stats page");
    assert!(page.contains(&a.local_addr().to_string()), "{page}");

    b.shutdown();
    a.shutdown();
}

/// On an instant workload the local favourite always beats the shipped
/// alternative's round trip: dispatches happen (exploration), wins do
/// not, and every request is still answered exactly once.
#[test]
fn remote_losses_never_block_or_double_answer() {
    let _guard = serial();
    let a = node(Vec::new(), 16);
    let b = node(vec![a.local_addr().to_string()], 1);
    wait_for(&b, "B's link to A to come up", |s| s.peers_up == 1);

    let mut client = Client::connect(b.local_addr()).expect("connect B");
    // Warm both nodes first: engine thread spawn, the result link A
    // dials back to B, and the pool's first wakeups all land in these
    // races, and a cold local leg *can* lose to the wire once or twice.
    for arg in 0..30u64 {
        client.run("trivial", arg, 0).expect("warmup reply");
    }
    let before = b.telemetry().snapshot();
    for arg in 0..100u64 {
        match client.run("trivial", arg, 0).expect("reply") {
            Response::Ok { value, .. } => assert_eq!(value, arg),
            Response::Overloaded => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    let sb = b.telemetry().snapshot();
    let dispatched = sb.remote_dispatched - before.remote_dispatched;
    let wins = sb.remote_wins - before.remote_wins;
    assert!(dispatched > 0, "exploration never shipped");
    // Once warm, an instant local favourite beats a network round trip
    // essentially always; stray scheduler preemptions are tolerated
    // (under a loaded CI box they cluster, so the bound is 10%, not a
    // single win).
    assert!(
        wins * 10 <= dispatched,
        "instant local favourites kept losing to the wire: \
         {wins} remote wins in {dispatched} dispatches"
    );
    b.shutdown();
    a.shutdown();
}

/// A peer that dies mid-race: a byte-level fake acks admission for one
/// shipped alternative, never reports a result, and drops the link.
/// The origin must convert the orphan into a failed guard, commit the
/// local winner *degraded* (its only co-voter is gone — no majority),
/// answer the client exactly once, and keep serving with the peer down.
#[test]
fn peer_death_mid_race_degrades_and_answers_exactly_once() {
    let _guard = serial();

    // The fake peer: accept the origin's link, ack the first EXEC_ALT
    // as admitted, then vanish without ever sending ALT_RESULT.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let fake_addr = listener.local_addr().expect("fake addr");
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("origin dials in");
        loop {
            let Ok(Some(body)) = read_frame(&mut conn) else {
                return; // origin gone first
            };
            match Request::decode(&body) {
                Ok(Request::ExecAlt { .. }) => {
                    let ack = Response::Text {
                        body: "ok\n".to_owned(),
                    };
                    let _ = write_frame(&mut conn, &ack.encode());
                    return; // die with the alternative still pending
                }
                _ => {
                    // Pre-race traffic (e.g. nothing today) — ack and
                    // keep reading until the EXEC_ALT arrives.
                    let ack = Response::Text {
                        body: "ok\n".to_owned(),
                    };
                    let _ = write_frame(&mut conn, &ack.encode());
                }
            }
        }
    });

    let origin = node(vec![fake_addr.to_string()], 1);
    wait_for(&origin, "link to the fake peer", |s| s.peers_up == 1);

    let mut client = Client::connect(origin.local_addr()).expect("connect origin");
    // One race with the doomed peer in it. The local leg always has
    // the favourite, so the race can finish without the orphan.
    match client.run("lognormal", 7, 0).expect("exactly one reply") {
        Response::Ok { .. } => {}
        other => panic!("race with a dead peer must still succeed: {other:?}"),
    }

    // The orphan is converted, the commit is degraded (1 of 2 voters),
    // and nothing about it reaches the client twice.
    wait_for(&origin, "degraded commit accounting", |s| {
        s.commits_degraded >= 1
    });
    let s = origin.telemetry().snapshot();
    assert!(
        s.remote_dispatched >= 1,
        "the alternative was never shipped"
    );
    assert_eq!(s.remote_wins, 0, "the fake peer never reported a result");

    // The peer is now down; later races run purely locally and answer.
    wait_for(&origin, "link death detection", |s| s.peers_up == 0);
    for arg in 0..20u64 {
        match client
            .run("trivial", arg, 0)
            .expect("reply after peer death")
        {
            Response::Ok { value, .. } => assert_eq!(value, arg),
            Response::Overloaded => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    fake.join().expect("fake peer thread");
    origin.shutdown();
}

/// An executor that double-sends its `ALT_RESULT` (the duplicated-frame
/// chaos the faults layer injects at the wire): the origin must count
/// the result at most once, answer the client exactly once, and keep
/// the connection in sync — the duplicate can never surface as a stray
/// reply.
#[test]
fn duplicated_alt_result_never_double_answers() {
    let _guard = serial();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let fake_addr = listener.local_addr().expect("fake addr");
    // The fake executor: ack everything on the origin's link; on each
    // EXEC_ALT, dial the origin back like a real executor would and
    // deliver the same winning ALT_RESULT twice.
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("origin dials in");
        let mut duplicated = false;
        loop {
            let Ok(Some(body)) = read_frame(&mut conn) else {
                return; // origin gone first
            };
            let ack = Response::Text {
                body: "ok\n".to_owned(),
            };
            match Request::decode(&body) {
                Ok(Request::ExecAlt {
                    race_id,
                    alt_idx,
                    origin,
                    ..
                }) if !duplicated => {
                    duplicated = true;
                    let _ = write_frame(&mut conn, &ack.encode());
                    let mut back =
                        std::net::TcpStream::connect(&origin).expect("dial the origin back");
                    let result = Request::AltResult {
                        race_id,
                        alt_idx,
                        status: 0, // ALT_OK
                        value: 424_242,
                        latency_us: 10,
                    }
                    .encode();
                    for _ in 0..2 {
                        write_frame(&mut back, &result).expect("send duplicate result");
                        let _ = read_frame(&mut back); // origin acks each copy
                    }
                }
                Ok(_) => {
                    // Later shipped legs are admitted but never resolve;
                    // the origin's local favourite answers those races.
                    let _ = write_frame(&mut conn, &ack.encode());
                }
                Err(_) => return,
            }
        }
    });

    let origin = node(vec![fake_addr.to_string()], 1);
    wait_for(&origin, "link to the fake peer", |s| s.peers_up == 1);

    let mut client = Client::connect(origin.local_addr()).expect("connect origin");
    match client.run("lognormal", 3, 0).expect("exactly one reply") {
        Response::Ok { .. } => {}
        other => panic!("the race must still succeed: {other:?}"),
    }
    // Whichever leg won, the duplicate was dropped at the registry: at
    // most one copy was ever counted against the race.
    let s = origin.telemetry().snapshot();
    assert!(
        s.remote_results <= 1,
        "duplicate ALT_RESULT was double-counted: {}",
        s.remote_results
    );
    // The client connection is still in sync — no stray reply exists.
    for arg in 0..20u64 {
        match client
            .run("trivial", arg, 0)
            .expect("reply after duplicate")
        {
            Response::Ok { value, .. } => assert_eq!(value, arg),
            Response::Overloaded => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    drop(client);
    origin.shutdown();
    fake.join().expect("fake peer thread");
}
