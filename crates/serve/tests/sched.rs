//! Race-scheduler integration: hedged launch plans and request batching
//! observed end-to-end, through a live daemon on the loopback.
//!
//! The contract under test is the tentpole invariant: the scheduler is
//! a *strategy*, not a semantics change. Hedging may only change what a
//! race costs (fewer alternative bodies run), never what it answers —
//! every reply must carry a value some alternative legitimately
//! produced. Batching may only change how many races run, never how
//! many replies land — each waiter gets exactly one.

use altx::engine::{LaunchPlan, ThreadedEngine};
use altx::CancelToken;
use altx_pager::{AddressSpace, PageSize};
use altx_serve::frame::{Request, Response};
use altx_serve::workload;
use altx_serve::{start, Client, HedgeConfig, HedgePolicy, ServerConfig, ServerHandle};
use std::collections::BTreeSet;
use std::time::Duration;

fn ws() -> AddressSpace {
    AddressSpace::zeroed(4096, PageSize::K4)
}

fn local_server(config: ServerConfig) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_depth: 64,
        ..config
    })
    .expect("bind ephemeral port")
}

/// Recomputes the lognormal workload's three seeded draws for `arg`,
/// exactly as `workload::build` does — the oracle for "the reply's
/// value belongs to a real alternative".
fn lognormal_draws(arg: u64) -> BTreeSet<u64> {
    use altx_bench::TimeDistribution;
    use altx_des::SimRng;
    let mut rng = SimRng::seed_from_u64(arg.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA17B);
    let dist = TimeDistribution::LogNormal {
        median_ms: 3.0,
        sigma: 1.0,
    };
    (0..3)
        .map(|_| dist.sample(&mut rng).as_millis_f64().ceil() as u64)
        .collect()
}

/// The all-zeros plan must be byte-for-byte the old launch-all path:
/// same winner, same value, same success/failure shape as
/// `execute_with_token` on the same seeded block.
#[test]
fn all_zeros_plan_is_execute_with_token() {
    for arg in [1u64, 7, 42, 1_000_003] {
        let block = workload::build("lognormal", arg).expect("catalog workload");
        let token = CancelToken::new();
        let planned = ThreadedEngine::new().execute_planned(
            &block,
            &mut ws(),
            &token,
            &LaunchPlan::immediate(block.len()),
        );
        let token = CancelToken::new();
        let unplanned = ThreadedEngine::new().execute_with_token(&block, &mut ws(), &token);
        assert_eq!(planned.succeeded(), unplanned.succeeded(), "arg {arg}");
        // The lognormal draws are seeded by `arg`, so both runs race the
        // same sleeps and the shortest draw wins both times.
        assert_eq!(planned.value, unplanned.value, "arg {arg}");
        assert_eq!(planned.winner, unplanned.winner, "arg {arg}");
    }
}

/// Launch order through the public policy API: the favourite is the
/// only alternative at offset zero; everyone else waits.
#[test]
fn plan_puts_the_favourite_first() {
    let policy = HedgePolicy::new(HedgeConfig {
        enabled: true,
        min_samples: 4,
        ..HedgeConfig::default()
    });
    let widx = workload::index_of("lognormal").unwrap();
    for _ in 0..8 {
        policy.record_win(widx, 2, 2_500);
    }
    let _ = policy.plan(widx, 3); // tick 0 explores
    let plan = policy.plan(widx, 3);
    assert_eq!(plan.offset(2), Duration::ZERO);
    assert!(plan.offset(0) > Duration::ZERO);
    assert!(plan.offset(1) > Duration::ZERO);
    assert_eq!(plan.staggered(), 2);
}

/// The exploration floor cannot be configured away: even with
/// `explore_every: 0` (clamped to 2) warm history still races
/// launch-all on schedule, keeping the statistics falsifiable.
#[test]
fn exploration_floor_survives_extreme_config() {
    let policy = HedgePolicy::new(HedgeConfig {
        enabled: true,
        min_samples: 1,
        explore_every: 0,
        ..HedgeConfig::default()
    });
    let widx = workload::index_of("lognormal").unwrap();
    for _ in 0..8 {
        policy.record_win(widx, 0, 2_000);
    }
    let plans: Vec<bool> = (0..8)
        .map(|_| policy.plan(widx, 3).is_immediate())
        .collect();
    assert!(
        plans.iter().any(|imm| *imm),
        "exploration races must still occur: {plans:?}"
    );
    assert!(
        plans.iter().any(|imm| !*imm),
        "warm history must still hedge: {plans:?}"
    );
}

/// The headline property on a live daemon: with hedging on, the same
/// seeded lognormal request stream executes strictly fewer alternative
/// bodies than launch-all, at least one race is won from a hedge
/// offset, and every reply still carries a value one of the three
/// seeded draws actually produced.
#[test]
fn hedging_suppresses_launches_on_lognormal() {
    const REQUESTS: u64 = 160;

    let run_stream = |server: &ServerHandle| -> (u64, u64) {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for n in 0..REQUESTS {
            // Seeded arg stream: both servers race identical blocks.
            let arg = n.wrapping_mul(0x9E37_79B9).wrapping_add(17);
            match client.run("lognormal", arg, 0).expect("reply") {
                Response::Ok { value, .. } => {
                    assert!(
                        lognormal_draws(arg).contains(&value),
                        "req {n}: value {value} is not one of the seeded draws"
                    );
                }
                other => panic!("req {n}: unexpected {other:?}"),
            }
        }
        let snap = server.telemetry().snapshot();
        (snap.launches_suppressed, snap.hedge_wins)
    };

    let launch_all = local_server(ServerConfig::default());
    let (suppressed_all, hedge_wins_all) = run_stream(&launch_all);
    launch_all.shutdown();
    assert_eq!(
        hedge_wins_all, 0,
        "launch-all has no hedge offsets to win from"
    );

    let hedged = local_server(ServerConfig {
        hedge: HedgeConfig {
            enabled: true,
            min_samples: 10,
            ..HedgeConfig::default()
        },
        ..ServerConfig::default()
    });
    let (suppressed_hedged, hedge_wins) = run_stream(&hedged);
    let snap = hedged.telemetry().snapshot();
    hedged.shutdown();

    assert!(
        suppressed_hedged > suppressed_all,
        "hedging must execute strictly fewer bodies than launch-all \
         (suppressed {suppressed_hedged} vs {suppressed_all})"
    );
    assert!(
        snap.hedges_launched < snap.accepted * 2,
        "most hedges must be suppressed, not launched \
         ({} launched over {} races)",
        snap.hedges_launched,
        snap.accepted
    );
    // With a heavy-tailed favourite, some races are won by a hedge that
    // out-ran a straggling favourite. 160 seeded requests make this
    // statistically certain (the favourite exceeds its own p95 in ~5%
    // of draws by construction).
    assert!(
        hedge_wins > 0,
        "no race was ever won from a hedge offset over {REQUESTS} requests"
    );
}

/// A pipelined burst of identical requests coalesces into fewer races,
/// and every waiter gets exactly one correct reply — in order.
#[test]
fn identical_pipelined_requests_coalesce() {
    const BURST: usize = 16;
    let server = local_server(ServerConfig {
        batch_window: Duration::from_millis(5),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let request = Request::Run {
        workload: "trivial".to_owned(),
        deadline_ms: 0,
        arg: 77,
    };
    for _ in 0..BURST {
        client.send(&request).expect("pipelined send");
    }
    // Exactly-once, in order: a dropped reply would hang this loop at
    // the read timeout; a duplicate would desynchronize the framing.
    for n in 0..BURST {
        match client.recv().expect("pipelined reply") {
            Response::Ok { value, .. } => assert_eq!(value, 77, "reply {n}"),
            other => panic!("reply {n}: unexpected {other:?}"),
        }
    }

    let snap = server.telemetry().snapshot();
    assert!(
        snap.requests_coalesced > 0,
        "an identical pipelined burst must coalesce (got {} coalesced, \
         {} batches)",
        snap.requests_coalesced,
        snap.batches_formed
    );
    assert!(snap.batches_formed > 0);
    assert!(
        snap.batches_formed + snap.requests_coalesced >= BURST as u64,
        "every request is either a batch opener or coalesced"
    );
    server.shutdown();
}

/// Batched waiters spread across connections each get exactly one
/// reply, and the daemon still drains cleanly with windows open.
#[test]
fn coalesced_waiters_across_connections_all_get_replies() {
    const CONNS: usize = 6;
    let server = local_server(ServerConfig {
        batch_window: Duration::from_millis(3),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let handles: Vec<_> = (0..CONNS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..10u64 {
                    // Same arg on every connection in the same round:
                    // coalescible across connections.
                    match client.run("trivial", round, 0).expect("reply") {
                        Response::Ok { value, .. } => assert_eq!(value, round),
                        other => panic!("round {round}: unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let snap = server.telemetry().snapshot();
    server.shutdown();
    assert!(
        snap.requests_coalesced > 0,
        "lock-stepped connections never coalesced"
    );
}

/// The CATALOG control frame lists every workload and, once the
/// scheduler has history, marks the favourite.
#[test]
fn catalog_frame_reports_workloads_and_favourite() {
    let server = local_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Warm up the trivial workload so some alternative accumulates wins.
    for n in 0..12u64 {
        match client.run("trivial", n, 0).expect("reply") {
            Response::Ok { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    let page = client.catalog_page().expect("catalog page");
    for spec in workload::CATALOG {
        assert!(page.contains(spec.name), "{page}");
    }
    assert!(page.contains("instant-a"), "{page}");
    assert!(page.contains("<- favourite"), "{page}");
    server.shutdown();
}
