//! Property-based tests of the wire codec: round-trips, truncation,
//! oversize rejection, and garbage tolerance.

use altx_check::{check, CaseRng};
use altx_serve::frame::{
    read_frame, write_frame, FrameDecoder, FrameError, Request, Response, MAX_FRAME,
};

fn arb_request(rng: &mut CaseRng) -> Request {
    let name = |r: &mut CaseRng, lo: usize, hi: usize| {
        String::from_utf8(r.vec(lo, hi, |r| b'a' + (r.u8() % 26))).expect("ascii")
    };
    match rng.usize_in(0, 10) {
        0 => Request::Run {
            workload: name(rng, 0, 40),
            deadline_ms: rng.u64_in(0, u32::MAX as u64 + 1) as u32,
            arg: rng.u64(),
        },
        1 => Request::Stats,
        2 => Request::Prometheus,
        3 => Request::Shutdown,
        4 => Request::ExecAlt {
            race_id: rng.u64(),
            alt_idx: rng.u64_in(0, 1 << 32) as u32,
            deadline_ms: rng.u64_in(0, u32::MAX as u64 + 1) as u32,
            arg: rng.u64(),
            workload: name(rng, 0, 40),
            origin: name(rng, 0, 40),
        },
        5 => Request::AltResult {
            race_id: rng.u64(),
            alt_idx: rng.u64_in(0, 1 << 32) as u32,
            status: rng.u64_in(0, 3) as u8, // ALT_OK..=ALT_DEADLINE
            value: rng.u64(),
            latency_us: rng.u64(),
        },
        6 => Request::CommitVote {
            race_id: rng.u64(),
            origin: name(rng, 0, 40),
            candidate: name(rng, 0, 60),
        },
        7 => Request::Eliminate {
            race_id: rng.u64(),
            origin: name(rng, 0, 40),
        },
        8 => Request::Reconcile {
            watermark: rng.u64(),
            origin: name(rng, 0, 40),
        },
        _ => Request::PeerStats,
    }
}

fn arb_response(rng: &mut CaseRng) -> Response {
    let text = |r: &mut CaseRng, lo: usize, hi: usize| {
        String::from_utf8(r.vec(lo, hi, |r| b' ' + (r.u8() % 95))).expect("ascii")
    };
    match rng.usize_in(0, 7) {
        0 => Response::Ok {
            winner: rng.u64_in(0, 1 << 32) as u32,
            winner_name: text(rng, 0, 30),
            latency_us: rng.u64(),
            value: rng.u64(),
        },
        1 => Response::DeadlineExceeded {
            latency_us: rng.u64(),
        },
        2 => Response::Overloaded,
        3 => Response::UnknownWorkload,
        4 => Response::Error {
            message: text(rng, 0, 120),
        },
        5 => Response::Vote {
            granted: rng.u64_in(0, 2) == 1,
            holder: text(rng, 0, 60),
        },
        _ => Response::Text {
            body: text(rng, 0, 400),
        },
    }
}

/// encode → decode is the identity for both message directions.
#[test]
fn round_trip_identity() {
    check("round_trip_identity", 256, |rng| {
        let req = arb_request(rng);
        assert_eq!(Request::decode(&req.encode()).expect("decodes"), req);
        let resp = arb_response(rng);
        assert_eq!(Response::decode(&resp.encode()).expect("decodes"), resp);
    });
}

/// Frames survive the stream layer: write then read returns the body.
#[test]
fn stream_round_trip() {
    check("stream_round_trip", 128, |rng| {
        let body = rng.bytes(0, 300);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("vec write");
        let got = read_frame(&mut wire.as_slice())
            .expect("reads")
            .expect("one frame");
        assert_eq!(got, body);
        // And a second read sees clean EOF, not an error.
        let mut cursor = &wire[..];
        read_frame(&mut cursor).expect("first frame");
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());
    });
}

/// Any prefix of a valid frame is Truncated — never a hang, panic, or
/// bogus success.
#[test]
fn truncated_frames_rejected() {
    check("truncated_frames_rejected", 128, |rng| {
        let body = rng.bytes(1, 200);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("vec write");
        let cut = rng.usize_in(1, wire.len()); // strict prefix, non-empty
        match read_frame(&mut &wire[..cut]) {
            Err(FrameError::Truncated) => {}
            other => panic!("prefix of {cut} bytes gave {other:?}"),
        }
    });
}

/// A length prefix beyond MAX_FRAME is rejected before allocation.
#[test]
fn oversized_frames_rejected() {
    check("oversized_frames_rejected", 64, |rng| {
        let len = rng.u64_in(MAX_FRAME as u64 + 1, u32::MAX as u64 + 1) as u32;
        let wire = len.to_be_bytes();
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, len as usize),
            other => panic!("announced {len} bytes, got {other:?}"),
        }
    });
}

/// Arbitrary bodies never panic the decoders; truncating a valid body
/// mid-field errors rather than mis-parsing.
#[test]
fn decoder_tolerates_garbage() {
    check("decoder_tolerates_garbage", 512, |rng| {
        let junk = rng.bytes(0, 64);
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);

        let valid = arb_request(rng).encode();
        let cut = rng.usize_in(0, valid.len());
        if cut < valid.len() {
            assert!(
                Request::decode(&valid[..cut]).is_err(),
                "prefix must not parse"
            );
        }
    });
}

/// Oversized bodies are refused at the writer in *release* builds too —
/// a half-written oversized frame would desynchronize the stream for
/// every later message (regression: this used to be a `debug_assert!`).
#[test]
fn write_frame_rejects_oversized_bodies() {
    let body = vec![0u8; MAX_FRAME + 1];
    let mut wire = Vec::new();
    let err = write_frame(&mut wire, &body).expect_err("oversized body must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(
        wire.is_empty(),
        "no bytes may reach the wire: {}",
        wire.len()
    );

    // Exactly MAX_FRAME is still legal.
    let body = vec![0u8; MAX_FRAME];
    write_frame(&mut wire, &body).expect("MAX_FRAME body is legal");
    assert_eq!(wire.len(), 4 + MAX_FRAME);
}

/// A wire image of several frames, for the incremental decoder tests.
fn arb_wire(rng: &mut CaseRng) -> (Vec<Vec<u8>>, Vec<u8>) {
    let bodies: Vec<Vec<u8>> = (0..rng.usize_in(1, 6)).map(|_| rng.bytes(0, 120)).collect();
    let mut wire = Vec::new();
    for b in &bodies {
        write_frame(&mut wire, b).expect("vec write");
    }
    (bodies, wire)
}

/// Feeding the decoder one byte at a time yields exactly the frames the
/// blocking reader would see, with nothing left over.
#[test]
fn incremental_decoder_byte_at_a_time() {
    check("incremental_decoder_byte_at_a_time", 128, |rng| {
        let (bodies, wire) = arb_wire(rng);
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in &wire {
            decoder.extend(std::slice::from_ref(byte));
            while let Some(frame) = decoder.next_frame().expect("valid stream") {
                got.push(frame);
            }
        }
        assert_eq!(got, bodies);
        assert_eq!(decoder.buffered(), 0);
        decoder.finish().expect("no partial frame at EOF");
    });
}

/// Splitting the stream at *every* point produces identical frames: the
/// decoder is resumable across arbitrary read boundaries.
#[test]
fn incremental_decoder_every_split_point() {
    check("incremental_decoder_every_split_point", 64, |rng| {
        let (bodies, wire) = arb_wire(rng);
        for cut in 0..=wire.len() {
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in [&wire[..cut], &wire[cut..]] {
                decoder.extend(chunk);
                while let Some(frame) = decoder.next_frame().expect("valid stream") {
                    got.push(frame);
                }
            }
            assert_eq!(got, bodies, "split at {cut}");
            decoder.finish().expect("no partial frame at EOF");
        }
    });
}

/// An oversized length prefix is rejected as soon as the header is
/// visible — before the announced body is buffered — and EOF mid-frame
/// is a truncation, exactly like the blocking path.
#[test]
fn incremental_decoder_rejects_oversize_and_truncation() {
    check("incremental_decoder_oversize_truncation", 64, |rng| {
        let len = rng.u64_in(MAX_FRAME as u64 + 1, u32::MAX as u64 + 1) as u32;
        let mut decoder = FrameDecoder::new();
        decoder.extend(&len.to_be_bytes());
        match decoder.next_frame() {
            Err(FrameError::Oversized(n)) => assert_eq!(n, len as usize),
            other => panic!("announced {len} bytes, got {other:?}"),
        }

        // A strict prefix of a valid frame, then EOF.
        let body = rng.bytes(1, 100);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("vec write");
        let cut = rng.usize_in(1, wire.len() - 1);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire[..cut]);
        assert!(
            decoder
                .next_frame()
                .expect("prefix is not an error")
                .is_none(),
            "partial frame must not decode"
        );
        match decoder.finish() {
            Err(FrameError::Truncated) => {}
            other => panic!("EOF after {cut}/{} bytes gave {other:?}", wire.len()),
        }
    });
}

/// Every cluster opcode body (EXEC_ALT through RECONCILE) survives the
/// incremental decoder at every stream split point, and every strict
/// prefix of the body is an error — a partition chopping a frame
/// mid-field can never mis-parse into a different message.
#[test]
fn cluster_opcode_bodies_at_every_split_point() {
    let name = |r: &mut CaseRng, lo: usize, hi: usize| {
        String::from_utf8(r.vec(lo, hi, |r| b'a' + (r.u8() % 26))).expect("ascii")
    };
    check("cluster_opcode_bodies_split", 32, |rng| {
        let reqs = vec![
            Request::ExecAlt {
                race_id: rng.u64(),
                alt_idx: rng.u64_in(0, 1 << 32) as u32,
                deadline_ms: rng.u64_in(0, u32::MAX as u64 + 1) as u32,
                arg: rng.u64(),
                workload: name(rng, 1, 40),
                origin: name(rng, 1, 40),
            },
            Request::AltResult {
                race_id: rng.u64(),
                alt_idx: rng.u64_in(0, 1 << 32) as u32,
                status: rng.u64_in(0, 3) as u8,
                value: rng.u64(),
                latency_us: rng.u64(),
            },
            Request::CommitVote {
                race_id: rng.u64(),
                origin: name(rng, 1, 40),
                candidate: name(rng, 1, 60),
            },
            Request::Eliminate {
                race_id: rng.u64(),
                origin: name(rng, 1, 40),
            },
            Request::PeerStats,
            Request::Reconcile {
                watermark: rng.u64(),
                origin: name(rng, 1, 40),
            },
        ];
        for req in reqs {
            let body = req.encode();
            for cut in 0..body.len() {
                assert!(
                    Request::decode(&body[..cut]).is_err(),
                    "{req:?}: prefix of {cut}/{} bytes must not parse",
                    body.len()
                );
            }
            let mut wire = Vec::new();
            write_frame(&mut wire, &body).expect("vec write");
            for cut in 0..=wire.len() {
                let mut decoder = FrameDecoder::new();
                let mut got = Vec::new();
                for chunk in [&wire[..cut], &wire[cut..]] {
                    decoder.extend(chunk);
                    while let Some(frame) = decoder.next_frame().expect("valid stream") {
                        got.push(frame);
                    }
                }
                assert_eq!(got.len(), 1, "{req:?}: split at {cut}");
                assert_eq!(
                    Request::decode(&got[0]).expect("framed body decodes"),
                    req,
                    "split at {cut}"
                );
            }
        }
    });
}

/// An opcode byte outside the protocol maps to `UnknownOpcode` — the
/// distinguished, stream-preserving error — never to `Malformed`, and
/// never to a bogus parse.
#[test]
fn unknown_opcodes_distinguished_from_malformed() {
    check("unknown_opcodes_distinguished", 128, |rng| {
        // 0x01..=0x0B are assigned; everything above is free.
        let op = rng.u64_in(0x0C, 0x100) as u8;
        let mut body = vec![op];
        body.extend(rng.bytes(0, 32));
        match Request::decode(&body) {
            Err(FrameError::UnknownOpcode(got)) => assert_eq!(got, op),
            other => panic!("opcode 0x{op:02x} gave {other:?}"),
        }
    });
}

/// Trailing bytes after a well-formed message are a protocol error.
#[test]
fn trailing_bytes_rejected() {
    check("trailing_bytes_rejected", 128, |rng| {
        let mut body = arb_response(rng).encode();
        body.extend(rng.bytes(1, 8));
        assert!(Response::decode(&body).is_err());
    });
}
