//! Property-based tests of the wire codec: round-trips, truncation,
//! oversize rejection, and garbage tolerance.

use altx_check::{check, CaseRng};
use altx_serve::frame::{read_frame, write_frame, FrameError, Request, Response, MAX_FRAME};

fn arb_request(rng: &mut CaseRng) -> Request {
    match rng.usize_in(0, 4) {
        0 => Request::Run {
            workload: String::from_utf8(rng.vec(0, 40, |r| b'a' + (r.u8() % 26))).expect("ascii"),
            deadline_ms: rng.u64_in(0, u32::MAX as u64 + 1) as u32,
            arg: rng.u64(),
        },
        1 => Request::Stats,
        2 => Request::Prometheus,
        _ => Request::Shutdown,
    }
}

fn arb_response(rng: &mut CaseRng) -> Response {
    let text = |r: &mut CaseRng, lo: usize, hi: usize| {
        String::from_utf8(r.vec(lo, hi, |r| b' ' + (r.u8() % 95))).expect("ascii")
    };
    match rng.usize_in(0, 6) {
        0 => Response::Ok {
            winner: rng.u64_in(0, 1 << 32) as u32,
            winner_name: text(rng, 0, 30),
            latency_us: rng.u64(),
            value: rng.u64(),
        },
        1 => Response::DeadlineExceeded {
            latency_us: rng.u64(),
        },
        2 => Response::Overloaded,
        3 => Response::UnknownWorkload,
        4 => Response::Error {
            message: text(rng, 0, 120),
        },
        _ => Response::Text {
            body: text(rng, 0, 400),
        },
    }
}

/// encode → decode is the identity for both message directions.
#[test]
fn round_trip_identity() {
    check("round_trip_identity", 256, |rng| {
        let req = arb_request(rng);
        assert_eq!(Request::decode(&req.encode()).expect("decodes"), req);
        let resp = arb_response(rng);
        assert_eq!(Response::decode(&resp.encode()).expect("decodes"), resp);
    });
}

/// Frames survive the stream layer: write then read returns the body.
#[test]
fn stream_round_trip() {
    check("stream_round_trip", 128, |rng| {
        let body = rng.bytes(0, 300);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("vec write");
        let got = read_frame(&mut wire.as_slice())
            .expect("reads")
            .expect("one frame");
        assert_eq!(got, body);
        // And a second read sees clean EOF, not an error.
        let mut cursor = &wire[..];
        read_frame(&mut cursor).expect("first frame");
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());
    });
}

/// Any prefix of a valid frame is Truncated — never a hang, panic, or
/// bogus success.
#[test]
fn truncated_frames_rejected() {
    check("truncated_frames_rejected", 128, |rng| {
        let body = rng.bytes(1, 200);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("vec write");
        let cut = rng.usize_in(1, wire.len()); // strict prefix, non-empty
        match read_frame(&mut &wire[..cut]) {
            Err(FrameError::Truncated) => {}
            other => panic!("prefix of {cut} bytes gave {other:?}"),
        }
    });
}

/// A length prefix beyond MAX_FRAME is rejected before allocation.
#[test]
fn oversized_frames_rejected() {
    check("oversized_frames_rejected", 64, |rng| {
        let len = rng.u64_in(MAX_FRAME as u64 + 1, u32::MAX as u64 + 1) as u32;
        let wire = len.to_be_bytes();
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, len as usize),
            other => panic!("announced {len} bytes, got {other:?}"),
        }
    });
}

/// Arbitrary bodies never panic the decoders; truncating a valid body
/// mid-field errors rather than mis-parsing.
#[test]
fn decoder_tolerates_garbage() {
    check("decoder_tolerates_garbage", 512, |rng| {
        let junk = rng.bytes(0, 64);
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);

        let valid = arb_request(rng).encode();
        let cut = rng.usize_in(0, valid.len());
        if cut < valid.len() {
            assert!(
                Request::decode(&valid[..cut]).is_err(),
                "prefix must not parse"
            );
        }
    });
}

/// Trailing bytes after a well-formed message are a protocol error.
#[test]
fn trailing_bytes_rejected() {
    check("trailing_bytes_rejected", 128, |rng| {
        let mut body = arb_response(rng).encode();
        body.extend(rng.bytes(1, 8));
        assert!(Response::decode(&body).is_err());
    });
}
