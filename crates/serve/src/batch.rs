//! Request coalescing: identical requests share one race.
//!
//! Alternatives are pure functions of `(workload, arg)` — the catalog's
//! blocks derive everything from the request argument — so two requests
//! for the same key within a short window would race identical blocks
//! and select (statistically) the same winner. The [`Batcher`] exploits
//! that: the first arrival *opens* a batch and starts a window; later
//! identical arrivals *join* it; when the window expires the batch is
//! submitted as one race and the single winner's reply is fanned out to
//! every waiter. Thread spawn, COW forks, alternative bodies, *and the
//! reply encoding* are all paid once per batch instead of once per
//! request — the fan-out shares one ring-slot encoding across the N
//! waiters (each socket reads the same slot; the last write retires
//! it), never re-encoding per waiter.
//!
//! The batcher lives inside the single-threaded reactor, so it needs no
//! locks; time is passed in explicitly, which keeps expiry deterministic
//! and testable. The deadline is part of the key — coalescing must never
//! silently extend or shrink a request's deadline budget.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// What makes two requests "the same race".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BatchKey {
    /// Catalog workload index (interned from the request's name).
    pub widx: usize,
    /// Request deadline — part of the key so all waiters share a budget.
    pub deadline_ms: u32,
    /// The block parameter.
    pub arg: u64,
}

/// One connection's claim on a batched reply.
pub(crate) type Waiter = (u64, u64); // (conn id, reply seq)

#[derive(Debug)]
struct OpenBatch {
    waiters: Vec<Waiter>,
    due: Instant,
}

/// A batch whose window has closed: ready to race.
#[derive(Debug)]
pub(crate) struct ReadyBatch {
    pub key: BatchKey,
    pub waiters: Vec<Waiter>,
}

/// Outcome of offering a request to the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Offered {
    /// First arrival: a new batch opened and its window started.
    Opened,
    /// Joined an already-open batch — this request was coalesced.
    Coalesced,
}

/// See module docs. A zero window disables coalescing entirely; callers
/// should bypass the batcher in that case (`enabled()` tells them).
#[derive(Debug)]
pub(crate) struct Batcher {
    window: Duration,
    open: HashMap<BatchKey, OpenBatch>,
}

impl Batcher {
    pub(crate) fn new(window: Duration) -> Self {
        Batcher {
            window,
            open: HashMap::new(),
        }
    }

    /// True when a non-zero window was configured.
    pub(crate) fn enabled(&self) -> bool {
        !self.window.is_zero()
    }

    /// Offers one request. The waiter is parked either way; the return
    /// value says whether it opened a batch or coalesced into one.
    pub(crate) fn offer(&mut self, key: BatchKey, waiter: Waiter, now: Instant) -> Offered {
        match self.open.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().waiters.push(waiter);
                Offered::Coalesced
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OpenBatch {
                    waiters: vec![waiter],
                    due: now + self.window,
                });
                Offered::Opened
            }
        }
    }

    /// The earliest window expiry, if any batch is open — what the
    /// reactor's poll timeout must not sleep past.
    pub(crate) fn next_due(&self) -> Option<Instant> {
        self.open.values().map(|b| b.due).min()
    }

    /// Removes and returns every batch whose window has expired (or all
    /// of them when `flush_all` — used at drain so no waiter is left
    /// parked behind a window that outlives the listener).
    pub(crate) fn take_due(&mut self, now: Instant, flush_all: bool) -> Vec<ReadyBatch> {
        let keys: Vec<BatchKey> = self
            .open
            .iter()
            .filter(|(_, b)| flush_all || b.due <= now)
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .map(|key| {
                let batch = self.open.remove(&key).expect("key just listed");
                ReadyBatch {
                    key,
                    waiters: batch.waiters,
                }
            })
            .collect()
    }

    /// True when no batch is open.
    pub(crate) fn is_empty(&self) -> bool {
        self.open.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(arg: u64) -> BatchKey {
        BatchKey {
            widx: 0,
            deadline_ms: 100,
            arg,
        }
    }

    #[test]
    fn identical_requests_coalesce_within_the_window() {
        let mut b = Batcher::new(Duration::from_millis(5));
        let t0 = Instant::now();
        assert_eq!(b.offer(key(7), (1, 0), t0), Offered::Opened);
        assert_eq!(b.offer(key(7), (2, 0), t0), Offered::Coalesced);
        assert_eq!(b.offer(key(7), (1, 1), t0), Offered::Coalesced);
        let ready = b.take_due(t0 + Duration::from_millis(5), false);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].waiters, vec![(1, 0), (2, 0), (1, 1)]);
        assert!(b.is_empty());
    }

    #[test]
    fn different_keys_open_different_batches() {
        let mut b = Batcher::new(Duration::from_millis(5));
        let t0 = Instant::now();
        assert_eq!(b.offer(key(1), (1, 0), t0), Offered::Opened);
        assert_eq!(b.offer(key(2), (2, 0), t0), Offered::Opened);
        let other_deadline = BatchKey {
            deadline_ms: 999,
            ..key(1)
        };
        assert_eq!(
            b.offer(other_deadline, (3, 0), t0),
            Offered::Opened,
            "a different deadline is a different race"
        );
        assert_eq!(b.take_due(t0 + Duration::from_millis(5), false).len(), 3);
    }

    #[test]
    fn window_expiry_is_per_batch() {
        let mut b = Batcher::new(Duration::from_millis(10));
        let t0 = Instant::now();
        b.offer(key(1), (1, 0), t0);
        b.offer(key(2), (2, 0), t0 + Duration::from_millis(6));
        assert_eq!(b.next_due(), Some(t0 + Duration::from_millis(10)));
        let ready = b.take_due(t0 + Duration::from_millis(10), false);
        assert_eq!(ready.len(), 1, "only the first window has expired");
        assert_eq!(ready[0].key, key(1));
        assert_eq!(b.next_due(), Some(t0 + Duration::from_millis(16)));
    }

    #[test]
    fn a_late_arrival_reopens_a_flushed_key() {
        let mut b = Batcher::new(Duration::from_millis(5));
        let t0 = Instant::now();
        b.offer(key(7), (1, 0), t0);
        let _ = b.take_due(t0 + Duration::from_millis(5), false);
        assert_eq!(
            b.offer(key(7), (2, 0), t0 + Duration::from_millis(6)),
            Offered::Opened,
            "a flushed batch is gone; the key starts fresh"
        );
    }

    #[test]
    fn flush_all_empties_every_open_window() {
        let mut b = Batcher::new(Duration::from_secs(3600));
        let t0 = Instant::now();
        b.offer(key(1), (1, 0), t0);
        b.offer(key(2), (2, 0), t0);
        assert_eq!(b.take_due(t0, false).len(), 0, "windows far from expiry");
        assert_eq!(b.take_due(t0, true).len(), 2, "drain flushes everything");
        assert!(b.is_empty());
    }

    #[test]
    fn zero_window_reports_disabled() {
        assert!(!Batcher::new(Duration::ZERO).enabled());
        assert!(Batcher::new(Duration::from_micros(1)).enabled());
    }
}
