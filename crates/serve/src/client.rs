//! Blocking client for the daemon's framed protocol.

use crate::frame::{read_frame, write_frame, FrameError, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to an `altxd` daemon. Requests are synchronous: one
/// outstanding request per connection, replies in order.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends a request and waits for its reply.
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(body) => Response::decode(&body),
            None => Err(FrameError::Truncated),
        }
    }

    /// Races `workload` with `arg` under `deadline_ms` (0 = unbounded).
    pub fn run(
        &mut self,
        workload: &str,
        arg: u64,
        deadline_ms: u32,
    ) -> Result<Response, FrameError> {
        self.call(&Request::Run {
            workload: workload.to_owned(),
            deadline_ms,
            arg,
        })
    }

    /// Fetches the human-readable stats page.
    pub fn stats(&mut self) -> Result<String, FrameError> {
        match self.call(&Request::Stats)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches Prometheus text-format metrics.
    pub fn prometheus(&mut self) -> Result<String, FrameError> {
        match self.call(&Request::Prometheus)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), FrameError> {
        match self.call(&Request::Shutdown)? {
            Response::Text { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> FrameError {
    let _ = resp;
    FrameError::Malformed("unexpected response kind")
}
