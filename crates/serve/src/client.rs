//! Blocking client for the daemon's framed protocol, with timeouts,
//! retries, and optional request hedging.
//!
//! The bare [`Client::connect`] is already defensive: every socket gets
//! connect/read/write timeouts so a dead or wedged daemon surfaces as a
//! timed-out [`FrameError::Io`] instead of a hang. Resilience beyond
//! that is opt-in via [`ClientConfig`]:
//!
//! * a [`RetryPolicy`] re-issues calls that failed *retryably* — an
//!   `Overloaded` shed or a transport error — with exponential backoff,
//!   deterministic jitter, and a per-client retry **budget** so a
//!   persistently sick server cannot trap the client in backoff forever;
//! * a **hedge delay** races a second attempt on a fresh connection when
//!   the first reply is slow — the paper's Scheme A ("initiate both,
//!   first answer wins") applied at the RPC layer, where the mutually
//!   exclusive alternatives are two sends of the same idempotent request.
//!
//! Every retry, hedge, reconnect, and abandoned hedge loser is counted
//! in [`ClientStats`] so load generators can report how much resilience
//! machinery actually fired. A hedge loser's thread is never leaked:
//! it is reaped opportunistically and joined on [`Drop`], bounded by
//! the attempt's socket timeouts.

use crate::frame::{read_frame, write_frame, FrameError, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// When and how aggressively to retry a failed call.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per call, including the first (min 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff · 2^(n-1)` plus jitter.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Retries available over the client's whole lifetime. Once spent,
    /// failures return immediately — a sick server can't hold every
    /// caller in backoff.
    pub budget: u32,
    /// Seed for the deterministic jitter stream (reproducible runs).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            budget: 64,
            jitter_seed: 0x5EED,
        }
    }
}

/// Connection and resilience knobs for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-address connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (`None` = block forever; the default is
    /// bounded so a silent daemon can't hang the caller).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Retry policy; `None` disables retries (one attempt per call).
    pub retry: Option<RetryPolicy>,
    /// If set, a call whose reply hasn't arrived after this long sends
    /// the same request once more on a fresh connection and takes
    /// whichever reply lands first.
    pub hedge_delay: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retry: None,
            hedge_delay: None,
        }
    }
}

/// Counters for how often the resilience machinery fired.
#[derive(Debug, Default)]
pub struct ClientStats {
    retries: AtomicU64,
    hedges: AtomicU64,
    reconnects: AtomicU64,
    abandoned: AtomicU64,
}

impl ClientStats {
    /// Calls re-issued after a retryable failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Hedged second attempts launched.
    pub fn hedges(&self) -> u64 {
        self.hedges.load(Ordering::Relaxed)
    }

    /// Fresh connections opened after the first (reconnects + hedges).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Hedge attempts whose reply nobody waited for — the race was
    /// decided by the other attempt, so the loser's thread was left to
    /// drain on its own (joined, at the latest, when the client drops).
    pub fn abandoned(&self) -> u64 {
        self.abandoned.load(Ordering::Relaxed)
    }
}

/// One connection to an `altxd` daemon. Requests are synchronous: one
/// outstanding request per connection, replies in order. (Hedging may
/// briefly hold a second connection; the loser's connection is
/// discarded, never reused, and its thread is tracked in `outstanding`
/// so [`Drop`] can join it — attempts are bounded by socket timeouts,
/// so no abandoned thread outlives the client by more than a timeout.)
pub struct Client {
    stream: Option<TcpStream>,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    stats: Arc<ClientStats>,
    budget_left: u32,
    jitter: u64,
    outstanding: Vec<JoinHandle<()>>,
}

impl Client {
    /// Connects with default timeouts and no retries.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit configuration.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let stream = open_stream(&addrs, &config)?;
        let (budget_left, jitter) = config
            .retry
            .as_ref()
            .map_or((0, 0), |r| (r.budget, splitmix(r.jitter_seed)));
        Ok(Client {
            stream: Some(stream),
            addrs,
            config,
            stats: Arc::new(ClientStats::default()),
            budget_left,
            jitter,
            outstanding: Vec::new(),
        })
    }

    /// The client's resilience counters (shared; stays readable while
    /// calls are in flight).
    pub fn stats(&self) -> Arc<ClientStats> {
        Arc::clone(&self.stats)
    }

    /// Sends a request and waits for its reply, retrying and hedging
    /// per the client's [`ClientConfig`].
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        let max_attempts = self
            .config
            .retry
            .as_ref()
            .map_or(1, |r| r.max_attempts.max(1));
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self.attempt(request);
            let retryable = match &result {
                Ok(Response::Overloaded) => true,
                Ok(_) => return result,
                // A dead/slow transport is worth a fresh connection; a
                // protocol violation (Malformed/Oversized) is not.
                Err(FrameError::Io(_) | FrameError::Truncated) => true,
                Err(_) => return result,
            };
            debug_assert!(retryable);
            if attempt >= max_attempts || self.budget_left == 0 {
                return result;
            }
            self.budget_left -= 1;
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            self.backoff(attempt);
        }
    }

    /// One try: plain exchange, or a hedged one if configured.
    fn attempt(&mut self, request: &Request) -> Result<Response, FrameError> {
        let payload = request.encode();
        match self.config.hedge_delay {
            Some(delay) => self.attempt_hedged(&payload, delay),
            None => {
                let mut stream = self.take_stream()?;
                let result = exchange(&mut stream, &payload);
                if result.is_ok() {
                    self.stream = Some(stream);
                }
                // On error the stream is dropped: the reply owed to this
                // request may still arrive, so the connection is tainted.
                result
            }
        }
    }

    /// Scheme-A hedging: the primary exchange runs on its own thread;
    /// if no reply lands within `delay`, a second copy of the request
    /// goes out on a fresh connection and the first reply wins. The
    /// losing connection is dropped, never reused — its reply is owed
    /// to a request nobody is waiting on. The loser's *thread* is not
    /// leaked: it lands in `outstanding` and is joined by [`Drop`]
    /// (bounded — every attempt runs under the config's socket
    /// timeouts), and its unconsumed result counts as `abandoned`.
    fn attempt_hedged(&mut self, payload: &[u8], delay: Duration) -> Result<Response, FrameError> {
        let mut stream = self.take_stream()?;
        let (tx, rx) = mpsc::channel::<(Option<TcpStream>, Result<Response, FrameError>)>();
        let primary = {
            let tx = tx.clone();
            let payload = payload.to_vec();
            std::thread::spawn(move || {
                let result = exchange(&mut stream, &payload);
                let stream = result.is_ok().then_some(stream);
                let _ = tx.send((stream, result));
            })
        };
        let mut attempts = vec![primary];
        let mut consumed = 0usize;
        let mut hedged = false;
        let first = match rx.recv_timeout(delay) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                hedged = true;
                self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                let addrs = self.addrs.clone();
                let config = self.config.clone();
                let payload = payload.to_vec();
                let tx = tx.clone();
                attempts.push(std::thread::spawn(move || {
                    let _ = match open_stream(&addrs, &config)
                        .map_err(FrameError::from)
                        .and_then(|mut s| exchange(&mut s, &payload).map(|r| (s, r)))
                    {
                        Ok((s, r)) => tx.send((Some(s), Ok(r))),
                        Err(e) => tx.send((None, Err(e))),
                    };
                }));
                // Both attempts are bounded by socket timeouts, so each
                // thread sends exactly once and this recv terminates.
                rx.recv().expect("at least one attempt reports")
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("primary thread always sends before exiting")
            }
        };
        consumed += 1;
        drop(tx); // rx must see Disconnected once the attempts report
        let result = match first {
            (stream, Ok(reply)) => {
                // The winner's connection is clean (its reply was fully
                // read) and becomes the client's stream; the loser is
                // dropped when its thread finishes.
                self.stream = stream;
                Ok(reply)
            }
            (_, Err(first_err)) if hedged => {
                // First reporter failed; the other attempt may still
                // deliver.
                let second = rx.recv();
                consumed += 1;
                match second {
                    Ok((stream, Ok(reply))) => {
                        self.stream = stream;
                        Ok(reply)
                    }
                    Ok((_, Err(_))) | Err(_) => Err(first_err),
                }
            }
            (_, Err(first_err)) => Err(first_err),
        };
        self.stats
            .abandoned
            .fetch_add((attempts.len() - consumed) as u64, Ordering::Relaxed);
        self.reap(attempts);
        result
    }

    /// Tracks attempt threads: already-finished ones are joined on the
    /// spot (free), the rest wait in `outstanding` for the next reap or
    /// for [`Drop`].
    fn reap(&mut self, fresh: Vec<JoinHandle<()>>) {
        self.outstanding.extend(fresh);
        let mut i = 0;
        while i < self.outstanding.len() {
            if self.outstanding[i].is_finished() {
                let _ = self.outstanding.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
    }

    /// Hands out the live stream, reconnecting if the last attempt
    /// tainted it.
    fn take_stream(&mut self) -> Result<TcpStream, FrameError> {
        match self.stream.take() {
            Some(s) => Ok(s),
            None => {
                self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                open_stream(&self.addrs, &self.config).map_err(FrameError::from)
            }
        }
    }

    /// Exponential backoff with deterministic jitter before retry
    /// `attempt` (1-based: the first retry backs off `base_backoff`±).
    fn backoff(&mut self, attempt: u32) {
        let Some(policy) = &self.config.retry else {
            return;
        };
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(policy.max_backoff);
        // Jitter in [0, capped/2): de-synchronizes clients retrying
        // after a shared overload event.
        self.jitter = splitmix(self.jitter);
        let jitter_us = if capped.is_zero() {
            0
        } else {
            self.jitter % (capped.as_micros() as u64 / 2).max(1)
        };
        std::thread::sleep(capped + Duration::from_micros(jitter_us));
    }

    /// Pipelining: writes one request frame without waiting for its
    /// reply. Pair with [`Client::recv`]; the daemon's reactor
    /// guarantees replies come back in request order. Raw mode — no
    /// retries, no hedging, no reconnect on error (a tainted stream
    /// would desynchronize the pipeline).
    pub fn send(&mut self, request: &Request) -> Result<(), FrameError> {
        let mut stream = self.take_stream()?;
        match write_frame(&mut stream, &request.encode()) {
            Ok(()) => {
                self.stream = Some(stream);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Pipelining: reads the next reply frame. Replies arrive in the
    /// order their requests were [`Client::send`]-ed.
    pub fn recv(&mut self) -> Result<Response, FrameError> {
        let mut stream = self.take_stream()?;
        match read_frame(&mut stream) {
            Ok(Some(body)) => {
                self.stream = Some(stream);
                Response::decode(&body)
            }
            Ok(None) => Err(FrameError::Truncated),
            Err(e) => Err(e),
        }
    }

    /// Races `workload` with `arg` under `deadline_ms` (0 = unbounded).
    pub fn run(
        &mut self,
        workload: &str,
        arg: u64,
        deadline_ms: u32,
    ) -> Result<Response, FrameError> {
        self.call(&Request::Run {
            workload: workload.to_owned(),
            deadline_ms,
            arg,
        })
    }

    /// Fetches the human-readable stats page.
    pub fn stats_page(&mut self) -> Result<String, FrameError> {
        match self.call(&Request::Stats)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches Prometheus text-format metrics.
    pub fn prometheus(&mut self) -> Result<String, FrameError> {
        match self.call(&Request::Prometheus)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the per-peer link table: up/down, rtt EWMA, dispatch
    /// and reconnect counters for every configured peer.
    pub fn peer_stats(&mut self) -> Result<String, FrameError> {
        match self.call(&Request::PeerStats)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the workload catalog: every registered workload, its
    /// alternatives, and which one the scheduler currently favours.
    pub fn catalog_page(&mut self) -> Result<String, FrameError> {
        match self.call(&Request::Catalog)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), FrameError> {
        match self.call(&Request::Shutdown)? {
            Response::Text { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

impl Drop for Client {
    /// Joins every abandoned hedge attempt. Bounded: each attempt runs
    /// under the config's connect/read/write timeouts, so the slowest
    /// possible join is one socket timeout away — no thread outlives
    /// the client unseen, and no reply socket lingers half-read.
    fn drop(&mut self) {
        for handle in self.outstanding.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One framed request/reply exchange on an open stream.
fn exchange(stream: &mut TcpStream, payload: &[u8]) -> Result<Response, FrameError> {
    write_frame(stream, payload)?;
    match read_frame(stream)? {
        Some(body) => Response::decode(&body),
        None => Err(FrameError::Truncated),
    }
}

/// Connects to the first reachable address with the config's timeouts.
fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
    let mut last_err = None;
    for addr in addrs {
        match TcpStream::connect_timeout(addr, config.connect_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(config.read_timeout)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no addresses to try")))
}

fn unexpected(resp: Response) -> FrameError {
    let _ = resp;
    FrameError::Malformed("unexpected response kind")
}

/// SplitMix64 step, the same generator the fault plan uses.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
