//! Shard-local reply rings: the zero-copy reply data plane.
//!
//! Before this module a winning reply crossed three buffers — the
//! worker encoded into a pooled scratch `Vec`, the reactor copied that
//! into the connection's write buffer, and the kernel copied it onto
//! the wire. A [`ReplyRing`] collapses the first two: the winner
//! encodes its whole frame (4-byte length prefix *and* body, via
//! [`frame::append_frame`]) directly into a reserved [`RingSlot`], the
//! completion pipe carries the slot handle to the reactor, and the
//! reactor's socket write reads straight out of the slot. One copy
//! (kernel), zero steady-state allocation.
//!
//! ## Shape
//!
//! A ring is a fixed population of `slots` buffers, each retaining
//! `slot_bytes` of capacity, recycled through a freelist. "Ring" here
//! is the population discipline, not a lock-free index scheme: the
//! crate is `#![deny(unsafe_code)]`, so slots move by ownership
//! transfer (a `Mutex<Vec<_>>` freelist, uncontended in steady state)
//! and reclamation is the [`RingSlot`] destructor — a slot can be
//! dropped anywhere (reactor after the socket write, a dead
//! connection's queue, a lost race) and it always returns home.
//!
//! ## Spill path
//!
//! Replies that don't fit a slot (oversize, e.g. a STATS page) or
//! arrive while every slot is in flight (exhaustion) spill to a plain
//! heap `Vec` — on the reactor thread that `Vec` comes from the
//! shard's `BufPool`, elsewhere it is freshly allocated. Spills are
//! counted but never fail: the ring is an optimization with a
//! correctness-preserving fallback, and `--ring-slots 0` disables it
//! entirely, reproducing the old allocate-per-reply behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::bufpool::BufPool;
use crate::frame::{self, Response, MAX_FRAME};

/// Monotonic counters for one shard's ring, shared with telemetry.
#[derive(Debug, Default)]
pub struct RingStats {
    hits: AtomicU64,
    spills: AtomicU64,
}

impl RingStats {
    /// Replies encoded into a ring slot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Replies that fell back to a heap buffer — oversize for the
    /// slot geometry, or every slot was in flight.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct RingCore {
    /// Freelist of idle slot buffers; each retains `slot_bytes` of
    /// capacity across recycles so steady state never allocates.
    free: Mutex<Vec<Vec<u8>>>,
    slot_bytes: usize,
    stats: Arc<RingStats>,
}

/// Handle to one shard's reply ring. Clones share the same slot
/// population; a disabled ring (`slots == 0`) never reserves and
/// never counts, so the spill path *is* the old data plane.
#[derive(Debug, Clone)]
pub struct ReplyRing {
    core: Option<Arc<RingCore>>,
}

impl ReplyRing {
    /// A ring of `slots` buffers of `slot_bytes` capacity each.
    /// `slots == 0` builds a disabled ring.
    pub fn new(slots: usize, slot_bytes: usize) -> Self {
        if slots == 0 {
            return ReplyRing { core: None };
        }
        let slot_bytes = slot_bytes.max(64);
        let free = (0..slots).map(|_| Vec::with_capacity(slot_bytes)).collect();
        ReplyRing {
            core: Some(Arc::new(RingCore {
                free: Mutex::new(free),
                slot_bytes,
                stats: Arc::new(RingStats::default()),
            })),
        }
    }

    /// Whether this ring ever hands out slots.
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The shared counters (present even when disabled, for uniform
    /// telemetry wiring; a disabled ring just never moves them).
    pub fn stats(&self) -> Arc<RingStats> {
        match &self.core {
            Some(core) => Arc::clone(&core.stats),
            None => Arc::new(RingStats::default()),
        }
    }

    /// Reserves a slot able to hold a whole `frame_len`-byte frame.
    /// `None` means spill: the frame is oversize for the slot
    /// geometry, every slot is in flight, or the ring is disabled.
    /// Only an enabled ring counts the outcome.
    pub fn try_reserve(&self, frame_len: usize) -> Option<RingSlot> {
        let core = self.core.as_ref()?;
        if frame_len > core.slot_bytes {
            core.stats.spills.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let buf = core.free.lock().expect("ring freelist poisoned").pop();
        match buf {
            Some(buf) => {
                core.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(RingSlot {
                    buf,
                    core: Arc::clone(core),
                })
            }
            None => {
                core.stats.spills.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Touches every idle slot's full capacity from the calling thread.
    ///
    /// `ReplyRing::new` reserves capacity but the pages only become
    /// resident when first written — and they become resident on the
    /// NUMA node of the *writing* core. A pinned shard calls this from
    /// its reactor thread right after pinning, so the ring's memory
    /// lands local to the shard's cores instead of wherever the main
    /// thread happened to run during startup. Counts nothing and leaves
    /// every slot empty; a no-op on a disabled ring.
    pub fn first_touch(&self) {
        let Some(core) = &self.core else { return };
        let mut free = core.free.lock().expect("ring freelist poisoned");
        for buf in free.iter_mut() {
            buf.resize(core.slot_bytes, 0);
            buf.clear();
        }
    }

    /// Idle slots right now (test / debug aid).
    pub fn idle_slots(&self) -> usize {
        match &self.core {
            Some(core) => core.free.lock().expect("ring freelist poisoned").len(),
            None => 0,
        }
    }
}

/// One reserved ring slot. Dropping it — from anywhere, on any thread
/// — returns the buffer to its ring's freelist, so reclamation rides
/// ordinary ownership: the reactor drops the slot when the socket
/// write completes, and every error path reclaims for free.
#[derive(Debug)]
pub struct RingSlot {
    buf: Vec<u8>,
    core: Arc<RingCore>,
}

impl RingSlot {
    fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for RingSlot {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        // A slot that somehow outgrew its geometry is retired and
        // replaced, keeping the population's capacity invariant.
        if buf.capacity() > self.core.slot_bytes {
            buf = Vec::with_capacity(self.core.slot_bytes);
        }
        buf.clear();
        let mut free = self.core.free.lock().expect("ring freelist poisoned");
        free.push(buf);
    }
}

/// A fully encoded reply frame (length prefix + body), ready for the
/// socket, backed by either a ring slot or a spilled heap buffer.
/// `Send`, so a worker thread encodes it and the completion pipe
/// carries it to the reactor unchanged.
#[derive(Debug)]
pub enum EncodedReply {
    /// Zero-copy path: the frame lives in a ring slot.
    Ring(RingSlot),
    /// Spill path: the frame lives in a plain heap buffer (pooled on
    /// the reactor thread, freshly allocated elsewhere).
    Heap(Vec<u8>),
}

impl EncodedReply {
    /// Encodes `resp` as one wire frame, preferring a ring slot. Used
    /// from worker threads, where no `BufPool` is reachable — a spill
    /// here allocates.
    pub fn encode(resp: &Response, ring: &ReplyRing) -> EncodedReply {
        Self::encode_inner(resp, ring, None)
    }

    /// Reactor-side variant: a spill draws its buffer from the
    /// shard's `BufPool` instead of allocating.
    pub fn encode_with(resp: &Response, ring: &ReplyRing, pool: &mut BufPool) -> EncodedReply {
        Self::encode_inner(resp, ring, Some(pool))
    }

    fn encode_inner(resp: &Response, ring: &ReplyRing, pool: Option<&mut BufPool>) -> EncodedReply {
        // The MAX_FRAME guard runs *before* any buffer is touched:
        // a reply too large for the wire is substituted, never sent
        // half-framed. `encoded_len` is exact, so the substitution is
        // decided without a throwaway encode.
        let oversized;
        let resp = if resp.encoded_len() > MAX_FRAME {
            oversized = Response::Error {
                message: "reply exceeded MAX_FRAME".to_owned(),
            };
            &oversized
        } else {
            resp
        };
        let frame_len = 4 + resp.encoded_len();
        if let Some(mut slot) = ring.try_reserve(frame_len) {
            frame::append_frame(&mut slot.buf, |b| resp.encode_into(b))
                .expect("encoded_len pre-check bounds the frame");
            return EncodedReply::Ring(slot);
        }
        let mut buf = match pool {
            Some(pool) => pool.get(),
            None => Vec::new(),
        };
        buf.reserve(frame_len);
        frame::append_frame(&mut buf, |b| resp.encode_into(b))
            .expect("encoded_len pre-check bounds the frame");
        EncodedReply::Heap(buf)
    }

    /// The complete frame (length prefix + body) as it goes on the
    /// wire.
    pub fn bytes(&self) -> &[u8] {
        match self {
            EncodedReply::Ring(slot) => slot.bytes(),
            EncodedReply::Heap(buf) => buf,
        }
    }

    /// Retires the reply after its last byte hit the socket: a ring
    /// slot reclaims via drop, a heap spill recycles into the pool.
    pub fn recycle(self, pool: &mut BufPool) {
        match self {
            EncodedReply::Ring(_) => {}
            EncodedReply::Heap(buf) => pool.put(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_resp(name: &str) -> Response {
        Response::Ok {
            winner: 1,
            winner_name: name.to_owned(),
            latency_us: 7,
            value: 42,
        }
    }

    fn assert_frame(reply: &EncodedReply, resp: &Response) {
        let bytes = reply.bytes();
        let body_len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, bytes.len() - 4, "length prefix matches body");
        assert_eq!(&Response::decode(&bytes[4..]).unwrap(), resp);
    }

    #[test]
    fn encode_hits_ring_and_roundtrips() {
        let ring = ReplyRing::new(2, 256);
        let resp = ok_resp("alpha");
        let reply = EncodedReply::encode(&resp, &ring);
        assert!(matches!(reply, EncodedReply::Ring(_)));
        assert_frame(&reply, &resp);
        assert_eq!(ring.stats().hits(), 1);
        assert_eq!(ring.stats().spills(), 0);
        assert_eq!(ring.idle_slots(), 1);
        drop(reply);
        assert_eq!(ring.idle_slots(), 2, "drop reclaims the slot");
    }

    #[test]
    fn exhaustion_spills_without_loss() {
        let ring = ReplyRing::new(1, 256);
        let resp = ok_resp("alpha");
        let first = EncodedReply::encode(&resp, &ring);
        let second = EncodedReply::encode(&resp, &ring);
        assert!(matches!(first, EncodedReply::Ring(_)));
        assert!(matches!(second, EncodedReply::Heap(_)), "exhausted → heap");
        assert_frame(&second, &resp);
        assert_eq!(ring.stats().hits(), 1);
        assert_eq!(ring.stats().spills(), 1);
        drop(first);
        let third = EncodedReply::encode(&resp, &ring);
        assert!(
            matches!(third, EncodedReply::Ring(_)),
            "reclaimed slot is reused"
        );
    }

    #[test]
    fn oversize_reply_spills() {
        let ring = ReplyRing::new(4, 64);
        let resp = Response::Text {
            body: "x".repeat(1024),
        };
        let reply = EncodedReply::encode(&resp, &ring);
        assert!(matches!(reply, EncodedReply::Heap(_)));
        assert_frame(&reply, &resp);
        assert_eq!(ring.stats().spills(), 1);
        assert_eq!(ring.idle_slots(), 4, "no slot consumed by a spill");
    }

    #[test]
    fn disabled_ring_always_heaps_and_never_counts() {
        let ring = ReplyRing::new(0, 1024);
        assert!(!ring.enabled());
        let resp = ok_resp("alpha");
        let reply = EncodedReply::encode(&resp, &ring);
        assert!(matches!(reply, EncodedReply::Heap(_)));
        assert_frame(&reply, &resp);
        assert_eq!(ring.stats().hits(), 0);
        assert_eq!(ring.stats().spills(), 0);
    }

    #[test]
    fn over_max_frame_reply_is_substituted() {
        let ring = ReplyRing::new(2, 256);
        let resp = Response::Text {
            body: "y".repeat(MAX_FRAME + 1),
        };
        let reply = EncodedReply::encode(&resp, &ring);
        match Response::decode(&reply.bytes()[4..]).unwrap() {
            Response::Error { message } => assert!(message.contains("MAX_FRAME")),
            other => panic!("expected substituted error, got {other:?}"),
        }
    }

    #[test]
    fn wraparound_recycles_the_same_buffers() {
        let ring = ReplyRing::new(2, 256);
        let resp = ok_resp("beta");
        for _ in 0..100 {
            let a = EncodedReply::encode(&resp, &ring);
            let b = EncodedReply::encode(&resp, &ring);
            assert!(matches!(a, EncodedReply::Ring(_)));
            assert!(matches!(b, EncodedReply::Ring(_)));
            assert_frame(&a, &resp);
        }
        assert_eq!(ring.stats().hits(), 200);
        assert_eq!(ring.stats().spills(), 0);
        assert_eq!(ring.idle_slots(), 2);
    }

    #[test]
    fn reactor_side_spill_draws_from_pool() {
        let ring = ReplyRing::new(0, 0);
        let mut pool = BufPool::new(4);
        pool.put(Vec::with_capacity(512));
        let resp = ok_resp("gamma");
        let reply = EncodedReply::encode_with(&resp, &ring, &mut pool);
        assert_eq!(pool.held(), 0, "spill drew the pooled buffer");
        reply.recycle(&mut pool);
        assert_eq!(pool.held(), 1, "recycle returned it");
    }
}
