//! CPU affinity binding: the `sched_setaffinity(2)` /
//! `sched_getaffinity(2)` corner of the placement layer.
//!
//! Like the reactor's `poll(2)` binding, the extern declarations name
//! libc symbols that std already links — no new dependency. Everything
//! here is *advisory* for the daemon: a kernel that refuses (`EPERM`
//! inside a restrictive container, `EINVAL` for a CPU outside the
//! cgroup's cpuset) leaves the thread unpinned and the daemon running;
//! callers log and continue. The failure contract is pinned by
//! `tests/topo.rs`.
//!
//! Every syscall made through this module is counted
//! ([`affinity_syscalls`]); the `--pin`-off equivalence test asserts
//! the counter never moves when pinning is disabled, so "off" provably
//! means *no affinity syscalls at all*, not "pinning to everything".

use std::sync::atomic::{AtomicU64, Ordering};

/// Highest CPU id the fixed-size mask below can express. 1024 CPUs
/// matches glibc's `cpu_set_t`; hosts beyond it exist but a daemon
/// pinned to the first 1024 is still correct, just not using the rest.
pub const MAX_CPUS: usize = 1024;

const MASK_BYTES: usize = MAX_CPUS / 8;

/// Affinity syscalls (get + set) made through this module since
/// process start. The `--pin`-off equivalence gate reads the delta.
static AFFINITY_SYSCALLS: AtomicU64 = AtomicU64::new(0);

/// How many affinity syscalls this module has made so far.
pub fn affinity_syscalls() -> u64 {
    AFFINITY_SYSCALLS.load(Ordering::SeqCst)
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use super::{AFFINITY_SYSCALLS, MASK_BYTES, MAX_CPUS};
    use std::io;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u8) -> i32;
    }

    /// Pins the *calling thread* (pid 0) to exactly `cpus`.
    pub fn set_current_affinity(cpus: &[usize]) -> io::Result<()> {
        let mut mask = [0u8; MASK_BYTES];
        let mut any = false;
        for &cpu in cpus {
            if cpu >= MAX_CPUS {
                continue;
            }
            mask[cpu / 8] |= 1 << (cpu % 8);
            any = true;
        }
        if !any {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty CPU set"));
        }
        AFFINITY_SYSCALLS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `mask` is a live, correctly sized byte buffer for the
        // duration of the call; pid 0 targets the calling thread.
        let rc = unsafe { sched_setaffinity(0, MASK_BYTES, mask.as_ptr()) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// The calling thread's current affinity mask as a CPU id list.
    pub fn current_affinity() -> io::Result<Vec<usize>> {
        let mut mask = [0u8; MASK_BYTES];
        AFFINITY_SYSCALLS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `mask` is a live, correctly sized byte buffer the
        // kernel fills; pid 0 targets the calling thread.
        let rc = unsafe { sched_getaffinity(0, MASK_BYTES, mask.as_mut_ptr()) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let mut cpus = Vec::new();
        for (byte_idx, byte) in mask.iter().enumerate() {
            let mut bits = *byte;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                cpus.push(byte_idx * 8 + bit);
                bits &= bits - 1;
            }
        }
        Ok(cpus)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use std::io;

    pub fn set_current_affinity(_cpus: &[usize]) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "CPU pinning is only wired up on Linux",
        ))
    }

    pub fn current_affinity() -> io::Result<Vec<usize>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "CPU affinity queries are only wired up on Linux",
        ))
    }
}

pub use sys::{current_affinity, set_current_affinity};

/// Best-effort pin of the calling thread to `cpus`: on refusal
/// (`EPERM` under a restrictive seccomp/container policy, `EINVAL` for
/// CPUs outside the allowed set, `Unsupported` off Linux) logs once
/// per call and reports `false` — the thread keeps running unpinned,
/// never aborts.
pub fn pin_current_thread(label: &str, cpus: &[usize]) -> bool {
    match set_current_affinity(cpus) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("altxd: pin {label} to cpus {cpus:?} failed ({e}); continuing unpinned");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_refused_without_a_syscall() {
        let before = affinity_syscalls();
        assert!(set_current_affinity(&[]).is_err());
        // Ids past MAX_CPUS are dropped before the mask is built, so an
        // all-out-of-range set is the empty set.
        assert!(set_current_affinity(&[MAX_CPUS + 5]).is_err());
        assert_eq!(affinity_syscalls(), before, "refused before the kernel");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn get_set_roundtrip_on_own_mask() {
        let mine = current_affinity().expect("getaffinity works on Linux");
        assert!(!mine.is_empty());
        // Re-pinning to the exact current mask is always permitted.
        assert!(set_current_affinity(&mine).is_ok());
        assert_eq!(current_affinity().expect("still readable"), mine);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn invalid_cpu_fails_softly() {
        // A mask of only (almost certainly) nonexistent CPUs draws
        // EINVAL; pin_current_thread must absorb it and keep going.
        let before = current_affinity().expect("getaffinity works");
        assert!(!pin_current_thread("test-thread", &[MAX_CPUS - 1]));
        assert_eq!(
            current_affinity().expect("still readable"),
            before,
            "a refused pin leaves the affinity untouched"
        );
    }
}
