//! # altx-serve — speculation as a service
//!
//! A std-only TCP daemon that runs the paper's construct as a server
//! primitive: each request names a registered *workload* — a block of
//! mutually exclusive alternatives — and the daemon races the
//! alternatives on real threads, replying with the first successful
//! value, the winning alternative, and the latency. It is the
//! hedged-request pattern with the paper's semantics made explicit:
//! alternatives are speculative, losers are eliminated cooperatively,
//! and the observable behaviour is that of a single sequential choice.
//!
//! Production scaffolding around the race:
//!
//! * a fixed [`pool::WorkerPool`] with a **bounded** run queue —
//!   admission control sheds load with an explicit `Overloaded` reply
//!   instead of queueing without bound;
//! * per-request **deadlines** carried by the engine's `CancelToken`
//!   (the serving analogue of `alt_wait(timeout)` from §3.2) with
//!   `DeadlineExceeded` replies;
//! * graceful shutdown that drains every in-flight race and joins every
//!   thread before exiting;
//! * [`telemetry`]: atomic counters, fixed-bucket latency histograms,
//!   and per-alternative win rates, served over the same socket as a
//!   stats page or Prometheus text format.
//!
//! Binaries: `altxd` (the daemon) and `altx-load` (a closed-loop load
//! generator emitting `BENCH_serve_throughput.json`). See the README's
//! "Serving" section for the wire protocol and a transcript.
//!
//! The front end is a poll-based **reactor** (`reactor.rs`): one event
//! loop thread multiplexes every connection over non-blocking sockets,
//! so idle connections cost a file descriptor rather than a thread, and
//! pipelined requests on one connection are answered in order. Workers
//! hand finished races back through a completion queue and a self-pipe
//! wakeup instead of a per-request blocking channel. The reply path is
//! zero-copy ([`ring`]): the winner encodes its whole wire frame once
//! into a fixed shard-local ring slot and the socket write reads
//! straight from it, with oversize or ring-exhausted replies spilling
//! to the [`bufpool`] path; sharded daemons accept on per-shard
//! `SO_REUSEPORT` listeners so a connection never changes threads
//! between accept and service.

// `deny` rather than `forbid`: the crate's two `#[allow(unsafe_code)]`
// corners are the reactor's `sys` module (the `poll(2)` binding) and
// `pin::sys` (the `sched_{set,get}affinity(2)` binding).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod batch;
pub mod bufpool;
pub mod client;
pub mod commit;
mod conn;
pub mod frame;
pub mod peer;
pub mod pin;
pub(crate) mod placement;
pub mod pool;
pub(crate) mod reactor;
pub(crate) mod remote;
pub mod ring;
pub mod sched;
pub mod server;
pub mod telemetry;
pub mod topo;
pub mod workload;

pub use client::Client;
pub use commit::{CommitLedger, TallyState, VoteTally};
pub use frame::{Request, Response, MAX_FRAME};
pub use peer::PeerConfig;
pub use sched::{Admission, HedgeConfig, HedgePolicy, Lanes};
pub use server::{start, ServerConfig, ServerHandle};
pub use telemetry::Telemetry;
