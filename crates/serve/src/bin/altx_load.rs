//! `altx-load` — closed-loop load generator for `altxd`.
//!
//! ```text
//! altx-load [--addr HOST:PORT] [--workload SPEC] [--clients N]
//!           [--threads N] [--connections N] [--duration SECS]
//!           [--deadline-ms N] [--out FILE.json] [--retries N]
//!           [--hedge-ms N] [--batch-window-us N]
//!           [--hist-diff BASELINE.json]
//! ```
//!
//! `--workload` takes either a single name (`trivial`) or a mixed spec
//! (`trivial:50,sleep:200`): a comma list of `name[:deadline_ms]`
//! entries that each connection walks round-robin, one request per
//! entry. A per-entry deadline overrides `--deadline-ms`; an entry
//! without one inherits it. Mixed specs are how the scheduler benches
//! offer a fast/slow blend to one daemon and read the outcome per
//! class.
//!
//! The report distinguishes *throughput* (ok replies per second) from
//! **goodput** (ok replies that also beat their deadline, client-side
//! clock). An ok reply that lands after its deadline counts as a
//! `deadline_miss`, not goodput; requests with deadline 0 are
//! best-effort, so every ok reply is goodput. Per-workload tallies
//! (ok/good/deadline-exceeded/shed plus p50/p99/p99.9) are printed and
//! emitted under `per_workload` in the JSON.
//!
//! Spawns `N` client threads, each with its own connection, issuing
//! requests back-to-back (one outstanding request per connection) for
//! the given duration. `--threads T` (0, the default, keeps the
//! thread-per-client mode) switches to *pipelined* generation: the
//! `--clients` connections are dealt across only `T` OS threads, each
//! thread driving its share in lockstep — send on every connection,
//! then collect every reply. Same closed-loop offered load (one
//! outstanding request per connection), a fraction of the generator
//! threads: how a small box saturates a sharded daemon. Pipelined mode
//! uses the client's raw send/recv path, so it rejects `--retries` and
//! `--hedge-ms` (a retried send would desynchronize the pipeline). `--connections` decouples open connections from
//! in-flight clients: when it exceeds `--clients`, the surplus is held
//! open *idle* for the whole run — exercising the daemon's reactor,
//! which must serve them for file descriptors, not threads. The
//! server-reported `conns open` gauge is fetched while the idles are
//! held and echoed for smoke tests. `--retries` enables the client's
//! retry policy (N attempts per call with backoff); `--hedge-ms` arms a
//! hedged second attempt after that many milliseconds.
//!
//! `--batch-window-us N` aligns the clients onto the daemon's
//! coalescing window: instead of each client walking its own RNG arg
//! stream, every client derives its arg from the *shared* run clock
//! (`elapsed / N`), so clients issuing in the same window send the
//! identical `(workload, arg, deadline)` key and the daemon can batch
//! them into one race. Start the daemon with the same
//! `--batch-window-us` to see `requests coalesced` climb.
//!
//! `--peers a,b,c` names the other nodes of an `altxd` cluster: after
//! the run their STATS pages are scraped too and the cluster counters
//! (`remote_dispatched`, `remote_wins`, `peer_reconnects`) are summed
//! across every node still answering — a killed peer is skipped, not
//! fatal.
//!
//! Prints a summary table and writes a JSON report — throughput,
//! goodput, deadline-miss rate, p50/p90/p99/p99.9/max latency, reply
//! mix, per-workload tallies, per-alternative win counts, client
//! resilience counters, and the daemon's post-run scheduler and
//! reply-ring counters (`server_*` fields, parsed from its STATS
//! page, including `sheds at admission`, `deadline misses`, and
//! `steals`) — to `--out` (default `BENCH_serve_throughput.json`).
//!
//! `--hist-diff BASELINE.json` compares the run just measured against
//! a previous report: after the summary a per-percentile delta table
//! (throughput, goodput, p50/p90/p99/p99.9/max) is printed with the
//! relative change per row. Keys missing from the baseline (older
//! reports have no `goodput_rps`) render as `n/a` rather than
//! failing.

use altx_serve::client::{ClientConfig, RetryPolicy};
use altx_serve::frame::{Request, Response};
use altx_serve::Client;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    workload: String,
    clients: usize,
    threads: usize,
    connections: usize,
    duration_s: u64,
    deadline_ms: u32,
    out: String,
    retries: u32,
    hedge_ms: u64,
    batch_window_us: u64,
    /// Other cluster nodes (`--peers a,b,c`): their STATS pages are
    /// scraped after the run and the cluster counters summed into the
    /// report alongside the target daemon's.
    peers: Vec<String>,
    /// Previous report to diff the fresh percentiles against
    /// (`--hist-diff BASELINE.json`).
    hist_diff: Option<String>,
}

impl Args {
    /// Client config implied by the resilience flags.
    fn client_config(&self, seed: u64) -> ClientConfig {
        ClientConfig {
            retry: (self.retries > 0).then(|| RetryPolicy {
                max_attempts: self.retries.max(1),
                budget: u32::MAX, // the run is time-bounded, not budget-bounded
                jitter_seed: seed,
                ..RetryPolicy::default()
            }),
            hedge_delay: (self.hedge_ms > 0).then(|| Duration::from_millis(self.hedge_ms)),
            ..ClientConfig::default()
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_owned(),
        workload: "trivial".to_owned(),
        clients: 8,
        threads: 0,     // 0 = one thread per client (legacy mode)
        connections: 0, // 0 = same as --clients (no idle surplus)
        duration_s: 5,
        deadline_ms: 0,
        out: "BENCH_serve_throughput.json".to_owned(),
        retries: 0,
        hedge_ms: 0,
        batch_window_us: 0,
        peers: Vec::new(),
        hist_diff: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workload" => args.workload = value("--workload")?,
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--duration" => {
                args.duration_s = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--hedge-ms" => {
                args.hedge_ms = value("--hedge-ms")?
                    .parse()
                    .map_err(|e| format!("--hedge-ms: {e}"))?
            }
            "--batch-window-us" => {
                args.batch_window_us = value("--batch-window-us")?
                    .parse()
                    .map_err(|e| format!("--batch-window-us: {e}"))?
            }
            "--hist-diff" => args.hist_diff = Some(value("--hist-diff")?),
            "--peers" => {
                args.peers = value("--peers")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect()
            }
            "--help" | "-h" => {
                println!(
                    "usage: altx-load [--addr HOST:PORT] [--workload SPEC] [--clients N] \
                     [--threads N] [--connections N] [--duration SECS] [--deadline-ms N] \
                     [--out FILE.json] [--retries N] [--hedge-ms N] [--batch-window-us N] \
                     [--peers HOST:PORT,...] [--hist-diff BASELINE.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// One entry of a `--workload` spec: a workload name and the deadline
/// its requests carry (0 = best-effort).
#[derive(Clone)]
struct WorkloadSpec {
    name: String,
    deadline_ms: u32,
}

/// Parses `name[:deadline_ms][,name[:deadline_ms]]...`; entries without
/// an explicit deadline inherit `--deadline-ms`.
fn parse_workloads(spec: &str, default_deadline_ms: u32) -> Result<Vec<WorkloadSpec>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        out.push(match part.split_once(':') {
            Some((name, dl)) => WorkloadSpec {
                name: name.to_owned(),
                deadline_ms: dl
                    .parse()
                    .map_err(|e| format!("workload entry {part}: {e}"))?,
            },
            None => WorkloadSpec {
                name: part.to_owned(),
                deadline_ms: default_deadline_ms,
            },
        });
    }
    if out.is_empty() {
        return Err("--workload: empty spec".to_owned());
    }
    Ok(out)
}

/// Reply tallies for one workload-spec entry.
#[derive(Default, Clone)]
struct Tally {
    latencies_us: Vec<u64>,
    ok: u64,
    /// Ok replies that beat their deadline (all of them when the entry
    /// is best-effort) — the numerator of goodput.
    good: u64,
    deadline_exceeded: u64,
    overloaded: u64,
    errors: u64,
}

/// Per-client tallies, merged after the run. `tallies` is parallel to
/// the workload-spec list.
struct ClientReport {
    tallies: Vec<Tally>,
    retries: u64,
    hedges: u64,
    reconnects: u64,
    abandoned: u64,
    wins: BTreeMap<String, u64>,
}

impl ClientReport {
    fn new(nspecs: usize) -> Self {
        Self {
            tallies: vec![Tally::default(); nspecs],
            retries: 0,
            hedges: 0,
            reconnects: 0,
            abandoned: 0,
            wins: BTreeMap::new(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: &str,
    specs: &[WorkloadSpec],
    config: ClientConfig,
    seed: u64,
    batch_window_us: u64,
    epoch: Instant,
    stop: &AtomicBool,
) -> Result<ClientReport, String> {
    let mut client =
        Client::connect_with(addr, config).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut report = ClientReport::new(specs.len());
    let mut arg = seed;
    let mut which = seed as usize;
    while !stop.load(Ordering::Relaxed) {
        arg = if batch_window_us > 0 {
            // Shared-clock arg: every client in the same window sends
            // the same key, so the daemon's batcher can coalesce them.
            epoch.elapsed().as_micros() as u64 / batch_window_us
        } else {
            arg.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
        };
        let widx = which % specs.len();
        which = which.wrapping_add(1);
        let spec = &specs[widx];
        let begin = Instant::now();
        let resp = client
            .run(&spec.name, arg, spec.deadline_ms)
            .map_err(|e| format!("request failed: {e}"))?;
        let rtt_us = begin.elapsed().as_micros() as u64;
        tally(
            &mut report.tallies[widx],
            &mut report.wins,
            resp,
            rtt_us,
            spec,
        )?;
    }
    let stats = client.stats();
    report.retries = stats.retries();
    report.hedges = stats.hedges();
    report.reconnects = stats.reconnects();
    report.abandoned = stats.abandoned();
    Ok(report)
}

/// Folds one reply into the tallies; fatal replies become `Err`.
fn tally(
    t: &mut Tally,
    wins: &mut BTreeMap<String, u64>,
    resp: Response,
    rtt_us: u64,
    spec: &WorkloadSpec,
) -> Result<(), String> {
    match resp {
        Response::Ok { winner_name, .. } => {
            t.ok += 1;
            t.latencies_us.push(rtt_us);
            if spec.deadline_ms == 0 || rtt_us <= u64::from(spec.deadline_ms) * 1000 {
                t.good += 1;
            }
            *wins.entry(winner_name).or_insert(0) += 1;
        }
        Response::DeadlineExceeded { .. } => t.deadline_exceeded += 1,
        Response::Overloaded => t.overloaded += 1,
        Response::UnknownWorkload => return Err(format!("unknown workload {}", spec.name)),
        Response::Error { message } => {
            t.errors += 1;
            eprintln!("altx-load: server error: {message}");
        }
        Response::Text { .. } => return Err("unexpected text reply".to_owned()),
        Response::Vote { .. } => return Err("unexpected vote reply".to_owned()),
    }
    Ok(())
}

/// One generator thread driving `nconns` connections in lockstep: send
/// a request on every connection, then collect every reply (the daemon
/// releases pipelined replies in send order per connection). Offered
/// load matches `nconns` thread-per-client loops — one outstanding
/// request per connection — on a single OS thread. Each connection
/// walks the workload specs round-robin from its own offset, so a
/// mixed spec stays mixed within every send wave.
fn pipelined_loop(
    addr: &str,
    specs: &[WorkloadSpec],
    nconns: usize,
    base_seed: u64,
    batch_window_us: u64,
    epoch: Instant,
    stop: &AtomicBool,
) -> Result<ClientReport, String> {
    let mut conns: Vec<(Client, u64, usize)> = (0..nconns)
        .map(|i| {
            Client::connect(addr)
                .map(|c| (c, base_seed + i as u64, i))
                .map_err(|e| format!("connect {addr}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let mut report = ClientReport::new(specs.len());
    let mut begins = Vec::with_capacity(nconns);
    let mut sent_widx = Vec::with_capacity(nconns);
    while !stop.load(Ordering::Relaxed) {
        begins.clear();
        sent_widx.clear();
        for (client, arg, which) in &mut conns {
            *arg = if batch_window_us > 0 {
                epoch.elapsed().as_micros() as u64 / batch_window_us
            } else {
                arg.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
            };
            let widx = *which % specs.len();
            *which = which.wrapping_add(1);
            let spec = &specs[widx];
            let request = Request::Run {
                workload: spec.name.clone(),
                deadline_ms: spec.deadline_ms,
                arg: *arg,
            };
            begins.push(Instant::now());
            sent_widx.push(widx);
            client
                .send(&request)
                .map_err(|e| format!("pipelined send failed: {e}"))?;
        }
        for (i, (client, _, _)) in conns.iter_mut().enumerate() {
            let resp = client
                .recv()
                .map_err(|e| format!("pipelined recv failed: {e}"))?;
            let rtt_us = begins[i].elapsed().as_micros() as u64;
            let widx = sent_widx[i];
            tally(
                &mut report.tallies[widx],
                &mut report.wins,
                resp,
                rtt_us,
                &specs[widx],
            )?;
        }
    }
    Ok(report)
}

/// Reads a labelled counter line (e.g. `requests coalesced  12`) off
/// the daemon's STATS page: the label words must lead the line and the
/// next word must parse as the value.
fn counter_from_stats(stats: &str, label: &[&str]) -> Option<u64> {
    stats.lines().find_map(|l| {
        let mut words = l.split_whitespace();
        label
            .iter()
            .all(|w| words.next() == Some(w))
            .then(|| words.next()?.parse().ok())
            .flatten()
    })
}

/// The daemon's race-scheduler counters, scraped after the run.
#[derive(Default)]
struct ServerCounters {
    batches_formed: u64,
    requests_coalesced: u64,
    hedges_launched: u64,
    hedge_wins: u64,
    launches_suppressed: u64,
    remote_dispatched: u64,
    remote_wins: u64,
    peer_reconnects: u64,
    ring_hits: u64,
    ring_spills: u64,
    sheds_at_admission: u64,
    deadline_misses: u64,
    steals: u64,
    drain_scavenges: u64,
    pinned_shards: u64,
}

fn scrape_server_counters(stats: &str) -> ServerCounters {
    let get = |label: &[&str]| counter_from_stats(stats, label).unwrap_or(0);
    ServerCounters {
        batches_formed: get(&["batches", "formed"]),
        requests_coalesced: get(&["requests", "coalesced"]),
        hedges_launched: get(&["hedges", "launched"]),
        hedge_wins: get(&["hedge", "wins"]),
        launches_suppressed: get(&["launches", "suppressed"]),
        remote_dispatched: get(&["remote", "dispatched"]),
        remote_wins: get(&["remote", "wins"]),
        peer_reconnects: get(&["peer", "reconnects"]),
        ring_hits: get(&["ring", "hits"]),
        ring_spills: get(&["ring", "spills"]),
        sheds_at_admission: get(&["sheds", "at", "admission"]),
        deadline_misses: get(&["deadline", "misses"]),
        steals: get(&["steals"]),
        drain_scavenges: get(&["drain", "scavenges"]),
        pinned_shards: get(&["pinned", "shards"]),
    }
}

/// Fetches one daemon's STATS page.
fn fetch_stats(addr: &str) -> std::io::Result<String> {
    let mut c = Client::connect(addr)?;
    c.stats_page()
        .map_err(|e| std::io::Error::other(e.to_string()))
}

/// The `p`-quantile of a sorted sample, or `None` when the sample is
/// empty. A workload that completed zero requests has no latency
/// distribution — reporting `0` would read as "instant", so empties
/// render as `n/a` in text and `null` in JSON (which [`json_number`]
/// maps back to `n/a` when a later `--hist-diff` reads the report).
fn percentile(sorted_us: &[u64], p: f64) -> Option<u64> {
    if sorted_us.is_empty() {
        return None;
    }
    let idx = ((p * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    Some(sorted_us[idx])
}

/// Renders a possibly-absent latency figure for the text summary.
fn fmt_us(v: Option<u64>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |v| v.to_string())
}

/// Renders a possibly-absent latency figure for the JSON report.
fn json_us(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pulls one numeric field out of a flat JSON report without a parser:
/// finds `"key":` at top level and reads the number after it. Returns
/// `None` when the key is absent (older reports lack some fields) or
/// the value is not a number — the diff table shows `n/a` for those.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && !matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One row of the `--hist-diff` table: baseline value (if the key was
/// present and numeric), fresh value (if this run produced one), and
/// the relative change. Either side may be absent — an older baseline
/// lacking the key, or a run whose workload completed zero requests —
/// and shows `n/a` rather than a misleading `0`.
fn diff_row(label: &str, baseline: Option<f64>, fresh: Option<f64>) {
    match (baseline, fresh) {
        (Some(base), Some(fresh)) if base > 0.0 => {
            let delta = (fresh - base) / base * 100.0;
            println!("  {label:<14} {base:>12.1} {fresh:>12.1} {delta:>+9.1}%");
        }
        (Some(base), Some(fresh)) => {
            println!("  {label:<14} {base:>12.1} {fresh:>12.1} {:>10}", "n/a")
        }
        (Some(base), None) => println!("  {label:<14} {base:>12.1} {:>12} {:>10}", "n/a", "n/a"),
        (None, Some(fresh)) => println!("  {label:<14} {:>12} {fresh:>12.1} {:>10}", "n/a", "n/a"),
        (None, None) => println!("  {label:<14} {:>12} {:>12} {:>10}", "n/a", "n/a", "n/a"),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("altx-load: {e}");
            std::process::exit(2);
        }
    };
    if args.threads > 0 && (args.retries > 0 || args.hedge_ms > 0) {
        eprintln!(
            "altx-load: --threads drives the raw pipelined path; \
             --retries/--hedge-ms would desynchronize it"
        );
        std::process::exit(2);
    }
    let specs = match parse_workloads(&args.workload, args.deadline_ms) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("altx-load: {e}");
            std::process::exit(2);
        }
    };

    // Surplus connections beyond the active clients are held open and
    // idle for the whole run; the daemon's reactor must carry them
    // without spending threads on them.
    let idle_count = args.connections.saturating_sub(args.clients);
    let idles: Vec<Client> = (0..idle_count)
        .map(|i| match Client::connect(&*args.addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("altx-load: idle connection {i}: {e}");
                std::process::exit(1);
            }
        })
        .collect();
    // While the idles are held, ask the daemon how many connections it
    // sees — the CI smoke asserts on this line. Shards register a
    // handed-off connection on their next poll pass, so poll the gauge
    // until it has converged on the idles just opened (or a deadline
    // passes and the last observation stands).
    let conns_open_observed = if idle_count > 0 {
        let mut probe = match Client::connect(&*args.addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("altx-load: probing conns_open: {e}");
                std::process::exit(1);
            }
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let seen = match probe.stats_page() {
                Ok(stats) => counter_from_stats(&stats, &["conns", "open"]).unwrap_or(0),
                Err(e) => {
                    eprintln!("altx-load: probing conns_open: {e}");
                    std::process::exit(1);
                }
            };
            if seen >= idle_count as u64 || Instant::now() >= deadline {
                break seen;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    } else {
        0
    };
    if idle_count > 0 {
        println!(
            "altx-load: holding {idle_count} idle connections (server reports conns_open={conns_open_observed})"
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = if args.threads > 0 {
        // Pipelined mode: deal the connections across the thread pool,
        // spreading any remainder over the first few threads.
        let nthreads = args.threads.min(args.clients);
        let mut next = 0usize;
        (0..nthreads)
            .map(|i| {
                let nconns = args.clients / nthreads + usize::from(i < args.clients % nthreads);
                let base_seed = 0x5eed + next as u64;
                next += nconns;
                let addr = args.addr.clone();
                let specs = Arc::clone(&specs);
                let stop = Arc::clone(&stop);
                let batch_window_us = args.batch_window_us;
                std::thread::spawn(move || {
                    pipelined_loop(
                        &addr,
                        &specs,
                        nconns,
                        base_seed,
                        batch_window_us,
                        started,
                        &stop,
                    )
                })
            })
            .collect()
    } else {
        (0..args.clients)
            .map(|i| {
                let addr = args.addr.clone();
                let specs = Arc::clone(&specs);
                let stop = Arc::clone(&stop);
                let seed = 0x5eed + i as u64;
                let config = args.client_config(seed);
                let batch_window_us = args.batch_window_us;
                std::thread::spawn(move || {
                    client_loop(&addr, &specs, config, seed, batch_window_us, started, &stop)
                })
            })
            .collect()
    };
    std::thread::sleep(Duration::from_secs(args.duration_s));
    stop.store(true, Ordering::Relaxed);

    let mut merged = ClientReport::new(specs.len());
    for h in handles {
        match h.join().expect("client thread exits") {
            Ok(r) => {
                for (into, from) in merged.tallies.iter_mut().zip(r.tallies) {
                    into.latencies_us.extend(from.latencies_us);
                    into.ok += from.ok;
                    into.good += from.good;
                    into.deadline_exceeded += from.deadline_exceeded;
                    into.overloaded += from.overloaded;
                    into.errors += from.errors;
                }
                merged.retries += r.retries;
                merged.hedges += r.hedges;
                merged.reconnects += r.reconnects;
                merged.abandoned += r.abandoned;
                for (name, n) in r.wins {
                    *merged.wins.entry(name).or_insert(0) += n;
                }
            }
            Err(e) => {
                eprintln!("altx-load: {e}");
                std::process::exit(1);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    drop(idles); // held through the whole measured window

    // The daemon is still up: scrape its scheduler counters so the
    // report shows what the server did with this load (batching and
    // hedging live server-side; client counters can't see them).
    let mut server = match fetch_stats(&args.addr) {
        Ok(stats) => scrape_server_counters(&stats),
        Err(e) => {
            eprintln!("altx-load: scraping server counters: {e} (reporting zeros)");
            ServerCounters::default()
        }
    };
    // With --peers the cluster counters are summed across every node
    // still answering — a SIGKILLed peer is skipped, not fatal: the
    // survivors' counters are exactly what the smoke asserts on.
    for peer in &args.peers {
        match fetch_stats(peer) {
            Ok(stats) => {
                let c = scrape_server_counters(&stats);
                server.remote_dispatched += c.remote_dispatched;
                server.remote_wins += c.remote_wins;
                server.peer_reconnects += c.peer_reconnects;
            }
            Err(e) => eprintln!("altx-load: peer {peer} unreachable ({e}); skipping"),
        }
    }
    for t in &mut merged.tallies {
        t.latencies_us.sort_unstable();
    }
    let sum = |f: fn(&Tally) -> u64| merged.tallies.iter().map(f).sum::<u64>();
    let ok = sum(|t| t.ok);
    let good = sum(|t| t.good);
    let deadline_exceeded = sum(|t| t.deadline_exceeded);
    let overloaded = sum(|t| t.overloaded);
    let errors = sum(|t| t.errors);
    let total = ok + deadline_exceeded + overloaded + errors;
    let deadline_misses = ok - good;
    let deadline_miss_rate = if ok > 0 {
        deadline_misses as f64 / ok as f64
    } else {
        0.0
    };
    let throughput = ok as f64 / elapsed;
    let goodput = good as f64 / elapsed;
    let mut all_latencies: Vec<u64> = merged
        .tallies
        .iter()
        .flat_map(|t| t.latencies_us.iter().copied())
        .collect();
    all_latencies.sort_unstable();
    let p50 = percentile(&all_latencies, 0.50);
    let p90 = percentile(&all_latencies, 0.90);
    let p99 = percentile(&all_latencies, 0.99);
    let p999 = percentile(&all_latencies, 0.999);
    let max = all_latencies.last().copied();

    if args.threads > 0 {
        println!(
            "altx-load: {} pipelined connections on {} threads x {:.1}s against {}",
            args.clients,
            args.threads.min(args.clients),
            elapsed,
            args.addr
        );
    } else {
        println!(
            "altx-load: {} clients x {:.1}s against {}",
            args.clients, elapsed, args.addr
        );
    }
    println!("  workload            {}", args.workload);
    println!("  requests            {total}");
    println!("  ok                  {ok}");
    println!("  deadline exceeded   {deadline_exceeded}");
    println!("  overloaded (shed)   {overloaded}");
    println!("  errors              {errors}");
    println!("  throughput          {throughput:.0} req/s");
    println!("  goodput             {goodput:.0} req/s (late ok replies: {deadline_misses})");
    println!(
        "  latency us          p50 {}  p90 {}  p99 {}  p99.9 {}  max {}",
        fmt_us(p50),
        fmt_us(p90),
        fmt_us(p99),
        fmt_us(p999),
        fmt_us(max)
    );
    if specs.len() > 1 {
        for (spec, t) in specs.iter().zip(&merged.tallies) {
            println!(
                "  [{} dl {} ms]  ok {}  good {}  dlx {}  shed {}  p50 {}  p99 {}  p99.9 {}",
                spec.name,
                spec.deadline_ms,
                t.ok,
                t.good,
                t.deadline_exceeded,
                t.overloaded,
                fmt_us(percentile(&t.latencies_us, 0.50)),
                fmt_us(percentile(&t.latencies_us, 0.99)),
                fmt_us(percentile(&t.latencies_us, 0.999))
            );
        }
    }
    if merged.retries + merged.hedges + merged.reconnects + merged.abandoned > 0 {
        println!(
            "  resilience          retries {}  hedges {}  reconnects {}  abandoned {}",
            merged.retries, merged.hedges, merged.reconnects, merged.abandoned
        );
    }
    println!(
        "  server sched        batches {}  coalesced {}  hedges {}  hedge wins {}  suppressed {}",
        server.batches_formed,
        server.requests_coalesced,
        server.hedges_launched,
        server.hedge_wins,
        server.launches_suppressed
    );
    println!(
        "  server ring         hits {}  spills {}",
        server.ring_hits, server.ring_spills
    );
    if server.sheds_at_admission + server.deadline_misses + server.steals + server.drain_scavenges
        > 0
    {
        println!(
            "  server deadline     sheds at admission {}  deadline misses {}  steals {}  drain scavenges {}",
            server.sheds_at_admission, server.deadline_misses, server.steals, server.drain_scavenges
        );
    }
    if server.pinned_shards > 0 {
        println!(
            "  server placement    pinned shards {}",
            server.pinned_shards
        );
    }
    if !args.peers.is_empty() {
        println!(
            "  cluster             remote dispatched {}  remote wins {}  peer reconnects {}",
            server.remote_dispatched, server.remote_wins, server.peer_reconnects
        );
    }
    for (name, n) in &merged.wins {
        println!("  wins[{name}]  {n}");
    }

    let mut wins_json: Vec<String> = Vec::new();
    for (name, n) in &merged.wins {
        wins_json.push(format!("    \"{}\": {}", json_escape(name), n));
    }
    // Per-entry tallies keyed by workload name (with its effective
    // deadline alongside, since the same name may appear twice with
    // different deadlines the spec string disambiguates).
    let mut per_workload_json: Vec<String> = Vec::new();
    for (spec, t) in specs.iter().zip(&merged.tallies) {
        per_workload_json.push(format!(
            "    \"{}\": {{ \"deadline_ms\": {}, \"ok\": {}, \"good\": {}, \
             \"deadline_exceeded\": {}, \"overloaded\": {}, \"errors\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {} }}",
            json_escape(&spec.name),
            spec.deadline_ms,
            t.ok,
            t.good,
            t.deadline_exceeded,
            t.overloaded,
            t.errors,
            json_us(percentile(&t.latencies_us, 0.50)),
            json_us(percentile(&t.latencies_us, 0.99)),
            json_us(percentile(&t.latencies_us, 0.999)),
        ));
    }
    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"clients\": {},\n  \"threads\": {},\n  \
         \"connections\": {},\n  \
         \"duration_s\": {:.3},\n  \
         \"deadline_ms\": {},\n  \"batch_window_us\": {},\n  \"requests\": {},\n  \"ok\": {},\n  \
         \"deadline_exceeded\": {},\n  \"overloaded\": {},\n  \"errors\": {},\n  \
         \"deadline_misses\": {},\n  \"deadline_miss_rate\": {:.4},\n  \
         \"client_retries\": {},\n  \"client_hedges\": {},\n  \"client_reconnects\": {},\n  \
         \"client_abandoned\": {},\n  \
         \"server_batches_formed\": {},\n  \"server_requests_coalesced\": {},\n  \
         \"server_hedges_launched\": {},\n  \"server_hedge_wins\": {},\n  \
         \"server_launches_suppressed\": {},\n  \
         \"server_ring_hits\": {},\n  \"server_ring_spills\": {},\n  \
         \"server_sheds_at_admission\": {},\n  \"server_deadline_misses\": {},\n  \
         \"server_steals\": {},\n  \"server_drain_scavenges\": {},\n  \
         \"server_pinned_shards\": {},\n  \
         \"remote_dispatched\": {},\n  \"remote_wins\": {},\n  \
         \"peer_reconnects\": {},\n  \
         \"throughput_rps\": {:.1},\n  \"goodput_rps\": {:.1},\n  \
         \"p50_us\": {},\n  \"p90_us\": {},\n  \
         \"p99_us\": {},\n  \
         \"p999_us\": {},\n  \"max_us\": {},\n  \
         \"per_workload\": {{\n{}\n  }},\n  \
         \"wins\": {{\n{}\n  }}\n}}\n",
        json_escape(&args.workload),
        args.clients,
        args.threads,
        args.clients.max(args.connections),
        elapsed,
        args.deadline_ms,
        args.batch_window_us,
        total,
        ok,
        deadline_exceeded,
        overloaded,
        errors,
        deadline_misses,
        deadline_miss_rate,
        merged.retries,
        merged.hedges,
        merged.reconnects,
        merged.abandoned,
        server.batches_formed,
        server.requests_coalesced,
        server.hedges_launched,
        server.hedge_wins,
        server.launches_suppressed,
        server.ring_hits,
        server.ring_spills,
        server.sheds_at_admission,
        server.deadline_misses,
        server.steals,
        server.drain_scavenges,
        server.pinned_shards,
        server.remote_dispatched,
        server.remote_wins,
        server.peer_reconnects,
        throughput,
        goodput,
        json_us(p50),
        json_us(p90),
        json_us(p99),
        json_us(p999),
        json_us(max),
        per_workload_json.join(",\n"),
        wins_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("altx-load: writing {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("altx-load: wrote {}", args.out);

    // Percentile-by-percentile comparison against a previous report.
    // A baseline that predates a field (older reports have no p90_us),
    // a baseline that recorded `null` (no completions), or a fresh run
    // with no completions shows `n/a` on that row instead of aborting
    // the diff or pretending the latency was 0.
    if let Some(path) = &args.hist_diff {
        let baseline = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("altx-load: reading --hist-diff {path}: {e}");
                std::process::exit(1);
            }
        };
        println!("altx-load: latency diff vs {path}");
        println!(
            "  {:<14} {:>12} {:>12} {:>10}",
            "metric", "baseline", "current", "delta"
        );
        diff_row(
            "throughput",
            json_number(&baseline, "throughput_rps"),
            Some(throughput),
        );
        diff_row(
            "goodput",
            json_number(&baseline, "goodput_rps"),
            Some(goodput),
        );
        let us = |v: Option<u64>| v.map(|v| v as f64);
        diff_row("p50 us", json_number(&baseline, "p50_us"), us(p50));
        diff_row("p90 us", json_number(&baseline, "p90_us"), us(p90));
        diff_row("p99 us", json_number(&baseline, "p99_us"), us(p99));
        diff_row("p99.9 us", json_number(&baseline, "p999_us"), us(p999));
        diff_row("max us", json_number(&baseline, "max_us"), us(max));
    }
}
