//! `altxd` — the speculation daemon.
//!
//! ```text
//! altxd [--addr HOST:PORT] [--workers N] [--queue N] [--duration SECS]
//! ```
//!
//! `--duration 0` (the default) serves until a client sends the
//! SHUTDOWN opcode; a positive duration makes the daemon drain and exit
//! on its own — handy for smoke tests.

use altx_serve::server::{available_workers, start, ServerConfig};
use altx_serve::workload::CATALOG;
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    queue_depth: usize,
    duration_s: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_owned(),
        workers: available_workers(),
        queue_depth: 64,
        duration_s: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue_depth = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--duration" => {
                args.duration_s = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: altxd [--addr HOST:PORT] [--workers N] [--queue N] [--duration SECS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("altxd: {e}");
            std::process::exit(2);
        }
    };
    let handle = match start(ServerConfig {
        addr: args.addr,
        workers: args.workers,
        queue_depth: args.queue_depth,
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("altxd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "altxd listening on {} ({} workers, queue depth {})",
        handle.local_addr(),
        args.workers,
        args.queue_depth
    );
    println!("workloads:");
    for w in CATALOG {
        println!(
            "  {:<10} {} ({} alternatives)",
            w.name, w.description, w.alternatives
        );
    }

    let telemetry = handle.telemetry();
    if args.duration_s > 0 {
        std::thread::sleep(Duration::from_secs(args.duration_s));
        handle.shutdown();
    } else {
        handle.wait();
    }
    print!("{}", telemetry.render_stats());
    println!("altxd: drained, bye");
}
