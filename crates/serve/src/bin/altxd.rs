//! `altxd` — the speculation daemon.
//!
//! ```text
//! altxd [--addr HOST:PORT] [--workers N] [--queue N] [--shards N]
//!       [--ring-slots N] [--ring-slot-bytes N]
//!       [--duration SECS] [--batch-window-us N] [--hedge]
//!       [--hedge-min-samples N] [--hedge-explore-every N]
//! ```
//!
//! `--duration 0` (the default) serves until a client sends the
//! SHUTDOWN opcode; a positive duration makes the daemon drain and exit
//! on its own — handy for smoke tests.
//!
//! `--batch-window-us` turns on request coalescing: identical
//! `(workload, deadline, arg)` requests arriving within the window share
//! one race. `--hedge` turns on adaptive hedged launches: the
//! statistically favoured alternative starts immediately and the rest
//! are held back until its observed p95 has passed.
//!
//! `--shards N` runs N independent reactor event loops, each accepting
//! on its own `SO_REUSEPORT` listener (an acceptor thread dealing
//! connections round-robin remains as the fallback where the socket
//! option is unavailable); the default of 1 keeps the classic
//! single-reactor front end.
//!
//! `--ring-slots N` / `--ring-slot-bytes N` size the per-shard reply
//! ring — the fixed buffers winning replies are encoded straight into
//! (one copy to the kernel, no steady-state allocation). `--ring-slots
//! 0` disables the ring, reproducing the old allocate-per-reply path.
//!
//! `--peer HOST:PORT` (repeatable) joins a cluster: the daemon keeps an
//! outbound link to each named peer, ships non-favourite alternatives
//! to lightly loaded peers when the transfer model says it pays, and
//! commits each race's winner through a majority vote across the nodes
//! that were up when the race started. `--advertise HOST:PORT` sets
//! the identity peers use to reach back (defaults to the bind
//! address); `--peer-explore-every N` forces one remote dispatch every
//! N races so link statistics stay live (0 disables exploration).
//! `--peer-heartbeat-ms N` sets the PEER_STATS heartbeat cadence (0
//! disables heartbeats and the health lifecycle); `--peer-suspect-ms N`
//! is how long a link may stay silent before its peer is marked
//! Suspect — twice that quarantines it until it answers again.
//!
//! Deadline-aware scheduling (all off by default — the defaults are
//! byte-for-byte the classic FIFO pool): `--lanes SPEC` declares
//! per-workload priority lanes (`rt:trivial,bimodal;batch:sleep`,
//! priority in declaration order, unmentioned workloads in a trailing
//! default lane; `--lane-aging-ms N` bounds how long a lower lane may
//! starve); `--admission` sheds a request on arrival when its deadline
//! is provably unmeetable from the workload's observed p99 service time
//! plus the current queue wait; `--steal` splits the pool into one
//! worker group per shard and lets a dry group's workers take the best
//! queued job from a sibling.
//!
//! CPU placement (off by default — without `--pin` the daemon makes
//! zero affinity syscalls): `--pin` discovers the machine topology and
//! pins each shard's reactor and worker group to a disjoint, SMT- and
//! NUMA-aware core set, first-touching the shard's reply ring and
//! buffer pool from those cores so the memory lands node-local.
//! `--spin-us N` sets how long an idle stealing worker busy-waits for
//! new work before parking on its group doorbell (0 parks immediately).

use altx_serve::server::{
    available_workers, start, ServerConfig, DEFAULT_RING_SLOTS, DEFAULT_RING_SLOT_BYTES,
};
use altx_serve::workload::CATALOG;
use altx_serve::{HedgeConfig, Lanes, PeerConfig};
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    queue_depth: usize,
    shards: usize,
    ring_slots: usize,
    ring_slot_bytes: usize,
    duration_s: u64,
    batch_window: Duration,
    hedge: HedgeConfig,
    peer: PeerConfig,
    lanes: Lanes,
    admission: bool,
    steal: bool,
    lane_aging: Duration,
    pin: bool,
    spin: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_owned(),
        workers: available_workers(),
        queue_depth: 64,
        shards: 1,
        ring_slots: DEFAULT_RING_SLOTS,
        ring_slot_bytes: DEFAULT_RING_SLOT_BYTES,
        duration_s: 0,
        batch_window: Duration::ZERO,
        hedge: HedgeConfig::default(),
        peer: PeerConfig::default(),
        lanes: Lanes::single(),
        admission: false,
        steal: false,
        lane_aging: altx_serve::pool::DEFAULT_LANE_AGING,
        pin: false,
        spin: altx_serve::pool::DEFAULT_SPIN,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue_depth = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse::<usize>()
                    .map_err(|e| format!("--shards: {e}"))?
                    .max(1)
            }
            "--ring-slots" => {
                args.ring_slots = value("--ring-slots")?
                    .parse()
                    .map_err(|e| format!("--ring-slots: {e}"))?
            }
            "--ring-slot-bytes" => {
                args.ring_slot_bytes = value("--ring-slot-bytes")?
                    .parse()
                    .map_err(|e| format!("--ring-slot-bytes: {e}"))?
            }
            "--duration" => {
                args.duration_s = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--batch-window-us" => {
                let us: u64 = value("--batch-window-us")?
                    .parse()
                    .map_err(|e| format!("--batch-window-us: {e}"))?;
                args.batch_window = Duration::from_micros(us);
            }
            "--hedge" => args.hedge.enabled = true,
            "--hedge-min-samples" => {
                args.hedge.min_samples = value("--hedge-min-samples")?
                    .parse()
                    .map_err(|e| format!("--hedge-min-samples: {e}"))?
            }
            "--hedge-explore-every" => {
                args.hedge.explore_every = value("--hedge-explore-every")?
                    .parse()
                    .map_err(|e| format!("--hedge-explore-every: {e}"))?
            }
            "--peer" => args.peer.peers.push(value("--peer")?),
            "--advertise" => args.peer.advertise = Some(value("--advertise")?),
            "--peer-explore-every" => {
                args.peer.explore_every = value("--peer-explore-every")?
                    .parse()
                    .map_err(|e| format!("--peer-explore-every: {e}"))?
            }
            "--peer-heartbeat-ms" => {
                args.peer.heartbeat_ms = value("--peer-heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--peer-heartbeat-ms: {e}"))?
            }
            "--peer-suspect-ms" => {
                args.peer.suspect_ms = value("--peer-suspect-ms")?
                    .parse()
                    .map_err(|e| format!("--peer-suspect-ms: {e}"))?
            }
            "--lanes" => {
                args.lanes =
                    Lanes::parse(&value("--lanes")?).map_err(|e| format!("--lanes: {e}"))?
            }
            "--admission" => args.admission = true,
            "--steal" => args.steal = true,
            "--pin" => args.pin = true,
            "--spin-us" => {
                let us: u64 = value("--spin-us")?
                    .parse()
                    .map_err(|e| format!("--spin-us: {e}"))?;
                args.spin = Duration::from_micros(us);
            }
            "--lane-aging-ms" => {
                let ms: u64 = value("--lane-aging-ms")?
                    .parse()
                    .map_err(|e| format!("--lane-aging-ms: {e}"))?;
                args.lane_aging = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!(
                    "usage: altxd [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--shards N] [--ring-slots N] [--ring-slot-bytes N] \
                     [--duration SECS] [--batch-window-us N] [--hedge] \
                     [--hedge-min-samples N] [--hedge-explore-every N] \
                     [--peer HOST:PORT]... [--advertise HOST:PORT] \
                     [--peer-explore-every N] [--peer-heartbeat-ms N] \
                     [--peer-suspect-ms N] [--lanes SPEC] [--admission] \
                     [--steal] [--lane-aging-ms N] [--pin] [--spin-us N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("altxd: {e}");
            std::process::exit(2);
        }
    };
    let handle = match start(ServerConfig {
        addr: args.addr,
        workers: args.workers,
        queue_depth: args.queue_depth,
        batch_window: args.batch_window,
        hedge: args.hedge.clone(),
        shards: args.shards,
        ring_slots: args.ring_slots,
        ring_slot_bytes: args.ring_slot_bytes,
        peer: args.peer.clone(),
        lanes: args.lanes.clone(),
        admission: args.admission,
        steal: args.steal,
        lane_aging: args.lane_aging,
        pin: args.pin,
        spin: args.spin,
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("altxd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "altxd listening on {} ({} workers, queue depth {}, {} shard{})",
        handle.local_addr(),
        args.workers,
        args.queue_depth,
        args.shards,
        if args.shards == 1 { "" } else { "s" }
    );
    if args.ring_slots > 0 {
        println!(
            "reply ring: {} slots x {} B per shard (spills fall back to the pool)",
            args.ring_slots, args.ring_slot_bytes
        );
    } else {
        println!("reply ring: disabled (allocate-per-reply path)");
    }
    if !args.batch_window.is_zero() {
        println!("batching: window {:?}", args.batch_window);
    }
    if args.hedge.enabled {
        println!(
            "hedging: on (min samples {}, explore every {})",
            args.hedge.min_samples, args.hedge.explore_every
        );
    }
    if args.lanes.count() > 1 {
        println!(
            "lanes: [{}] (aging {} ms)",
            args.lanes.names().join(" > "),
            args.lane_aging.as_millis()
        );
    }
    if args.admission {
        println!("admission control: on (shed provably unmeetable deadlines)");
    }
    if args.steal {
        println!("work stealing: on ({} worker groups)", args.shards);
    }
    if args.pin {
        println!(
            "cpu placement: on (spin budget {} us; shards pin to disjoint core sets)",
            args.spin.as_micros()
        );
    }
    if !args.peer.peers.is_empty() {
        println!(
            "peering: {} peer{} [{}] (explore every {}, heartbeat {} ms, suspect {} ms)",
            args.peer.peers.len(),
            if args.peer.peers.len() == 1 { "" } else { "s" },
            args.peer.peers.join(", "),
            args.peer.explore_every,
            args.peer.heartbeat_ms,
            args.peer.suspect_ms
        );
    }
    println!("workloads:");
    for w in CATALOG {
        println!(
            "  {:<10} {} ({} alternatives)",
            w.name,
            w.description,
            w.alternatives()
        );
    }

    let telemetry = handle.telemetry();
    if args.duration_s > 0 {
        std::thread::sleep(Duration::from_secs(args.duration_s));
        handle.shutdown();
    } else {
        handle.wait();
    }
    print!("{}", telemetry.render_stats());
    println!("altxd: drained, bye");
}
