//! Fixed worker pool with a bounded run queue and load shedding.
//!
//! Connections never execute races themselves: they enqueue a job and
//! wait for its reply. The queue is bounded, and `try_submit` refuses —
//! it never blocks — when the queue is full, which is the daemon's
//! admission-control point: a full queue means the pool is saturated and
//! queueing deeper would only convert overload into latency. Shutdown
//! closes the queue; workers drain every admitted job before exiting, so
//! accepted requests are always answered.

use altx::sync::{BoundedQueue, QueueError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The run queue is full — shed the request.
    Overloaded,
    /// The pool is shutting down.
    ShuttingDown,
}

/// A fixed set of worker threads consuming a bounded job queue.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of depth `queue_depth`.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_depth));
        let handles = (0..workers)
            .map(|i| {
                let q = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("altxd-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = q.pop() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            queue,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a job without blocking; refuses when full or closed.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        self.queue.push(job).map_err(|(_, e)| match e {
            QueueError::Full => SubmitError::Overloaded,
            QueueError::Closed => SubmitError::ShuttingDown,
        })
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Closes the queue and joins every worker after it drains the jobs
    /// already admitted. Idempotent: later calls find no workers left.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for w in handles {
            w.join().expect("worker exits cleanly");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i).expect("receiver alive")))
                .expect("queue has room");
        }
        let mut got: Vec<usize> = (0..16).map(|_| rx.recv().expect("job ran")).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let pool = WorkerPool::new(1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_submit(Box::new(move || {
            block_rx.recv().ok();
        }))
        .expect("admitted");
        // ...then fill the queue.
        let mut sheds = 0;
        for _ in 0..20 {
            if pool.try_submit(Box::new(|| {})) == Err(SubmitError::Overloaded) {
                sheds += 1;
            }
        }
        assert!(sheds >= 18, "only {sheds} sheds");
        block_tx.send(()).expect("worker waiting");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let pool = WorkerPool::new(2, 64);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 50, "admitted jobs must all run");
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let pool = WorkerPool::new(1, 4);
        let q = Arc::clone(&pool.queue);
        pool.shutdown();
        assert_eq!(
            q.push(Box::new(|| {}) as Job).map_err(|(_, e)| e),
            Err(QueueError::Closed)
        );
    }
}
