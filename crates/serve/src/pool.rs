//! Fixed worker pool with a bounded run queue, load shedding, panic
//! containment, and a supervisor that respawns dead workers.
//!
//! Connections never execute races themselves: they enqueue a job and
//! wait for its reply. The queue is bounded, and `try_submit` refuses —
//! it never blocks — when the queue is full, which is the daemon's
//! admission-control point: a full queue means the pool is saturated and
//! queueing deeper would only convert overload into latency. Shutdown
//! closes the queue; workers drain every admitted job before exiting, so
//! accepted requests are always answered.
//!
//! On the way back, the completion notifier is where the zero-copy
//! reply path starts: the worker thread encodes the winning `Response`
//! once into a shard-local ring slot (`ring.rs`) and the notification
//! that rides the reactor's self-pipe carries that slot *handle* — the
//! reactor writes to the socket straight from it, never re-encoding or
//! copying the reply.
//!
//! Failure story (this is the layer the chaos soak beats on):
//!
//! * every job runs inside `catch_unwind` — a panicking job is counted
//!   ([`PoolStats::jobs_panicked`]) and the worker keeps consuming;
//! * a **supervisor** thread watches for workers that died anyway (a
//!   fault-injected kill at the `pool.worker` site, or a panic that
//!   somehow escaped containment) and respawns them, so pool capacity
//!   is restored instead of silently decaying to zero
//!   ([`PoolStats::worker_respawns`]);
//! * `shutdown` recovers poisoned locks instead of propagating them —
//!   a crashed worker must never wedge the drain path.

use altx::faults;
use altx::sync::{BoundedQueue, QueueError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A completion notifier for [`WorkerPool::try_submit_notify`].
pub type Notify = Box<dyn FnOnce() + Send + 'static>;

/// Fires its notifier exactly once — when dropped, whether that drop
/// happens after the job returned, while a panic unwinds through it,
/// or because the pool discarded the job unrun.
struct NotifyOnDrop {
    armed: Arc<AtomicBool>,
    notify: Option<Notify>,
}

impl Drop for NotifyOnDrop {
    fn drop(&mut self) {
        if self.armed.load(Ordering::SeqCst) {
            if let Some(f) = self.notify.take() {
                f();
            }
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The run queue is full — shed the request.
    Overloaded,
    /// The pool is shutting down.
    ShuttingDown,
}

/// Failure counters the pool maintains; shared with telemetry.
#[derive(Debug, Default)]
pub struct PoolStats {
    jobs_panicked: AtomicU64,
    worker_respawns: AtomicU64,
    busy: AtomicU64,
}

impl PoolStats {
    /// Jobs whose closure panicked (contained; the worker survived).
    pub fn jobs_panicked(&self) -> u64 {
        self.jobs_panicked.load(Ordering::Relaxed)
    }

    /// Workers found dead by the supervisor and replaced.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Workers executing a job right now — a gauge, not a counter.
    /// Together with the queue depth this is the load figure peers
    /// exchange in heartbeats.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }
}

/// State shared between the pool handle, its workers, and the
/// supervisor.
struct Shared {
    queue: BoundedQueue<Job>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<PoolStats>,
    shutting_down: AtomicBool,
}

/// A fixed set of worker threads consuming a bounded job queue, kept at
/// strength by a supervisor.
pub struct WorkerPool {
    shared: Arc<Shared>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    n_workers: usize,
}

/// How often the supervisor sweeps for dead workers.
const SUPERVISE_EVERY: Duration = Duration::from_millis(5);

impl WorkerPool {
    /// Spawns `workers` threads over a queue of depth `queue_depth`,
    /// plus the supervisor.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(queue_depth),
            workers: Mutex::new(Vec::with_capacity(workers)),
            stats: Arc::new(PoolStats::default()),
            shutting_down: AtomicBool::new(false),
        });
        {
            let mut slots = lock_workers(&shared);
            for i in 0..workers {
                slots.push(spawn_worker(&shared, &format!("altxd-worker-{i}")));
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("altxd-supervisor".to_owned())
                .spawn(move || supervise(&shared))
                .expect("spawn supervisor")
        };
        WorkerPool {
            shared,
            supervisor: Mutex::new(Some(supervisor)),
            n_workers: workers,
        }
    }

    /// Enqueues a job without blocking; refuses when full or closed.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        self.shared.queue.push(job).map_err(|(_, e)| match e {
            QueueError::Full => SubmitError::Overloaded,
            QueueError::Closed => SubmitError::ShuttingDown,
        })
    }

    /// Enqueues a job with a completion notifier. The pool guarantees
    /// `notify` runs **exactly once** for an admitted job — after the
    /// job returns, while its panic unwinds, or when the pool drops the
    /// job unrun (an injected `Fail` fault, a worker killed mid-queue).
    /// A refused submission never notifies: the `Err` return is the
    /// caller's signal.
    ///
    /// This is the reactor's bridge out of blocking-channel land: the
    /// notifier posts the finished response to the reactor's completion
    /// queue and tickles its self-pipe, so no thread ever parks in
    /// `recv()` waiting for a race to finish.
    pub fn try_submit_notify(&self, job: Job, notify: Notify) -> Result<(), SubmitError> {
        let armed = Arc::new(AtomicBool::new(true));
        let guard = NotifyOnDrop {
            armed: Arc::clone(&armed),
            notify: Some(notify),
        };
        let wrapped: Job = Box::new(move || {
            job();
            drop(guard); // unwind-safe: a panicking job still notifies
        });
        match self.shared.queue.push(wrapped) {
            Ok(()) => Ok(()),
            Err((wrapped, e)) => {
                // Disarm *before* dropping the refused wrapper, or its
                // guard would report a loss for a job that was never
                // admitted.
                armed.store(false, Ordering::SeqCst);
                drop(wrapped);
                Err(match e {
                    QueueError::Full => SubmitError::Overloaded,
                    QueueError::Closed => SubmitError::ShuttingDown,
                })
            }
        }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Workers executing a job right now.
    pub fn busy(&self) -> u64 {
        self.shared.stats.busy()
    }

    /// Worker threads the pool was sized for.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// The pool's failure counters, shareable with telemetry. The
    /// `Arc` keeps the counters readable after `shutdown`.
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Closes the queue and joins every worker after it drains the jobs
    /// already admitted, then joins the supervisor. Idempotent: later
    /// calls find no workers left. Never panics — poisoned locks and
    /// workers that died of a contained-but-escaped panic are both
    /// recovered, so shutdown always drains.
    pub fn shutdown(&self) {
        // Order matters: stop the supervisor from respawning *before*
        // closing the queue, so a worker that exits on drain is not
        // replaced.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let supervisor = self
            .supervisor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(s) = supervisor {
            let _ = s.join();
        }
        let handles: Vec<_> = lock_workers(&self.shared).drain(..).collect();
        for w in handles {
            // A worker killed by an injected fault panicked; that must
            // not abort the drain of its siblings.
            let _ = w.join();
        }
    }
}

fn lock_workers(shared: &Shared) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    shared
        .workers
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn spawn_worker(shared: &Arc<Shared>, name: &str) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(move || worker_loop(&shared))
        .expect("spawn worker")
}

fn worker_loop(shared: &Shared) {
    loop {
        // Fault site `pool.worker`: an injected panic here is *not*
        // contained — it kills this thread, which is the supervisor's
        // cue. Sits before the pop so no admitted job is lost with the
        // worker.
        if faults::enabled() {
            let _ = faults::inject("pool.worker", None);
        }
        match shared.queue.pop() {
            Ok(job) => run_job(job, shared),
            Err(_) => break, // closed and drained
        }
    }
}

fn run_job(job: Job, shared: &Shared) {
    shared.stats.busy.fetch_add(1, Ordering::Relaxed);
    // Fault site `pool.job` sits inside the contained region: an
    // injected panic is indistinguishable from the job itself crashing,
    // and `Fail` drops the job unrun (the submitter's reply channel
    // closes, which the server answers rather than awaits forever).
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if faults::enabled() && faults::inject("pool.job", None) == faults::Verdict::Fail {
            return;
        }
        job();
    }));
    // The gauge decrement sits outside the contained region, so a
    // panicking job never leaves a phantom busy worker behind.
    shared.stats.busy.fetch_sub(1, Ordering::Relaxed);
    if outcome.is_err() {
        shared.stats.jobs_panicked.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sweeps the worker set, replacing dead threads until shutdown.
fn supervise(shared: &Arc<Shared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(SUPERVISE_EVERY);
        let mut slots = lock_workers(shared);
        for slot in slots.iter_mut() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            if !slot.is_finished() {
                continue;
            }
            // Replace first, then examine the corpse: only a panicked
            // worker counts as a respawn. (A worker that exited cleanly
            // means the queue just closed; its replacement will see the
            // same and exit — shutdown joins it like any other.)
            let gen = shared.stats.worker_respawns.load(Ordering::Relaxed);
            let dead =
                std::mem::replace(slot, spawn_worker(shared, &format!("altxd-worker-r{gen}")));
            if dead.join().is_err() {
                shared.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("queued", &self.queued())
            .field("jobs_panicked", &self.shared.stats.jobs_panicked())
            .field("worker_respawns", &self.shared.stats.worker_respawns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i).expect("receiver alive")))
                .expect("queue has room");
        }
        let mut got: Vec<usize> = (0..16).map(|_| rx.recv().expect("job ran")).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let pool = WorkerPool::new(1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_submit(Box::new(move || {
            block_rx.recv().ok();
        }))
        .expect("admitted");
        // ...then fill the queue.
        let mut sheds = 0;
        for _ in 0..20 {
            if pool.try_submit(Box::new(|| {})) == Err(SubmitError::Overloaded) {
                sheds += 1;
            }
        }
        assert!(sheds >= 18, "only {sheds} sheds");
        block_tx.send(()).expect("worker waiting");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let pool = WorkerPool::new(2, 64);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 50, "admitted jobs must all run");
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let pool = WorkerPool::new(1, 4);
        pool.shutdown();
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn panicking_job_is_contained_and_pool_keeps_serving() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            if i % 2 == 0 {
                pool.try_submit(Box::new(move || panic!("job {i} crashed")))
                    .expect("admitted");
            } else {
                pool.try_submit(Box::new(move || tx.send(i).expect("receiver alive")))
                    .expect("admitted");
            }
        }
        let mut got: Vec<i32> = (0..4)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("survivors ran")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 5, 7]);
        pool.shutdown(); // drain: the crashing jobs have all run by now
        assert_eq!(pool.stats().jobs_panicked(), 4);
        assert_eq!(
            pool.stats().worker_respawns(),
            0,
            "contained panics never cost a worker"
        );
    }

    #[test]
    fn notify_fires_once_after_job_runs() {
        let pool = WorkerPool::new(2, 8);
        let fired = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        {
            let fired = Arc::clone(&fired);
            pool.try_submit_notify(
                Box::new(|| {}),
                Box::new(move || {
                    fired.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).expect("receiver alive");
                }),
            )
            .expect("admitted");
        }
        rx.recv_timeout(Duration::from_secs(5)).expect("notified");
        pool.shutdown();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn notify_fires_when_job_panics() {
        let pool = WorkerPool::new(1, 8);
        let (tx, rx) = mpsc::channel();
        pool.try_submit_notify(
            Box::new(|| panic!("job crashed")),
            Box::new(move || tx.send(()).expect("receiver alive")),
        )
        .expect("admitted");
        rx.recv_timeout(Duration::from_secs(5))
            .expect("a panicking job must still notify");
        pool.shutdown();
        assert_eq!(pool.stats().jobs_panicked(), 1);
    }

    #[test]
    fn refused_submission_never_notifies() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            block_rx.recv().ok();
        }))
        .expect("occupies the worker");
        // Fill the depth-1 queue, then overflow it with a notifier.
        while pool.try_submit(Box::new(|| {})).is_ok() {}
        let fired = Arc::new(AtomicUsize::new(0));
        let refused = {
            let fired = Arc::clone(&fired);
            pool.try_submit_notify(
                Box::new(|| {}),
                Box::new(move || {
                    fired.fetch_add(1, Ordering::SeqCst);
                }),
            )
        };
        assert_eq!(refused, Err(SubmitError::Overloaded));
        assert_eq!(
            fired.load(Ordering::SeqCst),
            0,
            "refusal must not look like a lost job"
        );
        block_tx.send(()).expect("worker waiting");
        pool.shutdown();
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shutdown_after_job_panics_still_drains() {
        let pool = WorkerPool::new(1, 32);
        pool.try_submit(Box::new(|| panic!("early crash")))
            .expect("admitted");
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("admitted");
        }
        pool.shutdown(); // must not panic, must drain everything after the crash
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        assert_eq!(pool.stats().jobs_panicked(), 1);
    }
}
