//! Deadline-aware worker pool: per-group EDF run queues, priority lanes
//! with starvation aging, work stealing, load shedding, panic
//! containment, and a supervisor that respawns dead workers.
//!
//! Connections never execute races themselves: they enqueue a job and
//! wait for its reply. Capacity is bounded across all queues, and
//! `try_submit` refuses — it never blocks — when the pool is full, which
//! is the daemon's overload backstop: a full pool means queueing deeper
//! would only convert overload into latency. Shutdown closes the queues;
//! workers drain every admitted job before exiting, so accepted requests
//! are always answered.
//!
//! Scheduling (all of it off by default — the default configuration is
//! one group, one lane, no stealing, which is byte-for-byte the old FIFO
//! channel):
//!
//! * **EDF order** — each run queue is a binary heap on the job's
//!   *absolute* deadline. A job whose wire deadline was `0` carries no
//!   deadline ([`JobMeta::deadline`] = `None`) and sorts after every
//!   deadlined job: best-effort work runs in the slack. Ties (and the
//!   all-best-effort case) fall back to submission order, so with no
//!   deadlines in play the heap degrades to exactly the old FIFO.
//! * **Priority lanes** — each group holds one heap per lane; a pop
//!   serves the highest-priority non-empty lane. Starvation aging keeps
//!   strict priority from being absolute: once any entry in a lower
//!   lane has waited longer than the aging threshold, that lane is
//!   served next even though a higher lane has work.
//! * **Worker groups + stealing** — workers are pinned round-robin to
//!   groups (one per shard when stealing is on) and pop their own
//!   group's queue first. With stealing enabled, a worker whose group
//!   runs dry takes the victim group's *best* entry — same lane-then-EDF
//!   selection a local pop would make, so a steal never inverts
//!   priority.
//!
//! On the way back, the completion notifier is where the zero-copy
//! reply path starts: the worker thread encodes the winning `Response`
//! once into a shard-local ring slot (`ring.rs`) and the notification
//! that rides the reactor's self-pipe carries that slot *handle* — the
//! reactor writes to the socket straight from it, never re-encoding or
//! copying the reply.
//!
//! Failure story (this is the layer the chaos soak beats on):
//!
//! * every job runs inside `catch_unwind` — a panicking job is counted
//!   ([`PoolStats::jobs_panicked`]) and the worker keeps consuming;
//! * a **supervisor** thread watches for workers that died anyway (a
//!   fault-injected kill at the `pool.worker` site, or a panic that
//!   somehow escaped containment) and respawns them — and it keeps
//!   doing so through shutdown until the queues are empty, so a drain
//!   can never stall on a dead worker set
//!   ([`PoolStats::worker_respawns`]);
//! * `shutdown` recovers poisoned locks instead of propagating them,
//!   and after the workers are joined it sweeps every lane of every
//!   group: a queued-but-never-run job is dropped there, which fires
//!   its completion notifier through the exactly-once "worker lost"
//!   path instead of vanishing silently.

use altx::faults;
use altx::CachePadded;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A completion notifier for [`WorkerPool::try_submit_notify`].
pub type Notify = Box<dyn FnOnce() + Send + 'static>;

/// How long a lower-priority lane may starve before aging promotes it
/// past a busier high-priority lane.
pub const DEFAULT_LANE_AGING: Duration = Duration::from_millis(25);

/// How often a worker draining a *closed* pool re-scans sibling groups.
/// Only the shutdown drain polls: entries can be transiently in flight
/// (popped but not yet subtracted from `queued`) with no future push to
/// ring the doorbell, so the drain path keeps a timeout. The steady
/// state idle path is notify-driven — see [`pop`]'s doorbell protocol.
const STEAL_POLL: Duration = Duration::from_millis(1);

/// Default busy-wait budget before an idle stealing worker parks on its
/// condvar. ~20 µs covers the common "next request is already on the
/// wire" gap without burning a core through a real lull.
pub const DEFAULT_SPIN: Duration = Duration::from_micros(20);

/// Fires its notifier exactly once — when dropped, whether that drop
/// happens after the job returned, while a panic unwinds through it,
/// or because the pool discarded the job unrun.
struct NotifyOnDrop {
    armed: Arc<AtomicBool>,
    notify: Option<Notify>,
}

impl Drop for NotifyOnDrop {
    fn drop(&mut self) {
        if self.armed.load(Ordering::SeqCst) {
            if let Some(f) = self.notify.take() {
                f();
            }
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The run queue is full — shed the request.
    Overloaded,
    /// The pool is shutting down.
    ShuttingDown,
}

/// Scheduling metadata attached to a submission. The default is a
/// best-effort job in the highest lane on group 0 — what every legacy
/// call site gets.
#[derive(Debug, Clone, Copy)]
pub struct JobMeta {
    /// Absolute deadline. `None` means best-effort (wire
    /// `deadline_ms == 0`): the job sorts after every deadlined job and
    /// runs in the slack, in submission order.
    pub deadline: Option<Instant>,
    /// Priority lane, `0` highest. Clamped to the configured lane count.
    pub lane: usize,
    /// Preferred worker group — the submitting shard. Wrapped modulo the
    /// configured group count.
    pub group: usize,
}

impl Default for JobMeta {
    fn default() -> Self {
        JobMeta {
            deadline: None,
            lane: 0,
            group: 0,
        }
    }
}

impl JobMeta {
    /// Meta for a wire request: `deadline_ms == 0` is best-effort, any
    /// other value becomes an absolute deadline from now.
    pub fn for_request(deadline_ms: u32, lane: usize, group: usize) -> Self {
        let deadline = (deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
        JobMeta {
            deadline,
            lane,
            group,
        }
    }
}

/// Pool shape. [`PoolConfig::fifo`] is the default everything-off
/// configuration: one group, one lane, no stealing — the classic
/// bounded FIFO channel.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads.
    pub workers: usize,
    /// Total queued-job capacity across every group and lane.
    pub queue_depth: usize,
    /// Worker groups; workers are pinned round-robin. Clamped to
    /// `[1, workers]`.
    pub groups: usize,
    /// Priority lanes per group (`0` is highest priority). At least 1.
    pub lanes: usize,
    /// Cross-group stealing when a worker's own group runs dry.
    pub steal: bool,
    /// Starvation aging threshold; `Duration::ZERO` disables aging
    /// (pure strict priority).
    pub lane_aging: Duration,
    /// Busy-wait budget before an idle stealing worker parks.
    /// `Duration::ZERO` parks immediately.
    pub spin: Duration,
    /// CPU sets to pin each group's workers to (`pin_cores[group]`);
    /// the supervisor pins to the union. `None` — the default — makes
    /// no affinity syscalls at all.
    pub pin_cores: Option<Vec<Vec<usize>>>,
}

impl PoolConfig {
    /// The legacy shape: one group, one lane, no stealing, no pinning.
    pub fn fifo(workers: usize, queue_depth: usize) -> Self {
        PoolConfig {
            workers,
            queue_depth,
            groups: 1,
            lanes: 1,
            steal: false,
            lane_aging: DEFAULT_LANE_AGING,
            spin: DEFAULT_SPIN,
            pin_cores: None,
        }
    }
}

/// Failure counters the pool maintains; shared with telemetry. Every
/// cell is cache-line padded: `busy` is bumped twice per job by every
/// worker and `steals`/`lane_depth` are bumped from multiple groups, so
/// without padding the counters would ping one shared line between
/// cores on the hottest path in the daemon.
#[derive(Debug, Default)]
pub struct PoolStats {
    jobs_panicked: CachePadded<AtomicU64>,
    worker_respawns: CachePadded<AtomicU64>,
    busy: CachePadded<AtomicU64>,
    steals: CachePadded<AtomicU64>,
    drain_scavenges: CachePadded<AtomicU64>,
    lane_depth: Vec<CachePadded<AtomicU64>>,
}

impl PoolStats {
    fn with_lanes(lanes: usize) -> Self {
        PoolStats {
            lane_depth: (0..lanes)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            ..PoolStats::default()
        }
    }

    /// Jobs whose closure panicked (contained; the worker survived).
    pub fn jobs_panicked(&self) -> u64 {
        self.jobs_panicked.load(Ordering::Relaxed)
    }

    /// Workers found dead by the supervisor and replaced.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Workers executing a job right now — a gauge, not a counter.
    /// Together with the queue depth this is the load figure peers
    /// exchange in heartbeats.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Jobs a dry worker took from a sibling group's queue while the
    /// pool was **open** — cross-group stealing under load. Scavenges
    /// made while draining a closed pool are counted separately
    /// ([`PoolStats::drain_scavenges`]), so this number answers "did
    /// stealing rebalance live traffic?" without shutdown noise.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Jobs taken from a sibling group while draining a *closed* pool
    /// (shutdown scavenging, which ignores the steal flag so orphaned
    /// queues still empty).
    pub fn drain_scavenges(&self) -> u64 {
        self.drain_scavenges.load(Ordering::Relaxed)
    }

    /// Queued jobs per priority lane, summed across groups — a gauge.
    pub fn lane_depths(&self) -> Vec<u64> {
        self.lane_depth
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }
}

/// One queued job: the EDF heap entry. Max-heap semantics — the entry
/// that should run *first* compares greatest: earlier deadline beats
/// later, any deadline beats best-effort, and ties break to the lower
/// submission sequence so equal-deadline (and all-best-effort) work
/// stays FIFO.
struct Entry {
    deadline: Option<Instant>,
    seq: u64,
    enqueued: Instant,
    job: Job,
}

impl Entry {
    fn key_cmp(&self, other: &Entry) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => b.cmp(&a), // earlier deadline → greater
            (Some(_), None) => Greater,      // deadlined beats best-effort
            (None, Some(_)) => Less,
            (None, None) => Equal,
        }
        .then_with(|| other.seq.cmp(&self.seq)) // lower seq → greater (FIFO)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_cmp(other)
    }
}

/// One worker group: a heap per lane behind one lock, the condvar its
/// pinned workers park on, and the group's half of the steal doorbell.
/// Groups are stored `CachePadded` so one group's queue head and
/// `parked` count never share a line with its neighbour's.
struct Group {
    lanes: Mutex<Vec<BinaryHeap<Entry>>>,
    available: Condvar,
    /// Workers of this group currently parked in [`pop`]'s condvar
    /// wait. Pushers elsewhere read it to decide whether a cross-group
    /// doorbell notify is needed; see the protocol notes in [`pop`].
    parked: AtomicUsize,
}

impl Group {
    fn new(lanes: usize) -> Self {
        Group {
            lanes: Mutex::new((0..lanes).map(|_| BinaryHeap::new()).collect()),
            available: Condvar::new(),
            parked: AtomicUsize::new(0),
        }
    }
}

/// State shared between the pool handle, its workers, and the
/// supervisor.
struct Shared {
    groups: Vec<CachePadded<Group>>,
    /// Total queued jobs across every group and lane, bounded by
    /// `capacity`. Reserved before the enqueue so the shed decision is
    /// race-free across groups. Padded: every push and pop in every
    /// group hits it.
    queued: CachePadded<AtomicUsize>,
    capacity: usize,
    steal: bool,
    lane_aging: Duration,
    /// Cross-group work doorbell: bumped by every push while stealing
    /// is on. An idle worker records it before scanning siblings and
    /// refuses to park if it moved — the push/park SeqCst handshake in
    /// [`pop`] makes a lost wakeup impossible.
    steal_epoch: CachePadded<AtomicU64>,
    /// Busy-wait budget before an idle stealing worker parks.
    spin: Duration,
    /// Per-group CPU pin sets; `None` = never touch affinity.
    pin_cores: Option<Vec<Vec<usize>>>,
    seq: AtomicU64,
    closed: AtomicBool,
    workers: Mutex<Vec<WorkerSlot>>,
    stats: Arc<PoolStats>,
    shutting_down: AtomicBool,
}

struct WorkerSlot {
    group: usize,
    handle: JoinHandle<()>,
}

/// A fixed set of worker threads consuming bounded per-group run
/// queues, kept at strength by a supervisor.
pub struct WorkerPool {
    shared: Arc<Shared>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    n_workers: usize,
}

/// How often the supervisor sweeps for dead workers.
const SUPERVISE_EVERY: Duration = Duration::from_millis(5);

impl WorkerPool {
    /// Spawns `workers` threads over a single FIFO-equivalent run queue
    /// of depth `queue_depth`, plus the supervisor. This is the legacy
    /// shape; see [`WorkerPool::with_config`] for groups/lanes/stealing.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        WorkerPool::with_config(PoolConfig::fifo(workers, queue_depth))
    }

    /// Spawns the configured pool: `config.workers` threads pinned
    /// round-robin across `config.groups` groups, each group holding
    /// `config.lanes` EDF heaps.
    pub fn with_config(config: PoolConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let n_groups = config.groups.clamp(1, config.workers);
        let n_lanes = config.lanes.max(1);
        let shared = Arc::new(Shared {
            groups: (0..n_groups)
                .map(|_| CachePadded::new(Group::new(n_lanes)))
                .collect(),
            queued: CachePadded::new(AtomicUsize::new(0)),
            capacity: config.queue_depth,
            steal: config.steal,
            lane_aging: config.lane_aging,
            steal_epoch: CachePadded::new(AtomicU64::new(0)),
            spin: config.spin,
            pin_cores: config.pin_cores,
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            workers: Mutex::new(Vec::with_capacity(config.workers)),
            stats: Arc::new(PoolStats::with_lanes(n_lanes)),
            shutting_down: AtomicBool::new(false),
        });
        {
            let mut slots = lock_workers(&shared);
            for i in 0..config.workers {
                let group = i % n_groups;
                slots.push(WorkerSlot {
                    group,
                    handle: spawn_worker(&shared, group, &format!("altxd-worker-g{group}-{i}")),
                });
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("altxd-supervisor".to_owned())
                .spawn(move || supervise(&shared))
                .expect("spawn supervisor")
        };
        WorkerPool {
            shared,
            supervisor: Mutex::new(Some(supervisor)),
            n_workers: config.workers,
        }
    }

    /// Enqueues a best-effort job without blocking; refuses when full or
    /// closed.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        self.try_submit_at(job, JobMeta::default())
    }

    /// Enqueues a job under `meta`'s deadline/lane/group without
    /// blocking; refuses when full or closed.
    pub fn try_submit_at(&self, job: Job, meta: JobMeta) -> Result<(), SubmitError> {
        push(&self.shared, job, meta).map_err(|(_, e)| e)
    }

    /// Enqueues a best-effort job with a completion notifier; see
    /// [`WorkerPool::try_submit_notify_at`].
    pub fn try_submit_notify(&self, job: Job, notify: Notify) -> Result<(), SubmitError> {
        self.try_submit_notify_at(job, notify, JobMeta::default())
    }

    /// Enqueues a job with a completion notifier under `meta`'s
    /// deadline/lane/group. The pool guarantees `notify` runs **exactly
    /// once** for an admitted job — after the job returns, while its
    /// panic unwinds, or when the pool drops the job unrun (an injected
    /// `Fail` fault, a worker killed mid-queue, or the shutdown sweep of
    /// a queue no worker drained). A refused submission never notifies:
    /// the `Err` return is the caller's signal.
    ///
    /// This is the reactor's bridge out of blocking-channel land: the
    /// notifier posts the finished response to the reactor's completion
    /// queue and tickles its self-pipe, so no thread ever parks in
    /// `recv()` waiting for a race to finish.
    pub fn try_submit_notify_at(
        &self,
        job: Job,
        notify: Notify,
        meta: JobMeta,
    ) -> Result<(), SubmitError> {
        let armed = Arc::new(AtomicBool::new(true));
        let guard = NotifyOnDrop {
            armed: Arc::clone(&armed),
            notify: Some(notify),
        };
        let wrapped: Job = Box::new(move || {
            job();
            drop(guard); // unwind-safe: a panicking job still notifies
        });
        match push(&self.shared, wrapped, meta) {
            Ok(()) => Ok(()),
            Err((wrapped, e)) => {
                // Disarm *before* dropping the refused wrapper, or its
                // guard would report a loss for a job that was never
                // admitted.
                armed.store(false, Ordering::SeqCst);
                drop(wrapped);
                Err(e)
            }
        }
    }

    /// Jobs currently queued (not yet picked up by a worker), across
    /// every group and lane.
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// Workers executing a job right now.
    pub fn busy(&self) -> u64 {
        self.shared.stats.busy()
    }

    /// Worker threads the pool was sized for.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Worker groups the pool was configured with.
    pub fn groups(&self) -> usize {
        self.shared.groups.len()
    }

    /// Priority lanes per group.
    pub fn lanes(&self) -> usize {
        self.shared.stats.lane_depth.len()
    }

    /// The pool's failure counters, shareable with telemetry. The
    /// `Arc` keeps the counters readable after `shutdown`.
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Closes the queues and joins every worker after the jobs already
    /// admitted drain, then joins the supervisor. Idempotent: later
    /// calls find no workers left. Never panics — poisoned locks and
    /// workers that died of a contained-but-escaped panic are both
    /// recovered, so shutdown always drains. Any job still queued after
    /// the workers are gone (every worker of a group lost at once) is
    /// swept here: dropping it unrun fires its notifier through the
    /// exactly-once "worker lost" path, so no admitted request is ever
    /// silently forgotten.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        close(&self.shared);
        // The supervisor keeps respawning through the drain (it exits
        // once the queues are empty), so a dead worker set can never
        // strand queued jobs.
        let supervisor = self
            .supervisor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(s) = supervisor {
            let _ = s.join();
        }
        let slots: Vec<_> = lock_workers(&self.shared).drain(..).collect();
        for w in slots {
            // A worker killed by an injected fault panicked; that must
            // not abort the drain of its siblings.
            let _ = w.handle.join();
        }
        sweep_leftovers(&self.shared);
    }
}

/// Marks the queues closed. Cycling every group lock after the store
/// gives pushers a happens-before edge: once a push observes the lock a
/// closer held, it observes `closed` too.
fn close(shared: &Shared) {
    shared.closed.store(true, Ordering::SeqCst);
    for group in &shared.groups {
        drop(lock_lanes(group));
        group.available.notify_all();
    }
}

/// Drops every job still queued anywhere. Each dropped wrapper fires
/// its `NotifyOnDrop` guard — the "worker lost" completion.
fn sweep_leftovers(shared: &Shared) {
    for group in &shared.groups {
        let mut lanes = lock_lanes(group);
        for (lane_idx, lane) in lanes.iter_mut().enumerate() {
            while let Some(entry) = lane.pop() {
                shared.queued.fetch_sub(1, Ordering::SeqCst);
                if let Some(depth) = shared.stats.lane_depth.get(lane_idx) {
                    depth.fetch_sub(1, Ordering::Relaxed);
                }
                drop(entry.job);
            }
        }
    }
}

fn push(shared: &Shared, job: Job, meta: JobMeta) -> Result<(), (Job, SubmitError)> {
    if shared.closed.load(Ordering::SeqCst) {
        return Err((job, SubmitError::ShuttingDown));
    }
    // Reserve capacity before touching any lock: the bound is global
    // across groups and the shed decision must be race-free.
    let mut cur = shared.queued.load(Ordering::SeqCst);
    loop {
        if cur >= shared.capacity {
            return Err((job, SubmitError::Overloaded));
        }
        match shared
            .queued
            .compare_exchange_weak(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
    let g = meta.group % shared.groups.len();
    let group = &shared.groups[g];
    let lane_idx;
    {
        let mut lanes = lock_lanes(group);
        // Re-check under the lock `close` cycles: after a close no new
        // job may land in a queue the workers might already have left.
        if shared.closed.load(Ordering::SeqCst) {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            return Err((job, SubmitError::ShuttingDown));
        }
        lane_idx = meta.lane.min(lanes.len() - 1);
        lanes[lane_idx].push(Entry {
            deadline: meta.deadline,
            seq: shared.seq.fetch_add(1, Ordering::SeqCst),
            enqueued: Instant::now(),
            job,
        });
    }
    if let Some(depth) = shared.stats.lane_depth.get(lane_idx) {
        depth.fetch_add(1, Ordering::Relaxed);
    }
    group.available.notify_one();
    ring_doorbell(shared, g);
    Ok(())
}

/// The push half of the steal doorbell: after a job lands in group `g`,
/// wake parked workers in sibling groups that could steal it. The
/// `SeqCst` bump-then-read here pairs with the parker's `SeqCst`
/// increment-then-read in [`pop`] (a store-buffer / Dekker handshake):
/// in the single total order either this push's epoch bump precedes the
/// parker's epoch read (the parker sees it and rescans instead of
/// parking) or the parker's `parked` increment precedes this read (we
/// see it and notify). The lock cycle before the notify orders it after
/// the parker's `wait` began, so the signal cannot fire into the gap
/// between "decided to park" and "parked".
///
/// Hot-path cost when nobody is parked: one `fetch_add` plus one padded
/// load per sibling — no locks.
fn ring_doorbell(shared: &Shared, g: usize) {
    let n = shared.groups.len();
    if !shared.steal || n <= 1 {
        return;
    }
    shared.steal_epoch.fetch_add(1, Ordering::SeqCst);
    for i in 1..n {
        let sibling = &shared.groups[(g + i) % n];
        if sibling.parked.load(Ordering::SeqCst) > 0 {
            drop(lock_lanes(sibling));
            sibling.available.notify_one();
        }
    }
}

/// Picks the next entry to run from one group's lanes: the highest
/// priority non-empty lane, unless starvation aging promotes a lower
/// lane that has an entry waiting past the threshold. Within the chosen
/// lane, EDF order (the heap's max = earliest deadline, best-effort
/// last, FIFO among equals).
fn select(
    lanes: &mut [BinaryHeap<Entry>],
    now: Instant,
    aging: Duration,
) -> Option<(usize, Entry)> {
    let strict = lanes.iter().position(|l| !l.is_empty())?;
    let mut pick = strict;
    if !aging.is_zero() {
        for (i, lane) in lanes.iter().enumerate().skip(strict + 1) {
            if lane.iter().any(|e| now.duration_since(e.enqueued) >= aging) {
                pick = i;
                break;
            }
        }
    }
    let entry = lanes[pick].pop()?;
    Some((pick, entry))
}

fn take_accounted(shared: &Shared, picked: (usize, Entry)) -> Entry {
    let (lane_idx, entry) = picked;
    shared.queued.fetch_sub(1, Ordering::SeqCst);
    if let Some(depth) = shared.stats.lane_depth.get(lane_idx) {
        depth.fetch_sub(1, Ordering::Relaxed);
    }
    entry
}

/// Scans sibling groups (round-robin from `g + 1`) for work, applying
/// the same lane-then-EDF selection a local pop would.
fn steal_from(shared: &Shared, g: usize) -> Option<Entry> {
    let n = shared.groups.len();
    for i in 1..n {
        let victim = &shared.groups[(g + i) % n];
        let mut lanes = lock_lanes(victim);
        if let Some(picked) = select(&mut lanes, Instant::now(), shared.lane_aging) {
            drop(lanes);
            return Some(take_accounted(shared, picked));
        }
    }
    None
}

/// Bounded busy-wait for work to appear anywhere in the pool. Returns
/// `true` as soon as `queued` goes nonzero (the caller re-locks and
/// re-scans), `false` when the budget expires without work. Lock-free:
/// the spinner watches the one padded global the push path always
/// bumps.
fn spin_for_work(shared: &Shared) -> bool {
    if shared.spin.is_zero() {
        return false;
    }
    let start = Instant::now();
    loop {
        if shared.queued.load(Ordering::Relaxed) > 0 {
            return true;
        }
        if start.elapsed() >= shared.spin {
            return false;
        }
        std::hint::spin_loop();
    }
}

/// Blocking pop for a worker pinned to group `g`. Returns `None` only
/// when the pool is closed and every queue it can reach is drained.
/// While draining a closed pool, workers steal across groups regardless
/// of the steal flag, so a group whose own workers died still empties.
///
/// The idle path is **spin-then-park**, notify-driven in steady state:
///
/// 1. note the doorbell epoch (under the group lock), scan the sibling
///    groups for a steal;
/// 2. on a dry scan, busy-wait up to the configured spin budget on the
///    global queue count — a job that arrives within the budget is
///    picked up without a syscall;
/// 3. park on the group condvar with `parked` incremented **under the
///    lock** and only if the epoch has not moved since step 1. The
///    pusher's bump-then-read ([`ring_doorbell`]) against this
///    increment-then-read means a push that lands mid-scan either
///    flips the epoch (we rescan) or sees us parked (it notifies) —
///    there is no interleaving that strands a job behind a parked
///    worker, so the park needs no timeout.
///
/// Only the *closed-pool drain* still polls ([`STEAL_POLL`]): with no
/// future pushes to ring the doorbell, `queued > 0` can be transiently
/// stale while the last entries are mid-pop, and a timeout is the
/// simple way to re-check without a shutdown-only signalling scheme.
fn pop(shared: &Shared, g: usize) -> Option<Job> {
    let group = &shared.groups[g];
    let mut guard = lock_lanes(group);
    loop {
        if let Some(picked) = select(&mut guard, Instant::now(), shared.lane_aging) {
            drop(guard);
            return Some(take_accounted(shared, picked).job);
        }
        let closed = shared.closed.load(Ordering::SeqCst);
        let scavenge = (shared.steal || closed) && shared.groups.len() > 1;
        if !scavenge {
            if closed {
                return None; // single reachable queue, empty: drained
            }
            guard = group
                .available
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        // Doorbell epoch *before* leaving the lock: any push from here
        // on either post-dates this read (and will see us parked) or
        // moves the epoch (and we will refuse to park).
        let epoch = shared.steal_epoch.load(Ordering::SeqCst);
        drop(guard);
        if let Some(entry) = steal_from(shared, g) {
            // Classify by the *latest* close state: a close() that
            // raced in mid-scan makes this a drain scavenge, not a
            // load-balancing steal.
            if shared.closed.load(Ordering::SeqCst) {
                shared.stats.drain_scavenges.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(entry.job);
        }
        if closed {
            if shared.queued.load(Ordering::SeqCst) == 0 {
                return None;
            }
            guard = lock_lanes(group);
            let (g2, _) = group
                .available
                .wait_timeout(guard, STEAL_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g2;
            continue;
        }
        if spin_for_work(shared) {
            guard = lock_lanes(group);
            continue;
        }
        guard = lock_lanes(group);
        if shared.closed.load(Ordering::SeqCst) {
            continue; // close() raced the spin; take the drain path
        }
        group.parked.fetch_add(1, Ordering::SeqCst);
        if shared.steal_epoch.load(Ordering::SeqCst) != epoch {
            // A push landed somewhere since the scan — rescan, don't
            // park on a doorbell that already rang.
            group.parked.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        guard = group
            .available
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner);
        group.parked.fetch_sub(1, Ordering::SeqCst);
    }
}

fn lock_lanes(group: &Group) -> MutexGuard<'_, Vec<BinaryHeap<Entry>>> {
    group.lanes.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_workers(shared: &Shared) -> MutexGuard<'_, Vec<WorkerSlot>> {
    shared
        .workers
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn spawn_worker(shared: &Arc<Shared>, group: usize, name: &str) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(move || worker_loop(&shared, group))
        .expect("spawn worker")
}

fn worker_loop(shared: &Shared, group: usize) {
    // Pin before consuming anything: the jobs this worker runs (and the
    // memory they first-touch) should land on the group's cores from
    // the very first pop. Best-effort — a refusal logs and the worker
    // runs unpinned.
    if let Some(sets) = &shared.pin_cores {
        if let Some(cpus) = sets.get(group) {
            crate::pin::pin_current_thread(&format!("worker-g{group}"), cpus);
        }
    }
    loop {
        // Fault site `pool.worker`: an injected panic here is *not*
        // contained — it kills this thread, which is the supervisor's
        // cue. Sits before the pop so no admitted job is lost with the
        // worker.
        if faults::enabled() {
            let _ = faults::inject("pool.worker", None);
        }
        match pop(shared, group) {
            Some(job) => run_job(job, shared),
            None => break, // closed and drained
        }
    }
}

fn run_job(job: Job, shared: &Shared) {
    shared.stats.busy.fetch_add(1, Ordering::Relaxed);
    // Fault site `pool.job` sits inside the contained region: an
    // injected panic is indistinguishable from the job itself crashing,
    // and `Fail` drops the job unrun (the submitter's reply channel
    // closes, which the server answers rather than awaits forever).
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if faults::enabled() && faults::inject("pool.job", None) == faults::Verdict::Fail {
            return;
        }
        job();
    }));
    // The gauge decrement sits outside the contained region, so a
    // panicking job never leaves a phantom busy worker behind.
    shared.stats.busy.fetch_sub(1, Ordering::Relaxed);
    if outcome.is_err() {
        shared.stats.jobs_panicked.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sweeps the worker set, replacing dead threads. Keeps sweeping
/// through shutdown until the queues are empty: a drain must never
/// stall because the last worker of a group died.
fn supervise(shared: &Arc<Shared>) {
    // The supervisor is cold; pin it to the union of the pool's cores
    // so it never preempts a foreign shard's hot thread.
    if let Some(sets) = &shared.pin_cores {
        let mut union: Vec<usize> = sets.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        if !union.is_empty() {
            crate::pin::pin_current_thread("supervisor", &union);
        }
    }
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) && shared.queued.load(Ordering::SeqCst) == 0
        {
            break;
        }
        std::thread::sleep(SUPERVISE_EVERY);
        let mut slots = lock_workers(shared);
        for slot in slots.iter_mut() {
            if shared.shutting_down.load(Ordering::SeqCst)
                && shared.queued.load(Ordering::SeqCst) == 0
            {
                break;
            }
            if !slot.handle.is_finished() {
                continue;
            }
            // Replace first, then examine the corpse: only a panicked
            // worker counts as a respawn. (A worker that exited cleanly
            // means the queue just closed and drained; its replacement
            // will see the same and exit — shutdown joins it like any
            // other.)
            let gen = shared.stats.worker_respawns.load(Ordering::Relaxed);
            let group = slot.group;
            let fresh = spawn_worker(shared, group, &format!("altxd-worker-r{gen}"));
            let dead = std::mem::replace(
                slot,
                WorkerSlot {
                    group,
                    handle: fresh,
                },
            );
            if dead.handle.join().is_err() {
                shared.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("queued", &self.queued())
            .field("groups", &self.groups())
            .field("lanes", &self.lanes())
            .field("jobs_panicked", &self.shared.stats.jobs_panicked())
            .field("worker_respawns", &self.shared.stats.worker_respawns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || tx.send(i).expect("receiver alive")))
                .expect("queue has room");
        }
        let mut got: Vec<usize> = (0..16).map(|_| rx.recv().expect("job ran")).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let pool = WorkerPool::new(1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.try_submit(Box::new(move || {
            block_rx.recv().ok();
        }))
        .expect("admitted");
        // ...then fill the queue.
        let mut sheds = 0;
        for _ in 0..20 {
            if pool.try_submit(Box::new(|| {})) == Err(SubmitError::Overloaded) {
                sheds += 1;
            }
        }
        assert!(sheds >= 18, "only {sheds} sheds");
        block_tx.send(()).expect("worker waiting");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs() {
        let pool = WorkerPool::new(2, 64);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 50, "admitted jobs must all run");
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let pool = WorkerPool::new(1, 4);
        pool.shutdown();
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn panicking_job_is_contained_and_pool_keeps_serving() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            if i % 2 == 0 {
                pool.try_submit(Box::new(move || panic!("job {i} crashed")))
                    .expect("admitted");
            } else {
                pool.try_submit(Box::new(move || tx.send(i).expect("receiver alive")))
                    .expect("admitted");
            }
        }
        let mut got: Vec<i32> = (0..4)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("survivors ran")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 5, 7]);
        pool.shutdown(); // drain: the crashing jobs have all run by now
        assert_eq!(pool.stats().jobs_panicked(), 4);
        assert_eq!(
            pool.stats().worker_respawns(),
            0,
            "contained panics never cost a worker"
        );
    }

    #[test]
    fn notify_fires_once_after_job_runs() {
        let pool = WorkerPool::new(2, 8);
        let fired = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        {
            let fired = Arc::clone(&fired);
            pool.try_submit_notify(
                Box::new(|| {}),
                Box::new(move || {
                    fired.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).expect("receiver alive");
                }),
            )
            .expect("admitted");
        }
        rx.recv_timeout(Duration::from_secs(5)).expect("notified");
        pool.shutdown();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn notify_fires_when_job_panics() {
        let pool = WorkerPool::new(1, 8);
        let (tx, rx) = mpsc::channel();
        pool.try_submit_notify(
            Box::new(|| panic!("job crashed")),
            Box::new(move || tx.send(()).expect("receiver alive")),
        )
        .expect("admitted");
        rx.recv_timeout(Duration::from_secs(5))
            .expect("a panicking job must still notify");
        pool.shutdown();
        assert_eq!(pool.stats().jobs_panicked(), 1);
    }

    #[test]
    fn refused_submission_never_notifies() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            block_rx.recv().ok();
        }))
        .expect("occupies the worker");
        // Fill the depth-1 queue, then overflow it with a notifier.
        while pool.try_submit(Box::new(|| {})).is_ok() {}
        let fired = Arc::new(AtomicUsize::new(0));
        let refused = {
            let fired = Arc::clone(&fired);
            pool.try_submit_notify(
                Box::new(|| {}),
                Box::new(move || {
                    fired.fetch_add(1, Ordering::SeqCst);
                }),
            )
        };
        assert_eq!(refused, Err(SubmitError::Overloaded));
        assert_eq!(
            fired.load(Ordering::SeqCst),
            0,
            "refusal must not look like a lost job"
        );
        block_tx.send(()).expect("worker waiting");
        pool.shutdown();
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shutdown_after_job_panics_still_drains() {
        let pool = WorkerPool::new(1, 32);
        pool.try_submit(Box::new(|| panic!("early crash")))
            .expect("admitted");
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("admitted");
        }
        pool.shutdown(); // must not panic, must drain everything after the crash
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        assert_eq!(pool.stats().jobs_panicked(), 1);
    }

    #[test]
    fn entry_order_is_edf_then_fifo_with_best_effort_last() {
        let now = Instant::now();
        let mk = |deadline: Option<u64>, seq: u64| Entry {
            deadline: deadline.map(|ms| now + Duration::from_millis(ms)),
            seq,
            enqueued: now,
            job: Box::new(|| {}),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(None, 0)); // best-effort, submitted first
        heap.push(mk(Some(50), 1));
        heap.push(mk(Some(10), 2));
        heap.push(mk(Some(50), 3));
        heap.push(mk(None, 4));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.seq)).collect();
        assert_eq!(
            order,
            vec![2, 1, 3, 0, 4],
            "earliest deadline first, FIFO ties, best-effort last in FIFO order"
        );
    }

    #[test]
    fn lane_depths_track_queued_work() {
        let pool = WorkerPool::with_config(PoolConfig {
            lanes: 2,
            ..PoolConfig::fifo(1, 16)
        });
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            block_rx.recv().ok();
        }))
        .expect("occupies the worker");
        // Give the worker a moment to take the blocker off the queue.
        while pool.busy() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for lane in [0usize, 1, 1] {
            pool.try_submit_at(
                Box::new(|| {}),
                JobMeta {
                    lane,
                    ..JobMeta::default()
                },
            )
            .expect("admitted");
        }
        assert_eq!(pool.stats().lane_depths(), vec![1, 2]);
        block_tx.send(()).expect("worker waiting");
        pool.shutdown();
        assert_eq!(pool.stats().lane_depths(), vec![0, 0]);
    }
}
