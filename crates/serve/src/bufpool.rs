//! A recycled-buffer free list for the reactor's frame path.
//!
//! Every request used to cost two fresh heap allocations on the hot
//! path: `FrameDecoder::next_frame` copied the body into a brand-new
//! `Vec`, and `Response::encode` built the reply in another. At tens of
//! thousands of requests per second that is pure allocator churn — the
//! buffers are all the same handful of sizes and die microseconds after
//! they are born. The [`BufPool`] keeps them alive instead: a shard-local
//! free list of `Vec<u8>`s that decode bodies are drawn from and
//! returned to, so a steady-state request is served entirely from
//! recycled memory (the paper's lazy-copy discipline — §3.2 copies a
//! page only when someone writes it — applied to the serving layer's
//! byte buffers: never allocate what you can reuse). Since the ring
//! data plane (`ring.rs`) landed, replies normally live in fixed ring
//! slots instead; the pool is the reply path's **spill sink** — an
//! oversize or ring-exhausted reply encodes into a pooled buffer and
//! recycles here after the socket write (the retain cap below keeps a
//! one-off giant spill from pinning memory).
//!
//! The pool is deliberately **not** thread-safe: each reactor shard owns
//! one and threads it through its connections by `&mut`, so a get/put is
//! a `Vec::pop`/`push` with zero synchronization. Only the *counters*
//! are shared (relaxed atomics), because telemetry renders a global view
//! from whichever shard handles the STATS request.
//!
//! Hygiene rules, enforced here and property-tested in
//! `tests/bufpool.rs`:
//!
//! * a buffer handed out by [`BufPool::get`] is always **empty**
//!   (`len == 0`) — one request's bytes can never leak into another
//!   request or another connection through a recycled buffer;
//! * the free list never holds more than the configured high-water
//!   number of buffers, and never retains a buffer whose capacity
//!   exceeds [`MAX_RETAIN_CAPACITY`] — a one-off huge STATS reply must
//!   not pin its allocation forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Largest buffer capacity the free list will retain. Anything bigger
/// (an outsized text reply) is dropped on `put` so the pool's resident
/// memory stays bounded by `max_held × MAX_RETAIN_CAPACITY`.
pub const MAX_RETAIN_CAPACITY: usize = 64 * 1024;

/// Default high-water mark: how many buffers one pool may hold. Sized
/// for a busy shard (pipelined bursts park one encoded reply per
/// in-flight request) without hoarding memory on an idle one.
pub const DEFAULT_MAX_HELD: usize = 64;

/// Shared hit/miss counters for one pool, rendered by telemetry.
#[derive(Debug, Default)]
pub struct BufPoolStats {
    recycled: AtomicU64,
    misses: AtomicU64,
}

impl BufPoolStats {
    /// Gets served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Gets that had to allocate because the free list was empty.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// See the module docs. One per reactor shard, threaded by `&mut`.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    max_held: usize,
    stats: Arc<BufPoolStats>,
}

impl BufPool {
    /// An empty pool that will hold at most `max_held` free buffers.
    pub fn new(max_held: usize) -> Self {
        BufPool {
            free: Vec::with_capacity(max_held.min(64)),
            max_held,
            stats: Arc::new(BufPoolStats::default()),
        }
    }

    /// The pool's shared counters (telemetry holds the same `Arc`).
    pub fn stats(&self) -> Arc<BufPoolStats> {
        Arc::clone(&self.stats)
    }

    /// Takes a buffer. Always empty; capacity is whatever the recycled
    /// buffer grew to, or zero for a fresh one (the first writes size it).
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "pooled buffers are stored cleared");
                self.stats.recycled.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the free list. The buffer is cleared *here*,
    /// at the moment it leaves request scope — not lazily at the next
    /// `get` — so no stale request bytes sit readable in the pool.
    /// Buffers over the retain cap, or arriving when the pool is full,
    /// are simply dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() >= self.max_held || buf.capacity() > MAX_RETAIN_CAPACITY {
            return;
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently sitting in the free list.
    pub fn held(&self) -> usize {
        self.free.len()
    }

    /// Pre-populates the free list with [`WARM_BUFFERS`] buffers of
    /// [`WARM_CAPACITY`] bytes, written once so their pages are
    /// resident — on the NUMA node of the calling core. A pinned shard
    /// calls this from its reactor thread right after pinning, so the
    /// spill path's steady-state buffers are node-local instead of
    /// landing wherever the first cold miss happens to run. Touches no
    /// counters: warming is provisioning, not traffic.
    pub fn warm(&mut self) {
        while self.free.len() < WARM_BUFFERS.min(self.max_held) {
            let mut buf = vec![0u8; WARM_CAPACITY];
            buf.clear();
            self.free.push(buf);
        }
    }
}

/// Buffers [`BufPool::warm`] pre-touches per pool.
pub const WARM_BUFFERS: usize = 16;

/// Capacity of each warmed buffer: covers typical decode bodies and
/// spill replies without approaching [`MAX_RETAIN_CAPACITY`].
pub const WARM_CAPACITY: usize = 4 * 1024;

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_HELD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_from_empty_pool_allocates_and_counts_a_miss() {
        let mut pool = BufPool::new(4);
        let buf = pool.get();
        assert!(buf.is_empty());
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().recycled(), 0);
    }

    #[test]
    fn round_trip_recycles_and_returns_an_empty_buffer() {
        let mut pool = BufPool::new(4);
        let mut buf = pool.get();
        buf.extend_from_slice(b"sensitive request bytes");
        let cap = buf.capacity();
        pool.put(buf);
        let again = pool.get();
        assert!(again.is_empty(), "recycled buffers must come back cleared");
        assert_eq!(again.capacity(), cap, "capacity is what gets recycled");
        assert_eq!(pool.stats().recycled(), 1);
    }

    #[test]
    fn high_water_cap_is_respected() {
        let mut pool = BufPool::new(2);
        for _ in 0..5 {
            pool.put(vec![0u8; 16]);
        }
        assert_eq!(pool.held(), 2, "puts beyond the cap are dropped");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let mut pool = BufPool::new(8);
        pool.put(Vec::with_capacity(MAX_RETAIN_CAPACITY + 1));
        assert_eq!(pool.held(), 0);
        pool.put(Vec::with_capacity(MAX_RETAIN_CAPACITY));
        assert_eq!(pool.held(), 1);
    }

    #[test]
    fn warm_provisions_cleared_buffers_without_counting_traffic() {
        let mut pool = BufPool::new(8);
        pool.warm();
        assert_eq!(pool.held(), 8, "warm fills to min(WARM_BUFFERS, cap)");
        assert_eq!(pool.stats().misses(), 0, "warming is not traffic");
        assert_eq!(pool.stats().recycled(), 0);
        let buf = pool.get();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= WARM_CAPACITY);
        assert_eq!(pool.stats().recycled(), 1, "warmed buffers serve as hits");
    }

    #[test]
    fn steady_state_hits_after_warmup() {
        let mut pool = BufPool::new(8);
        for _ in 0..100 {
            let mut a = pool.get();
            a.extend_from_slice(&[1, 2, 3]);
            let mut b = pool.get();
            b.extend_from_slice(&[4, 5]);
            pool.put(a);
            pool.put(b);
        }
        let s = pool.stats();
        assert_eq!(s.misses(), 2, "only the cold start allocates");
        assert_eq!(s.recycled(), 198);
    }
}
