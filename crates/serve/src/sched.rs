//! The race scheduler: Scheme A statistics driving hedged launch plans.
//!
//! The paper's §4.2 Scheme A selects alternatives by statistical data;
//! Scheme C races everything. The serving layer's [`HedgePolicy`] blends
//! the two: once a workload has enough history, the historical favourite
//! launches at t=0 and every other alternative is *hedged* — held back by
//! a [`LaunchPlan`] offset derived from the favourite's observed p95
//! latency. If the favourite answers within its usual envelope the
//! siblings are suppressed (their bodies never run); if it straggles or
//! fails, the hedges fire and the race proceeds exactly as before.
//! Suppression changes cost, never which value is selected: the engine's
//! winner selection, sibling elimination, and panic containment are
//! untouched.
//!
//! A mandatory exploration floor keeps the statistics live: every
//! `explore_every`-th request per workload races launch-all regardless of
//! history, so a regime change (the favourite going slow) is observed and
//! the policy adapts.
//!
//! [`CatalogStats`] is the shared, interned statistics store: one
//! [`AltStatsTable`] per catalog workload, indexed `(workload index,
//! alternative index)` — no string keys or locks on the record path.
//! Telemetry renders win tallies from the same store the policy reads.

use crate::workload::{self, WorkloadSpec};
use altx::engine::LaunchPlan;
use altx::stats::AltStatsTable;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for the hedging policy. Defaults keep hedging *off*: every race
/// is launch-all, byte-for-byte the pre-scheduler behaviour.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Master switch; when false every plan is immediate.
    pub enabled: bool,
    /// Wins a workload must accumulate before its favourite is trusted.
    pub min_samples: u64,
    /// Every n-th request races launch-all (the exploration floor).
    /// Clamped to at least 2 — exploration can never be disabled.
    pub explore_every: u64,
    /// Lower clamp on the hedge delay (guards against a p95 so small the
    /// hedges would effectively launch immediately anyway).
    pub min_delay: Duration,
    /// Upper clamp on the hedge delay (bounds worst-case added latency
    /// when the favourite fails outright).
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: false,
            min_samples: 20,
            explore_every: 8,
            min_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Per-workload interned statistics for the whole catalog.
#[derive(Debug)]
pub struct CatalogStats {
    tables: Vec<AltStatsTable>,
    /// Per-workload *race service time* — wall time from launch to any
    /// outcome (win, deadline blown, error), recorded as a single-slot
    /// [`AltStatsTable`] so admission reads the same power-of-two
    /// quantile machinery the hedge policy does. Unlike the win tables
    /// this sees timeouts, which is exactly what makes an infeasible
    /// workload provably infeasible.
    service: Vec<AltStatsTable>,
}

impl CatalogStats {
    /// One pre-sized table per catalog workload.
    pub fn new() -> Self {
        CatalogStats {
            tables: workload::CATALOG
                .iter()
                .map(|w| AltStatsTable::with_len(w.alternatives()))
                .collect(),
            service: workload::CATALOG
                .iter()
                .map(|_| AltStatsTable::with_len(1))
                .collect(),
        }
    }

    /// The statistics table for catalog workload `widx`.
    pub fn table(&self, widx: usize) -> Option<&AltStatsTable> {
        self.tables.get(widx)
    }

    /// Records one race's end-to-end service time, whatever its outcome.
    pub fn record_service(&self, widx: usize, latency_us: u64) {
        if let Some(t) = self.service.get(widx) {
            t.record_win(0, latency_us);
        }
    }

    /// Service-time samples recorded for workload `widx`.
    pub fn service_samples(&self, widx: usize) -> u64 {
        self.service.get(widx).map_or(0, |t| t.wins(0))
    }

    /// A service-time quantile for workload `widx` (bucket upper bound).
    pub fn service_quantile_us(&self, widx: usize, q: f64) -> Option<u64> {
        self.service.get(widx).and_then(|t| t.quantile_us(0, q))
    }

    /// EWMA of the service time for workload `widx`.
    pub fn service_mean_us(&self, widx: usize) -> Option<f64> {
        self.service.get(widx).and_then(|t| t.ewma_us(0))
    }

    /// Win tallies as `(workload, alternative) → wins`, for telemetry
    /// snapshots and STATS/Prometheus rendering. Only alternatives with
    /// at least one win appear (matching the old lazy-map behaviour).
    pub fn wins_map(&self) -> BTreeMap<(String, String), u64> {
        let mut map = BTreeMap::new();
        for (widx, w) in workload::CATALOG.iter().enumerate() {
            let table = &self.tables[widx];
            for (aidx, alt) in w.alt_names.iter().enumerate() {
                let wins = table.wins(aidx);
                if wins > 0 {
                    map.insert((w.name.to_string(), alt.to_string()), wins);
                }
            }
        }
        map
    }
}

impl Default for CatalogStats {
    fn default() -> Self {
        CatalogStats::new()
    }
}

/// What one race's plan meant, for counter accounting after it resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKind {
    /// Number of alternatives held back by the plan.
    pub hedged: usize,
}

/// The per-workload hedging policy. See module docs.
#[derive(Debug)]
pub struct HedgePolicy {
    config: HedgeConfig,
    catalog: Arc<CatalogStats>,
    /// Per-workload request tick, driving the exploration floor.
    ticks: Vec<AtomicU64>,
}

impl HedgePolicy {
    /// A policy over a fresh statistics store.
    pub fn new(config: HedgeConfig) -> Self {
        HedgePolicy::with_catalog(config, Arc::new(CatalogStats::new()))
    }

    /// A policy sharing an existing statistics store (telemetry holds the
    /// same `Arc` to render win tallies).
    pub fn with_catalog(config: HedgeConfig, catalog: Arc<CatalogStats>) -> Self {
        let ticks = (0..workload::CATALOG.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        HedgePolicy {
            config,
            catalog,
            ticks,
        }
    }

    /// The shared statistics store.
    pub fn catalog(&self) -> &Arc<CatalogStats> {
        &self.catalog
    }

    /// The policy's configuration.
    pub fn config(&self) -> &HedgeConfig {
        &self.config
    }

    /// Builds the launch plan for one request of catalog workload `widx`
    /// with `n_alts` alternatives. Immediate (launch-all) when hedging is
    /// disabled, history is thin, this is an exploration tick, or there
    /// is no favourite yet.
    pub fn plan(&self, widx: usize, n_alts: usize) -> LaunchPlan {
        self.plan_pruned(widx, n_alts).0
    }

    /// Like [`HedgePolicy::plan`], but additionally says which
    /// alternatives are not worth *constructing*: on a hedged tick, an
    /// alternative whose win rate is near zero over a warm history gets
    /// `true` in the returned mask, and the workload builder substitutes
    /// an instantly-failing stub for its body — don't build what you
    /// won't launch. The stub keeps the alternative's index, name, and
    /// hedge offset, so winner accounting is untouched and the engine's
    /// existing suppression counting applies: when the favourite answers
    /// inside its envelope the stub never launches and is counted
    /// through `launches_suppressed` exactly like any other unlaunched
    /// hedge. Exploration ticks always return `None` — every body is
    /// built and raced, so a pruned alternative that comes back to life
    /// is still observed and its win rate recovers.
    pub fn plan_pruned(&self, widx: usize, n_alts: usize) -> (LaunchPlan, Option<Vec<bool>>) {
        if !self.config.enabled || n_alts <= 1 {
            return (LaunchPlan::immediate(n_alts), None);
        }
        let Some(table) = self.catalog.table(widx) else {
            return (LaunchPlan::immediate(n_alts), None);
        };
        // The exploration floor fires on tick 0 too, so a cold workload's
        // first request is always a full race.
        let tick = self.ticks[widx].fetch_add(1, Ordering::Relaxed);
        let explore_every = self.config.explore_every.max(2);
        if tick % explore_every == 0 {
            return (LaunchPlan::immediate(n_alts), None);
        }
        let total_wins = table.total_wins();
        if total_wins < self.config.min_samples {
            return (LaunchPlan::immediate(n_alts), None);
        }
        let Some(fav) = table.favourite() else {
            return (LaunchPlan::immediate(n_alts), None);
        };
        let p95 = table.quantile_us(fav, 0.95).unwrap_or(0);
        let delay = Duration::from_micros(p95).clamp(self.config.min_delay, self.config.max_delay);
        let offsets = (0..n_alts)
            .map(|i| if i == fav { Duration::ZERO } else { delay })
            .collect();
        // Near-zero win rate: under 2% of a history already deep enough
        // to trust (`min_samples` wins). The favourite is never pruned.
        let mask: Vec<bool> = (0..n_alts)
            .map(|i| i != fav && table.wins(i).saturating_mul(50) < total_wins)
            .collect();
        let prune = mask.iter().any(|&p| p).then_some(mask);
        (LaunchPlan::from_offsets(offsets), prune)
    }

    /// Records a race outcome: the winner's latency feeds the EWMA,
    /// histogram, and win count the next plan reads.
    pub fn record_win(&self, widx: usize, alt_idx: usize, latency_us: u64) {
        if let Some(table) = self.catalog.table(widx) {
            table.record_win(alt_idx, latency_us);
        }
    }

    /// Records one race's end-to-end service time — every outcome, not
    /// just wins — feeding the admission gate's feasibility estimate.
    pub fn record_service(&self, widx: usize, latency_us: u64) {
        self.catalog.record_service(widx, latency_us);
    }
}

/// Feasibility-based admission: shed a deadlined request on arrival
/// when its deadline is provably unmeetable, instead of queueing doomed
/// work that burns a worker just to time out.
///
/// The estimate is deliberately simple and deterministic (the same
/// inputs always produce the same verdict, which is what the test suite
/// pins):
///
/// ```text
/// wait_us  = queued × mean_service_us / workers
/// admit    ⇔ wait_us + p99_service_us ≤ deadline_ms × 1000
/// ```
///
/// where `p99_service_us` and `mean_service_us` come from the
/// workload's service-time [`AltStatsTable`] in [`CatalogStats`] —
/// which records timeouts and errors as well as wins, so a workload
/// that *never* meets its deadline converges on p99 ≈ deadline and any
/// queue wait at all tips the verdict to shed. A cold workload (fewer
/// than `min_samples` samples) is always admitted: infeasibility must
/// be proven, never presumed. Best-effort requests (`deadline_ms == 0`)
/// bypass the gate entirely — no deadline, nothing to be infeasible
/// against.
#[derive(Debug)]
pub struct Admission {
    enabled: bool,
    min_samples: u64,
    catalog: Arc<CatalogStats>,
}

/// Service-time samples a workload needs before the gate will shed it.
pub const ADMISSION_MIN_SAMPLES: u64 = 16;

impl Admission {
    /// A gate over the shared statistics store. Disabled gates admit
    /// everything.
    pub fn new(enabled: bool, catalog: Arc<CatalogStats>) -> Self {
        Admission {
            enabled,
            min_samples: ADMISSION_MIN_SAMPLES,
            catalog,
        }
    }

    /// Whether the gate is switched on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Verdict for one arriving request: `true` admits. `queued` and
    /// `workers` are the pool's current backlog and size — passed in
    /// rather than read here so the decision is a pure function its
    /// tests can pin.
    pub fn admit(&self, widx: usize, deadline_ms: u32, queued: usize, workers: usize) -> bool {
        if !self.enabled || deadline_ms == 0 {
            return true;
        }
        if self.catalog.service_samples(widx) < self.min_samples {
            return true;
        }
        let Some(p99) = self.catalog.service_quantile_us(widx, 0.99) else {
            return true;
        };
        let mean = self.catalog.service_mean_us(widx).unwrap_or(p99 as f64);
        let wait_us = queued as f64 * mean / workers.max(1) as f64;
        wait_us + p99 as f64 <= f64::from(deadline_ms) * 1000.0
    }
}

/// Config-declared priority lanes: an ordered partition of the workload
/// catalog. Lane 0 is the highest priority; workloads the spec does not
/// mention fall into a trailing catch-all lane. The default
/// ([`Lanes::single`]) is one lane holding everything — scheduling-wise
/// indistinguishable from no lanes at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lanes {
    names: Vec<String>,
    by_widx: Vec<usize>,
}

impl Lanes {
    /// One lane, every workload: the defaults-off shape.
    pub fn single() -> Self {
        Lanes {
            names: vec!["all".to_owned()],
            by_widx: vec![0; workload::CATALOG.len()],
        }
    }

    /// Parses a lane spec of the form
    /// `name:workload[,workload…][;name:workload…]`, priority in
    /// declaration order. Example: `rt:trivial,bimodal;batch:sleep`.
    /// Unknown workloads and double assignments are errors; catalog
    /// workloads left unmentioned land in an appended `default` lane at
    /// the lowest priority. An empty spec yields [`Lanes::single`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.trim().is_empty() {
            return Ok(Lanes::single());
        }
        let mut names = Vec::new();
        let mut by_widx: Vec<Option<usize>> = vec![None; workload::CATALOG.len()];
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, members) = part
                .split_once(':')
                .ok_or_else(|| format!("lane `{part}` missing `name:workloads`"))?;
            let name = name.trim();
            if name.is_empty() || names.iter().any(|n| n == name) {
                return Err(format!("bad or duplicate lane name in `{part}`"));
            }
            let lane = names.len();
            names.push(name.to_owned());
            for wl in members.split(',') {
                let wl = wl.trim();
                let widx = workload::index_of(wl)
                    .ok_or_else(|| format!("lane `{name}`: unknown workload `{wl}`"))?;
                if by_widx[widx].is_some() {
                    return Err(format!("workload `{wl}` assigned to two lanes"));
                }
                by_widx[widx] = Some(lane);
            }
        }
        if names.is_empty() {
            return Ok(Lanes::single());
        }
        if by_widx.iter().any(Option::is_none) {
            names.push("default".to_owned());
        }
        let catch_all = names.len() - 1;
        Ok(Lanes {
            by_widx: by_widx
                .into_iter()
                .map(|l| l.unwrap_or(catch_all))
                .collect(),
            names,
        })
    }

    /// The lane for catalog workload `widx`.
    pub fn lane_of(&self, widx: usize) -> usize {
        self.by_widx.get(widx).copied().unwrap_or(0)
    }

    /// Number of lanes.
    pub fn count(&self) -> usize {
        self.names.len()
    }

    /// Lane names, priority order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

impl Default for Lanes {
    fn default() -> Self {
        Lanes::single()
    }
}

/// Renders the catalog — with what the scheduler has learned — as the
/// CATALOG control frame's text body.
pub fn render_catalog(policy: &HedgePolicy) -> String {
    let mut out = String::from("altxd workload catalog\n");
    for (widx, w) in workload::CATALOG.iter().enumerate() {
        render_entry(&mut out, w, widx, policy);
    }
    out
}

fn render_entry(out: &mut String, w: &WorkloadSpec, widx: usize, policy: &HedgePolicy) {
    use std::fmt::Write;
    let _ = writeln!(out, "  {}  — {}", w.name, w.description);
    let table = policy.catalog().table(widx);
    let favourite = table.and_then(|t| t.favourite());
    let total_wins = table.map_or(0, |t| t.total_wins());
    for (aidx, alt) in w.alt_names.iter().enumerate() {
        let wins = table.map_or(0, |t| t.wins(aidx));
        let marker = if favourite == Some(aidx) {
            "  <- favourite"
        } else {
            ""
        };
        let rate = if total_wins > 0 {
            format!(
                " ({:.1}% of {} wins)",
                100.0 * wins as f64 / total_wins as f64,
                total_wins
            )
        } else {
            String::new()
        };
        let _ = writeln!(out, "    alt {aidx} {alt}  wins {wins}{rate}{marker}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hedging_on() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            min_samples: 4,
            explore_every: 4,
            ..HedgeConfig::default()
        }
    }

    fn lognormal_idx() -> usize {
        workload::index_of("lognormal").expect("catalog has lognormal")
    }

    #[test]
    fn disabled_policy_always_launches_all() {
        let policy = HedgePolicy::new(HedgeConfig::default());
        let widx = lognormal_idx();
        for alt in 0..3 {
            policy.record_win(widx, alt, 1_000);
        }
        for _ in 0..10 {
            assert!(policy.plan(widx, 3).is_immediate());
        }
    }

    #[test]
    fn cold_workload_races_launch_all() {
        let policy = HedgePolicy::new(hedging_on());
        assert!(policy.plan(lognormal_idx(), 3).is_immediate());
    }

    #[test]
    fn warm_workload_hedges_everyone_but_the_favourite() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = lognormal_idx();
        for _ in 0..10 {
            policy.record_win(widx, 1, 3_000);
        }
        // Skip tick 0 (exploration floor).
        let _ = policy.plan(widx, 3);
        let plan = policy.plan(widx, 3);
        assert!(!plan.is_immediate(), "warm history produces a hedged plan");
        assert_eq!(plan.offset(1), Duration::ZERO, "favourite launches first");
        assert!(plan.offset(0) > Duration::ZERO);
        assert!(plan.offset(2) > Duration::ZERO);
        assert_eq!(plan.staggered(), 2);
    }

    #[test]
    fn exploration_floor_fires_on_schedule() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = lognormal_idx();
        for _ in 0..10 {
            policy.record_win(widx, 0, 2_000);
        }
        // explore_every = 4: ticks 0, 4, 8, … are launch-all; the rest
        // are hedged.
        for tick in 0..12u64 {
            let plan = policy.plan(widx, 3);
            if tick % 4 == 0 {
                assert!(plan.is_immediate(), "tick {tick} is an exploration race");
            } else {
                assert!(!plan.is_immediate(), "tick {tick} is hedged");
            }
        }
    }

    #[test]
    fn hedge_delay_is_clamped() {
        let mut config = hedging_on();
        config.min_delay = Duration::from_millis(2);
        config.max_delay = Duration::from_millis(10);
        let policy = HedgePolicy::new(config);
        let widx = lognormal_idx();
        // Sub-microsecond favourite: delay clamps up to min_delay.
        for _ in 0..10 {
            policy.record_win(widx, 0, 1);
        }
        let _ = policy.plan(widx, 3);
        let plan = policy.plan(widx, 3);
        assert_eq!(plan.offset(1), Duration::from_millis(2));

        // Very slow favourite: delay clamps down to max_delay.
        let policy = HedgePolicy::new(config);
        for _ in 0..10 {
            policy.record_win(widx, 0, 900_000);
        }
        let _ = policy.plan(widx, 3);
        let plan = policy.plan(widx, 3);
        assert_eq!(plan.offset(1), Duration::from_millis(10));
    }

    #[test]
    fn single_alternative_workloads_never_hedge() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = workload::index_of("sleep").unwrap();
        for _ in 0..10 {
            policy.record_win(widx, 0, 5_000);
        }
        for _ in 0..8 {
            assert!(policy.plan(widx, 1).is_immediate());
        }
    }

    #[test]
    fn wins_map_uses_interned_names() {
        let stats = CatalogStats::new();
        let widx = workload::index_of("trivial").unwrap();
        stats.tables[widx].record_win(0, 100);
        stats.tables[widx].record_win(0, 100);
        stats.tables[widx].record_win(1, 150);
        let map = stats.wins_map();
        assert_eq!(map.get(&("trivial".into(), "instant-a".into())), Some(&2));
        assert_eq!(map.get(&("trivial".into(), "instant-b".into())), Some(&1));
        assert_eq!(map.len(), 2, "workloads with no wins stay absent");
    }

    #[test]
    fn lanes_parse_assigns_and_catches_all() {
        let lanes = Lanes::parse("rt:trivial,bimodal;batch:sleep").expect("valid spec");
        assert_eq!(lanes.names(), ["rt", "batch", "default"]);
        assert_eq!(lanes.lane_of(workload::index_of("trivial").unwrap()), 0);
        assert_eq!(lanes.lane_of(workload::index_of("bimodal").unwrap()), 0);
        assert_eq!(lanes.lane_of(workload::index_of("sleep").unwrap()), 1);
        assert_eq!(
            lanes.lane_of(workload::index_of("lognormal").unwrap()),
            2,
            "unmentioned workloads fall into the trailing default lane"
        );
    }

    #[test]
    fn lanes_parse_rejects_junk() {
        assert!(Lanes::parse("rt:nosuch").is_err(), "unknown workload");
        assert!(
            Lanes::parse("a:trivial;b:trivial").is_err(),
            "double assignment"
        );
        assert!(Lanes::parse("nocolon").is_err(), "missing separator");
        assert_eq!(Lanes::parse("").unwrap(), Lanes::single());
    }

    #[test]
    fn admission_disabled_or_best_effort_always_admits() {
        let catalog = Arc::new(CatalogStats::new());
        let widx = lognormal_idx();
        for _ in 0..100 {
            catalog.record_service(widx, 1_000_000);
        }
        let off = Admission::new(false, Arc::clone(&catalog));
        assert!(off.admit(widx, 1, 1000, 1));
        let on = Admission::new(true, catalog);
        assert!(on.admit(widx, 0, 1000, 1), "deadline 0 is best-effort");
    }

    #[test]
    fn admission_is_deterministic_from_pinned_stats() {
        let catalog = Arc::new(CatalogStats::new());
        let widx = lognormal_idx();
        let gate = Admission::new(true, Arc::clone(&catalog));
        // Cold: nothing is provably infeasible.
        assert!(gate.admit(widx, 1, 64, 1));
        // Pin ~4ms service times; p99 bucket rounds up to 4096us.
        for _ in 0..64 {
            catalog.record_service(widx, 4_000);
        }
        assert!(!gate.admit(widx, 3, 0, 4), "deadline below p99 sheds");
        assert!(gate.admit(widx, 5, 0, 4), "deadline above p99 admits");
        // Queue wait pushes a feasible deadline over the edge.
        assert!(!gate.admit(widx, 5, 64, 4));
        // Same inputs, same verdicts.
        for _ in 0..3 {
            assert!(!gate.admit(widx, 3, 0, 4));
            assert!(gate.admit(widx, 5, 0, 4));
        }
    }

    #[test]
    fn catalog_rendering_marks_the_favourite() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = lognormal_idx();
        for _ in 0..5 {
            policy.record_win(widx, 2, 3_000);
        }
        let text = render_catalog(&policy);
        assert!(text.contains("lognormal"), "{text}");
        assert!(text.contains("draw-2  wins 5"), "{text}");
        assert!(text.contains("<- favourite"), "{text}");
        assert!(text.contains("sleep"), "every workload is listed");
    }
}
