//! The race scheduler: Scheme A statistics driving hedged launch plans.
//!
//! The paper's §4.2 Scheme A selects alternatives by statistical data;
//! Scheme C races everything. The serving layer's [`HedgePolicy`] blends
//! the two: once a workload has enough history, the historical favourite
//! launches at t=0 and every other alternative is *hedged* — held back by
//! a [`LaunchPlan`] offset derived from the favourite's observed p95
//! latency. If the favourite answers within its usual envelope the
//! siblings are suppressed (their bodies never run); if it straggles or
//! fails, the hedges fire and the race proceeds exactly as before.
//! Suppression changes cost, never which value is selected: the engine's
//! winner selection, sibling elimination, and panic containment are
//! untouched.
//!
//! A mandatory exploration floor keeps the statistics live: every
//! `explore_every`-th request per workload races launch-all regardless of
//! history, so a regime change (the favourite going slow) is observed and
//! the policy adapts.
//!
//! [`CatalogStats`] is the shared, interned statistics store: one
//! [`AltStatsTable`] per catalog workload, indexed `(workload index,
//! alternative index)` — no string keys or locks on the record path.
//! Telemetry renders win tallies from the same store the policy reads.

use crate::workload::{self, WorkloadSpec};
use altx::engine::LaunchPlan;
use altx::stats::AltStatsTable;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for the hedging policy. Defaults keep hedging *off*: every race
/// is launch-all, byte-for-byte the pre-scheduler behaviour.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Master switch; when false every plan is immediate.
    pub enabled: bool,
    /// Wins a workload must accumulate before its favourite is trusted.
    pub min_samples: u64,
    /// Every n-th request races launch-all (the exploration floor).
    /// Clamped to at least 2 — exploration can never be disabled.
    pub explore_every: u64,
    /// Lower clamp on the hedge delay (guards against a p95 so small the
    /// hedges would effectively launch immediately anyway).
    pub min_delay: Duration,
    /// Upper clamp on the hedge delay (bounds worst-case added latency
    /// when the favourite fails outright).
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: false,
            min_samples: 20,
            explore_every: 8,
            min_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Per-workload interned statistics for the whole catalog.
#[derive(Debug)]
pub struct CatalogStats {
    tables: Vec<AltStatsTable>,
}

impl CatalogStats {
    /// One pre-sized table per catalog workload.
    pub fn new() -> Self {
        CatalogStats {
            tables: workload::CATALOG
                .iter()
                .map(|w| AltStatsTable::with_len(w.alternatives()))
                .collect(),
        }
    }

    /// The statistics table for catalog workload `widx`.
    pub fn table(&self, widx: usize) -> Option<&AltStatsTable> {
        self.tables.get(widx)
    }

    /// Win tallies as `(workload, alternative) → wins`, for telemetry
    /// snapshots and STATS/Prometheus rendering. Only alternatives with
    /// at least one win appear (matching the old lazy-map behaviour).
    pub fn wins_map(&self) -> BTreeMap<(String, String), u64> {
        let mut map = BTreeMap::new();
        for (widx, w) in workload::CATALOG.iter().enumerate() {
            let table = &self.tables[widx];
            for (aidx, alt) in w.alt_names.iter().enumerate() {
                let wins = table.wins(aidx);
                if wins > 0 {
                    map.insert((w.name.to_string(), alt.to_string()), wins);
                }
            }
        }
        map
    }
}

impl Default for CatalogStats {
    fn default() -> Self {
        CatalogStats::new()
    }
}

/// What one race's plan meant, for counter accounting after it resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKind {
    /// Number of alternatives held back by the plan.
    pub hedged: usize,
}

/// The per-workload hedging policy. See module docs.
#[derive(Debug)]
pub struct HedgePolicy {
    config: HedgeConfig,
    catalog: Arc<CatalogStats>,
    /// Per-workload request tick, driving the exploration floor.
    ticks: Vec<AtomicU64>,
}

impl HedgePolicy {
    /// A policy over a fresh statistics store.
    pub fn new(config: HedgeConfig) -> Self {
        HedgePolicy::with_catalog(config, Arc::new(CatalogStats::new()))
    }

    /// A policy sharing an existing statistics store (telemetry holds the
    /// same `Arc` to render win tallies).
    pub fn with_catalog(config: HedgeConfig, catalog: Arc<CatalogStats>) -> Self {
        let ticks = (0..workload::CATALOG.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        HedgePolicy {
            config,
            catalog,
            ticks,
        }
    }

    /// The shared statistics store.
    pub fn catalog(&self) -> &Arc<CatalogStats> {
        &self.catalog
    }

    /// The policy's configuration.
    pub fn config(&self) -> &HedgeConfig {
        &self.config
    }

    /// Builds the launch plan for one request of catalog workload `widx`
    /// with `n_alts` alternatives. Immediate (launch-all) when hedging is
    /// disabled, history is thin, this is an exploration tick, or there
    /// is no favourite yet.
    pub fn plan(&self, widx: usize, n_alts: usize) -> LaunchPlan {
        self.plan_pruned(widx, n_alts).0
    }

    /// Like [`HedgePolicy::plan`], but additionally says which
    /// alternatives are not worth *constructing*: on a hedged tick, an
    /// alternative whose win rate is near zero over a warm history gets
    /// `true` in the returned mask, and the workload builder substitutes
    /// an instantly-failing stub for its body — don't build what you
    /// won't launch. The stub keeps the alternative's index, name, and
    /// hedge offset, so winner accounting is untouched and the engine's
    /// existing suppression counting applies: when the favourite answers
    /// inside its envelope the stub never launches and is counted
    /// through `launches_suppressed` exactly like any other unlaunched
    /// hedge. Exploration ticks always return `None` — every body is
    /// built and raced, so a pruned alternative that comes back to life
    /// is still observed and its win rate recovers.
    pub fn plan_pruned(&self, widx: usize, n_alts: usize) -> (LaunchPlan, Option<Vec<bool>>) {
        if !self.config.enabled || n_alts <= 1 {
            return (LaunchPlan::immediate(n_alts), None);
        }
        let Some(table) = self.catalog.table(widx) else {
            return (LaunchPlan::immediate(n_alts), None);
        };
        // The exploration floor fires on tick 0 too, so a cold workload's
        // first request is always a full race.
        let tick = self.ticks[widx].fetch_add(1, Ordering::Relaxed);
        let explore_every = self.config.explore_every.max(2);
        if tick % explore_every == 0 {
            return (LaunchPlan::immediate(n_alts), None);
        }
        let total_wins = table.total_wins();
        if total_wins < self.config.min_samples {
            return (LaunchPlan::immediate(n_alts), None);
        }
        let Some(fav) = table.favourite() else {
            return (LaunchPlan::immediate(n_alts), None);
        };
        let p95 = table.quantile_us(fav, 0.95).unwrap_or(0);
        let delay = Duration::from_micros(p95).clamp(self.config.min_delay, self.config.max_delay);
        let offsets = (0..n_alts)
            .map(|i| if i == fav { Duration::ZERO } else { delay })
            .collect();
        // Near-zero win rate: under 2% of a history already deep enough
        // to trust (`min_samples` wins). The favourite is never pruned.
        let mask: Vec<bool> = (0..n_alts)
            .map(|i| i != fav && table.wins(i).saturating_mul(50) < total_wins)
            .collect();
        let prune = mask.iter().any(|&p| p).then_some(mask);
        (LaunchPlan::from_offsets(offsets), prune)
    }

    /// Records a race outcome: the winner's latency feeds the EWMA,
    /// histogram, and win count the next plan reads.
    pub fn record_win(&self, widx: usize, alt_idx: usize, latency_us: u64) {
        if let Some(table) = self.catalog.table(widx) {
            table.record_win(alt_idx, latency_us);
        }
    }
}

/// Renders the catalog — with what the scheduler has learned — as the
/// CATALOG control frame's text body.
pub fn render_catalog(policy: &HedgePolicy) -> String {
    let mut out = String::from("altxd workload catalog\n");
    for (widx, w) in workload::CATALOG.iter().enumerate() {
        render_entry(&mut out, w, widx, policy);
    }
    out
}

fn render_entry(out: &mut String, w: &WorkloadSpec, widx: usize, policy: &HedgePolicy) {
    use std::fmt::Write;
    let _ = writeln!(out, "  {}  — {}", w.name, w.description);
    let table = policy.catalog().table(widx);
    let favourite = table.and_then(|t| t.favourite());
    let total_wins = table.map_or(0, |t| t.total_wins());
    for (aidx, alt) in w.alt_names.iter().enumerate() {
        let wins = table.map_or(0, |t| t.wins(aidx));
        let marker = if favourite == Some(aidx) {
            "  <- favourite"
        } else {
            ""
        };
        let rate = if total_wins > 0 {
            format!(
                " ({:.1}% of {} wins)",
                100.0 * wins as f64 / total_wins as f64,
                total_wins
            )
        } else {
            String::new()
        };
        let _ = writeln!(out, "    alt {aidx} {alt}  wins {wins}{rate}{marker}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hedging_on() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            min_samples: 4,
            explore_every: 4,
            ..HedgeConfig::default()
        }
    }

    fn lognormal_idx() -> usize {
        workload::index_of("lognormal").expect("catalog has lognormal")
    }

    #[test]
    fn disabled_policy_always_launches_all() {
        let policy = HedgePolicy::new(HedgeConfig::default());
        let widx = lognormal_idx();
        for alt in 0..3 {
            policy.record_win(widx, alt, 1_000);
        }
        for _ in 0..10 {
            assert!(policy.plan(widx, 3).is_immediate());
        }
    }

    #[test]
    fn cold_workload_races_launch_all() {
        let policy = HedgePolicy::new(hedging_on());
        assert!(policy.plan(lognormal_idx(), 3).is_immediate());
    }

    #[test]
    fn warm_workload_hedges_everyone_but_the_favourite() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = lognormal_idx();
        for _ in 0..10 {
            policy.record_win(widx, 1, 3_000);
        }
        // Skip tick 0 (exploration floor).
        let _ = policy.plan(widx, 3);
        let plan = policy.plan(widx, 3);
        assert!(!plan.is_immediate(), "warm history produces a hedged plan");
        assert_eq!(plan.offset(1), Duration::ZERO, "favourite launches first");
        assert!(plan.offset(0) > Duration::ZERO);
        assert!(plan.offset(2) > Duration::ZERO);
        assert_eq!(plan.staggered(), 2);
    }

    #[test]
    fn exploration_floor_fires_on_schedule() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = lognormal_idx();
        for _ in 0..10 {
            policy.record_win(widx, 0, 2_000);
        }
        // explore_every = 4: ticks 0, 4, 8, … are launch-all; the rest
        // are hedged.
        for tick in 0..12u64 {
            let plan = policy.plan(widx, 3);
            if tick % 4 == 0 {
                assert!(plan.is_immediate(), "tick {tick} is an exploration race");
            } else {
                assert!(!plan.is_immediate(), "tick {tick} is hedged");
            }
        }
    }

    #[test]
    fn hedge_delay_is_clamped() {
        let mut config = hedging_on();
        config.min_delay = Duration::from_millis(2);
        config.max_delay = Duration::from_millis(10);
        let policy = HedgePolicy::new(config);
        let widx = lognormal_idx();
        // Sub-microsecond favourite: delay clamps up to min_delay.
        for _ in 0..10 {
            policy.record_win(widx, 0, 1);
        }
        let _ = policy.plan(widx, 3);
        let plan = policy.plan(widx, 3);
        assert_eq!(plan.offset(1), Duration::from_millis(2));

        // Very slow favourite: delay clamps down to max_delay.
        let policy = HedgePolicy::new(config);
        for _ in 0..10 {
            policy.record_win(widx, 0, 900_000);
        }
        let _ = policy.plan(widx, 3);
        let plan = policy.plan(widx, 3);
        assert_eq!(plan.offset(1), Duration::from_millis(10));
    }

    #[test]
    fn single_alternative_workloads_never_hedge() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = workload::index_of("sleep").unwrap();
        for _ in 0..10 {
            policy.record_win(widx, 0, 5_000);
        }
        for _ in 0..8 {
            assert!(policy.plan(widx, 1).is_immediate());
        }
    }

    #[test]
    fn wins_map_uses_interned_names() {
        let stats = CatalogStats::new();
        let widx = workload::index_of("trivial").unwrap();
        stats.tables[widx].record_win(0, 100);
        stats.tables[widx].record_win(0, 100);
        stats.tables[widx].record_win(1, 150);
        let map = stats.wins_map();
        assert_eq!(map.get(&("trivial".into(), "instant-a".into())), Some(&2));
        assert_eq!(map.get(&("trivial".into(), "instant-b".into())), Some(&1));
        assert_eq!(map.len(), 2, "workloads with no wins stay absent");
    }

    #[test]
    fn catalog_rendering_marks_the_favourite() {
        let policy = HedgePolicy::new(hedging_on());
        let widx = lognormal_idx();
        for _ in 0..5 {
            policy.record_win(widx, 2, 3_000);
        }
        let text = render_catalog(&policy);
        assert!(text.contains("lognormal"), "{text}");
        assert!(text.contains("draw-2  wins 5"), "{text}");
        assert!(text.contains("<- favourite"), "{text}");
        assert!(text.contains("sleep"), "every workload is listed");
    }
}
