//! CPU topology discovery and shard placement planning.
//!
//! [`CpuTopology`] reads the machine's shape from
//! `/sys/devices/system/cpu`: which CPUs exist, which package and
//! physical core each belongs to (SMT siblings share a core), and
//! which NUMA node holds its local memory — intersected with the
//! affinity mask actually available to the process (a cgroup cpuset or
//! an inherited taskset narrows what "the machine" means for us).
//! The parser takes the sysfs root as a parameter, so `tests/topo.rs`
//! drives it against fixture trees (an SMT desktop, a 2-node NUMA box,
//! a restricted cpuset) without needing that hardware.
//!
//! [`plan_shards`] turns a topology into one core set per shard:
//!
//! * **SMT siblings stay together** — a shard owns whole physical
//!   cores, so its reactor and workers never share an execution core
//!   with another shard's.
//! * **NUMA locality** — cores are laid out node-major before they are
//!   chunked, so a shard's cores land on one node whenever the shard
//!   count divides the node count; the shard's ring and pool memory is
//!   then first-touched from those cores and stays node-local.
//! * **Graceful spill** — more shards than physical cores wraps the
//!   assignment (shards share cores, round-robin) instead of failing;
//!   fewer shards than cores spreads the spare cores across shards.
//!
//! Discovery failures are never fatal: `--pin` degrades to the
//! unpinned daemon with a logged warning. See `pin.rs` for the same
//! contract at the syscall layer.

use std::io;
use std::path::Path;

/// One logical CPU's place in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuInfo {
    /// Logical CPU id (the `cpuN` index, what affinity masks name).
    pub id: usize,
    /// Physical package (socket) id.
    pub package: usize,
    /// Physical core id within the package; SMT siblings share it.
    pub core: usize,
    /// NUMA node whose memory is local to this CPU.
    pub node: usize,
}

/// The set of CPUs available to this process, with their topology.
#[derive(Debug, Clone, Default)]
pub struct CpuTopology {
    /// Available CPUs, ascending by id.
    pub cpus: Vec<CpuInfo>,
}

impl CpuTopology {
    /// Discovers the live machine: `/sys/devices/system/cpu` narrowed
    /// by the process's current affinity mask. Only called on the
    /// `--pin` path — it makes one `sched_getaffinity` syscall.
    pub fn discover() -> io::Result<CpuTopology> {
        let affinity = crate::pin::current_affinity()?;
        CpuTopology::from_sysfs(Path::new("/sys/devices/system/cpu"), Some(&affinity))
    }

    /// Parses a sysfs `cpu/` tree rooted at `root`, keeping only CPUs
    /// named in `affinity` (when given). Missing per-CPU files degrade
    /// to defaults (package 0, core = cpu id, node 0) rather than
    /// failing: a sparse tree still yields a usable plan.
    pub fn from_sysfs(root: &Path, affinity: Option<&[usize]>) -> io::Result<CpuTopology> {
        let ids = list_cpus(root)?;
        let mut cpus = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(allowed) = affinity {
                if !allowed.contains(&id) {
                    continue;
                }
            }
            let cpu_dir = root.join(format!("cpu{id}"));
            let package = read_usize(&cpu_dir.join("topology/physical_package_id")).unwrap_or(0);
            let core = read_usize(&cpu_dir.join("topology/core_id")).unwrap_or(id);
            let node = node_of(&cpu_dir).unwrap_or(0);
            cpus.push(CpuInfo {
                id,
                package,
                core,
                node,
            });
        }
        if cpus.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no usable CPUs after applying the affinity mask",
            ));
        }
        Ok(CpuTopology { cpus })
    }

    /// Distinct NUMA nodes represented.
    pub fn nodes(&self) -> usize {
        let mut nodes: Vec<usize> = self.cpus.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Physical cores, node-major (`(node, package, core)` order), each
    /// carrying its SMT siblings' CPU ids ascending.
    pub fn physical_cores(&self) -> Vec<Vec<usize>> {
        let mut keyed: Vec<((usize, usize, usize), usize)> = self
            .cpus
            .iter()
            .map(|c| ((c.node, c.package, c.core), c.id))
            .collect();
        keyed.sort_unstable();
        let mut cores: Vec<Vec<usize>> = Vec::new();
        let mut last_key = None;
        for (key, id) in keyed {
            if last_key != Some(key) {
                cores.push(Vec::new());
                last_key = Some(key);
            }
            cores.last_mut().expect("just pushed").push(id);
        }
        cores
    }
}

/// One shard's assigned CPUs, plus what the assignment had to work
/// with — the daemon banner prints this and tests assert on it.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// Shard index → CPU ids (whole physical cores, SMT siblings
    /// included).
    pub shards: Vec<Vec<usize>>,
    /// Physical cores the topology offered.
    pub cores: usize,
    /// NUMA nodes the topology spans.
    pub nodes: usize,
    /// Whether shard core sets are pairwise disjoint (false only when
    /// shards outnumber physical cores and the plan had to spill).
    pub disjoint: bool,
}

impl PlacementPlan {
    /// Every CPU the plan uses, ascending, deduplicated — the
    /// supervisor and other whole-daemon threads pin to this union.
    pub fn union(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self.shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// Assigns `n_shards` core sets from `topo`. See the module docs for
/// the three rules (SMT together, node-major chunks, wrap on spill).
pub fn plan_shards(topo: &CpuTopology, n_shards: usize) -> PlacementPlan {
    let cores = topo.physical_cores();
    let n_cores = cores.len();
    let n_shards = n_shards.max(1);
    let mut shards: Vec<Vec<usize>> = Vec::with_capacity(n_shards);
    let disjoint = n_shards <= n_cores;
    if disjoint {
        // Contiguous node-major chunks, remainder cores to the earliest
        // shards: |chunk_i| differs by at most one.
        let base = n_cores / n_shards;
        let extra = n_cores % n_shards;
        let mut at = 0;
        for i in 0..n_shards {
            let take = base + usize::from(i < extra);
            let set: Vec<usize> = cores[at..at + take].iter().flatten().copied().collect();
            shards.push(set);
            at += take;
        }
    } else {
        // Spill: shards wrap around the core list and share cores.
        for i in 0..n_shards {
            shards.push(cores[i % n_cores].clone());
        }
    }
    PlacementPlan {
        shards,
        cores: n_cores,
        nodes: topo.nodes(),
        disjoint,
    }
}

/// The CPU ids the tree describes: the `online` cpulist when present,
/// otherwise every `cpuN` directory.
fn list_cpus(root: &Path) -> io::Result<Vec<usize>> {
    if let Ok(text) = std::fs::read_to_string(root.join("online")) {
        if let Some(ids) = parse_cpulist(&text) {
            return Ok(ids);
        }
    }
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(n) = name.strip_prefix("cpu") {
            if let Ok(id) = n.parse::<usize>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Parses the kernel's cpulist format: `0-3,5,8-9`. `None` on any
/// malformed piece (the caller falls back to directory listing).
fn parse_cpulist(text: &str) -> Option<Vec<usize>> {
    let text = text.trim();
    if text.is_empty() {
        return None;
    }
    let mut ids = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo {
                    return None;
                }
                ids.extend(lo..=hi);
            }
            None => ids.push(part.parse().ok()?),
        }
    }
    ids.sort_unstable();
    ids.dedup();
    Some(ids)
}

/// The NUMA node of one `cpuN/` directory: the `nodeM` entry the
/// kernel links into it. `None` when the tree has no node links
/// (single-node machines often do not).
fn node_of(cpu_dir: &Path) -> Option<usize> {
    for entry in std::fs::read_dir(cpu_dir).ok()? {
        let name = entry.ok()?.file_name();
        let name = name.to_string_lossy();
        if let Some(n) = name.strip_prefix("node") {
            if let Ok(id) = n.parse::<usize>() {
                return Some(id);
            }
        }
    }
    None
}

fn read_usize(path: &Path) -> Option<usize> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_and_singles() {
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpulist("0,2,4"), Some(vec![0, 2, 4]));
        assert_eq!(parse_cpulist("0-1,4,6-7\n"), Some(vec![0, 1, 4, 6, 7]));
        assert_eq!(parse_cpulist(""), None);
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("x"), None);
    }

    fn flat_topo(n: usize) -> CpuTopology {
        CpuTopology {
            cpus: (0..n)
                .map(|id| CpuInfo {
                    id,
                    package: 0,
                    core: id,
                    node: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn plan_is_disjoint_and_covers_when_shards_fit() {
        let plan = plan_shards(&flat_topo(8), 3);
        assert!(plan.disjoint);
        assert_eq!(plan.shards.len(), 3);
        let sizes: Vec<usize> = plan.shards.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2], "remainder cores go to early shards");
        assert_eq!(plan.union().len(), 8, "every core is used exactly once");
    }

    #[test]
    fn plan_spills_by_wrapping_when_shards_exceed_cores() {
        let plan = plan_shards(&flat_topo(2), 5);
        assert!(!plan.disjoint);
        assert_eq!(plan.shards.len(), 5);
        assert_eq!(plan.shards[0], plan.shards[2]);
        assert_eq!(plan.shards[1], plan.shards[3]);
        assert_eq!(plan.shards[0], plan.shards[4]);
        assert_ne!(plan.shards[0], plan.shards[1]);
    }
}
