//! The daemon: a reactor front end bridging framed requests to the
//! worker pool.
//!
//! Flow of one request: the reactor (one thread, `poll(2)` over every
//! socket — see [`crate::reactor`]) feeds inbound bytes through an
//! incremental frame decoder and tries to enqueue each decoded `RUN` on
//! the [`WorkerPool`]. If the bounded queue refuses, the request is
//! shed with an immediate `Overloaded` reply — admission control at the
//! door, not timeouts deep in the building. If admitted, a worker races
//! the workload's alternatives on a [`ThreadedEngine`] under a
//! [`CancelToken`] carrying the request's deadline — the serving
//! analogue of the paper's `alt_wait(timeout)` — and posts the reply
//! back to the reactor through a completion queue and a self-pipe
//! wakeup. Replies are released per connection in request order, so
//! pipelined requests on one socket come back in the order they were
//! sent even when a later race finishes first.
//!
//! Concurrency cost model: an idle connection is a file descriptor and
//! a few hundred bytes of state — not a thread. The daemon runs
//! O(workers + 1) OS threads (the reactor, the pool, its supervisor)
//! regardless of how many clients are connected.
//!
//! Shutdown (local call or the `SHUTDOWN` opcode) stops admissions and
//! new reads, lets every in-flight race finish and flush its reply,
//! reclaims each connection as it drains, and only then joins the pool:
//! no request that was admitted goes unanswered, and no daemon thread
//! outlives the drain.

use crate::frame::Response;
use crate::pool::WorkerPool;
use crate::reactor::{run_acceptor, wake_pair, DaemonCtl, Reactor};
use crate::sched::{HedgeConfig, HedgePolicy};
use crate::telemetry::Telemetry;
use crate::workload;
use altx::engine::ThreadedEngine;
use altx::CancelToken;
use altx_pager::{AddressSpace, PageSize};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads racing requests.
    pub workers: usize,
    /// Bounded run-queue depth; the shed threshold.
    pub queue_depth: usize,
    /// Coalescing window for identical `(workload, arg, deadline)`
    /// requests; zero (the default) disables batching entirely.
    pub batch_window: Duration,
    /// Adaptive hedging knobs; disabled by default (launch-all).
    pub hedge: HedgeConfig,
    /// Reactor shards. `1` (the default) runs the classic single
    /// reactor that owns the listener itself; `N > 1` adds an acceptor
    /// thread that deals accepted sockets round-robin to N independent
    /// event loops.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: available_workers(),
            queue_depth: 64,
            batch_window: Duration::ZERO,
            hedge: HedgeConfig::default(),
            shards: 1,
        }
    }
}

/// Worker count matched to the host (at least 2).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .max(2)
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] or send the `SHUTDOWN` opcode.
pub struct ServerHandle {
    addr: SocketAddr,
    ctl: Arc<DaemonCtl>,
    /// The acceptor (when sharded) followed by every shard thread.
    threads: Vec<JoinHandle<()>>,
    telemetry: Arc<Telemetry>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared telemetry, live while the daemon runs.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown and blocks until the daemon has drained every
    /// in-flight race and joined every thread.
    pub fn shutdown(mut self) {
        self.ctl.request_shutdown();
        for h in self.threads.drain(..) {
            h.join().expect("front-end thread exits cleanly");
        }
    }

    /// Blocks until the daemon shuts down (e.g. via the `SHUTDOWN`
    /// opcode from a client).
    pub fn wait(mut self) {
        for h in self.threads.drain(..) {
            h.join().expect("front-end thread exits cleanly");
        }
    }
}

/// Binds and starts the daemon, returning once it is accepting.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
    let listener = TcpListener::bind(&addrs[..])?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let n_shards = config.shards.max(1);

    let telemetry = Arc::new(Telemetry::new());
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
    telemetry.attach_pool(pool.stats());
    let sched = Arc::new(HedgePolicy::new(config.hedge));
    telemetry.attach_catalog(Arc::clone(sched.catalog()));
    let ctl = Arc::new(DaemonCtl::new(n_shards));

    // Single shard: the reactor owns the listener and accepts directly
    // (no acceptor thread — the pre-sharding topology, byte for byte).
    // Sharded: reactors get `None` and adopt from their inboxes.
    let mut reactors = Vec::with_capacity(n_shards);
    let mut shareds = Vec::with_capacity(n_shards);
    let mut shard_stats = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let own_listener = (n_shards == 1).then(|| listener.try_clone()).transpose()?;
        let (reactor, shared, stats) = Reactor::new(
            own_listener,
            Arc::clone(&pool),
            Arc::clone(&telemetry),
            Arc::clone(&sched),
            config.batch_window,
            Arc::clone(&ctl),
        )?;
        reactors.push(reactor);
        shareds.push(shared);
        shard_stats.push(stats);
    }
    ctl.wire_shards(shareds.clone());
    telemetry.attach_shards(shard_stats);

    let mut threads = Vec::with_capacity(n_shards + 1);
    if n_shards > 1 {
        let (wake_tx, wake_rx) = wake_pair()?;
        ctl.wire_acceptor(wake_tx);
        let acceptor_ctl = Arc::clone(&ctl);
        threads.push(
            std::thread::Builder::new()
                .name("altxd-acceptor".to_owned())
                .spawn(move || run_acceptor(listener, wake_rx, acceptor_ctl, shareds))
                .expect("spawn acceptor"),
        );
    }
    for (i, reactor) in reactors.into_iter().enumerate() {
        threads.push(
            std::thread::Builder::new()
                .name(format!("altxd-reactor-{i}"))
                .spawn(move || reactor.run())
                .expect("spawn reactor"),
        );
    }

    Ok(ServerHandle {
        addr,
        ctl,
        threads,
        telemetry,
    })
}

/// Executes the race for one admitted request (worker context).
///
/// The scheduler is consulted for a [`LaunchPlan`](altx::engine::LaunchPlan)
/// — launch-all unless hedging is enabled and the workload's history is
/// warm — and the outcome feeds back: the winner's latency and win count
/// update the interned statistics the *next* plan reads, and the hedge
/// counters (`hedges_launched`, `hedge_wins`, `launches_suppressed`)
/// account for what the plan actually saved or spent.
pub(crate) fn run_race(
    telemetry: &Telemetry,
    sched: &HedgePolicy,
    widx: usize,
    deadline_ms: u32,
    arg: u64,
) -> Response {
    let spec = match workload::CATALOG.get(widx) {
        Some(spec) => spec,
        None => {
            telemetry.on_error();
            return Response::UnknownWorkload;
        }
    };
    // Plan before building: an alternative the scheduler prunes (near-
    // zero win rate over a warm history) is replaced by a stub at
    // construction — its real body is never built, and if the favourite
    // answers inside its envelope the stub never launches either,
    // feeding the ordinary `launches_suppressed` accounting below.
    let (plan, prune) = sched.plan_pruned(widx, spec.alternatives());
    let block = match workload::build_pruned(spec.name, arg, prune.as_deref()) {
        Some(b) => b,
        None => {
            telemetry.on_error();
            return Response::UnknownWorkload;
        }
    };
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Duration::from_millis(u64::from(deadline_ms)))
    } else {
        CancelToken::new()
    };
    let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
    let start = Instant::now();
    let result = ThreadedEngine::new().execute_planned(&block, &mut workspace, &token, &plan);
    let latency_us = start.elapsed().as_micros() as u64;
    telemetry.on_alt_panics(result.panics as u64);
    telemetry.on_launches_suppressed(result.suppressed as u64);
    // Hedges that launched = those the plan held back minus those the
    // decision suppressed (saturating: under bounded engines a t=0
    // alternative can be suppressed too, but not here).
    telemetry.on_hedges_launched(plan.staggered().saturating_sub(result.suppressed) as u64);

    match (result.winner, result.value) {
        (Some(w), Some(value)) => {
            let winner_name = result
                .winner_name
                .clone()
                .unwrap_or_else(|| format!("alt{w}"));
            telemetry.on_completed(latency_us);
            sched.record_win(widx, w, latency_us);
            if !plan.offset(w).is_zero() {
                telemetry.on_hedge_win();
            }
            Response::Ok {
                winner: w as u32,
                winner_name,
                latency_us,
                value,
            }
        }
        _ if token.deadline_expired() => {
            telemetry.on_deadline_exceeded();
            Response::DeadlineExceeded { latency_us }
        }
        _ => {
            telemetry.on_error();
            Response::Error {
                message: "no alternative succeeded".to_owned(),
            }
        }
    }
}
