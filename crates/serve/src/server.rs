//! The daemon: TCP accept loop, per-connection framing, and the
//! request → race bridge.
//!
//! Flow of one request: the connection thread decodes a `RUN` frame and
//! tries to enqueue a job on the [`WorkerPool`]. If the bounded queue
//! refuses, the request is shed with an immediate `Overloaded` reply —
//! admission control at the door, not timeouts deep in the building. If
//! admitted, a worker races the workload's alternatives on a
//! [`ThreadedEngine`] under a [`CancelToken`] carrying the request's
//! deadline — the serving analogue of the paper's `alt_wait(timeout)` —
//! and posts the reply back to the connection thread, which writes
//! frames in order.
//!
//! Shutdown (local call or the `SHUTDOWN` opcode) stops admissions,
//! lets every in-flight race finish, joins every thread, and only then
//! returns: no request that was admitted goes unanswered, and no race
//! thread outlives the daemon.

use crate::frame::{read_frame, write_frame, FrameError, Request, Response};
use crate::pool::{SubmitError, WorkerPool};
use crate::telemetry::Telemetry;
use crate::workload;
use altx::engine::ThreadedEngine;
use altx::CancelToken;
use altx_pager::{AddressSpace, PageSize};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads racing requests.
    pub workers: usize,
    /// Bounded run-queue depth; the shed threshold.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: available_workers(),
            queue_depth: 64,
        }
    }
}

/// Worker count matched to the host (at least 2).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .max(2)
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] or send the `SHUTDOWN` opcode.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    telemetry: Arc<Telemetry>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared telemetry, live while the daemon runs.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown and blocks until the daemon has drained every
    /// in-flight race and joined every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop exits cleanly");
        }
    }

    /// Blocks until the daemon shuts down (e.g. via the `SHUTDOWN`
    /// opcode from a client).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop exits cleanly");
        }
    }
}

/// Binds and starts the daemon, returning once it is accepting.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
    let listener = TcpListener::bind(&addrs[..])?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let telemetry = Arc::new(Telemetry::new());
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
    telemetry.attach_pool(pool.stats());

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let telemetry = Arc::clone(&telemetry);
        std::thread::Builder::new()
            .name("altxd-accept".to_owned())
            .spawn(move || accept_loop(listener, pool, telemetry, shutdown))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        telemetry,
    })
}

fn accept_loop(
    listener: TcpListener,
    pool: Arc<WorkerPool>,
    telemetry: Arc<Telemetry>,
    shutdown: Arc<AtomicBool>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let pool = Arc::clone(&pool);
                let telemetry = Arc::clone(&telemetry);
                let shutdown = Arc::clone(&shutdown);
                let h = std::thread::Builder::new()
                    .name("altxd-conn".to_owned())
                    .spawn(move || {
                        let _ = serve_connection(stream, &pool, &telemetry, &shutdown);
                    })
                    .expect("spawn connection");
                connections.push(h);
                connections.retain(|c| !c.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    // Drain: connections notice the flag within one read timeout, finish
    // their in-flight request, and exit; then the pool drains admitted
    // jobs and joins its workers.
    for c in connections {
        c.join().expect("connection exits cleanly");
    }
    pool.shutdown();
}

fn serve_connection(
    mut stream: TcpStream,
    pool: &Arc<WorkerPool>,
    telemetry: &Arc<Telemetry>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => return Ok(()), // clean disconnect
            Err(FrameError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle; re-check the shutdown flag
            }
            Err(e) => {
                telemetry.on_error();
                let reply = Response::Error {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &reply.encode());
                return Ok(());
            }
        };
        let request = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                telemetry.on_error();
                let reply = Response::Error {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &reply.encode());
                return Ok(());
            }
        };
        let response = match request {
            Request::Stats => Response::Text {
                body: telemetry.render_stats(),
            },
            Request::Prometheus => Response::Text {
                body: telemetry.render_prometheus(),
            },
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                let reply = Response::Text {
                    body: "draining\n".to_owned(),
                };
                write_frame(&mut stream, &reply.encode())?;
                return Ok(());
            }
            Request::Run {
                workload,
                deadline_ms,
                arg,
            } => dispatch_run(pool, telemetry, workload, deadline_ms, arg),
        };
        write_frame(&mut stream, &response.encode())?;
    }
}

/// Admission-controls one RUN request and waits for its reply.
fn dispatch_run(
    pool: &Arc<WorkerPool>,
    telemetry: &Arc<Telemetry>,
    workload: String,
    deadline_ms: u32,
    arg: u64,
) -> Response {
    // Reject unknown names before spending a queue slot.
    if workload::spec(&workload).is_none() {
        telemetry.on_error();
        return Response::UnknownWorkload;
    }
    let (tx, rx) = mpsc::channel();
    let job_telemetry = Arc::clone(telemetry);
    let submitted = pool.try_submit(Box::new(move || {
        // The race itself is contained here so a crash becomes an
        // explicit error reply; the pool's own catch_unwind is the
        // backstop for panics outside this region.
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let reply = catch_unwind(AssertUnwindSafe(|| {
            run_race(&job_telemetry, &workload, deadline_ms, arg)
        }))
        .unwrap_or_else(|_| {
            job_telemetry.on_error();
            Response::Error {
                message: "internal error: race panicked".to_owned(),
            }
        });
        let _ = tx.send(reply);
    }));
    match submitted {
        Ok(()) => {
            telemetry.on_accepted();
            rx.recv().unwrap_or_else(|_| {
                // The job was dropped unrun (injected `Fail` fault or a
                // worker killed mid-job); answer rather than hang the
                // connection.
                Response::Error {
                    message: "worker lost".to_owned(),
                }
            })
        }
        Err(SubmitError::Overloaded) | Err(SubmitError::ShuttingDown) => {
            telemetry.on_shed();
            Response::Overloaded
        }
    }
}

/// Executes the race for one admitted request (worker context).
fn run_race(telemetry: &Telemetry, workload: &str, deadline_ms: u32, arg: u64) -> Response {
    let block = match workload::build(workload, arg) {
        Some(b) => b,
        None => {
            telemetry.on_error();
            return Response::UnknownWorkload;
        }
    };
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Duration::from_millis(u64::from(deadline_ms)))
    } else {
        CancelToken::new()
    };
    let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
    let start = Instant::now();
    let result = ThreadedEngine::new().execute_with_token(&block, &mut workspace, &token);
    let latency_us = start.elapsed().as_micros() as u64;
    telemetry.on_alt_panics(result.panics as u64);

    match (result.winner, result.value) {
        (Some(w), Some(value)) => {
            let winner_name = result
                .winner_name
                .clone()
                .unwrap_or_else(|| format!("alt{w}"));
            telemetry.on_completed(workload, &winner_name, latency_us);
            Response::Ok {
                winner: w as u32,
                winner_name,
                latency_us,
                value,
            }
        }
        _ if token.deadline_expired() => {
            telemetry.on_deadline_exceeded();
            Response::DeadlineExceeded { latency_us }
        }
        _ => {
            telemetry.on_error();
            Response::Error {
                message: "no alternative succeeded".to_owned(),
            }
        }
    }
}
