//! The daemon: a reactor front end bridging framed requests to the
//! worker pool.
//!
//! Flow of one request: the reactor (one thread, `poll(2)` over every
//! socket — see [`crate::reactor`]) feeds inbound bytes through an
//! incremental frame decoder and tries to enqueue each decoded `RUN` on
//! the [`WorkerPool`]. If the bounded queue refuses, the request is
//! shed with an immediate `Overloaded` reply — admission control at the
//! door, not timeouts deep in the building. If admitted, a worker races
//! the workload's alternatives on a [`ThreadedEngine`] under a
//! [`CancelToken`] carrying the request's deadline — the serving
//! analogue of the paper's `alt_wait(timeout)` — and posts the reply
//! back to the reactor through a completion queue and a self-pipe
//! wakeup. Replies are released per connection in request order, so
//! pipelined requests on one socket come back in the order they were
//! sent even when a later race finishes first.
//!
//! Concurrency cost model: an idle connection is a file descriptor and
//! a few hundred bytes of state — not a thread. The daemon runs
//! O(workers + 1) OS threads (the reactor, the pool, its supervisor)
//! regardless of how many clients are connected.
//!
//! Shutdown (local call or the `SHUTDOWN` opcode) stops admissions and
//! new reads, lets every in-flight race finish and flush its reply,
//! reclaims each connection as it drains, and only then joins the pool:
//! no request that was admitted goes unanswered, and no daemon thread
//! outlives the drain.

use crate::commit::CommitLedger;
use crate::frame::{Response, ALT_DEADLINE, ALT_FAILED, ALT_OK};
use crate::peer::{PeerConfig, PeerNet, PeerPlane, PeerStatsTable};
use crate::placement::Placement;
use crate::pool::{PoolConfig, WorkerPool, DEFAULT_LANE_AGING, DEFAULT_SPIN};
use crate::reactor::{bind_reuseport, run_acceptor, wake_pair, DaemonCtl, Reactor};
use crate::remote::{InflightRemote, RemoteRaces};
use crate::sched::{Admission, HedgeConfig, HedgePolicy, Lanes};
use crate::telemetry::Telemetry;
use crate::workload;
use altx::engine::{LaunchPlan, ThreadedEngine};
use altx::CancelToken;
use altx_pager::{AddressSpace, PageSize};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads racing requests.
    pub workers: usize,
    /// Bounded run-queue depth; the shed threshold.
    pub queue_depth: usize,
    /// Coalescing window for identical `(workload, arg, deadline)`
    /// requests; zero (the default) disables batching entirely.
    pub batch_window: Duration,
    /// Adaptive hedging knobs; disabled by default (launch-all).
    pub hedge: HedgeConfig,
    /// Reactor shards. `1` (the default) runs the classic single
    /// reactor that owns the listener itself; `N > 1` runs N
    /// independent event loops, each accepting on its own
    /// `SO_REUSEPORT` listener (falling back to an acceptor thread
    /// dealing sockets round-robin where the option is unavailable).
    pub shards: usize,
    /// Reply-ring slots per shard. Each shard pre-allocates this many
    /// fixed buffers that winning replies encode straight into; `0`
    /// disables the ring and reproduces the allocate-per-reply path.
    pub ring_slots: usize,
    /// Capacity of one reply-ring slot, bytes (whole wire frame:
    /// 4-byte prefix + body). Replies that don't fit spill to the heap.
    pub ring_slot_bytes: usize,
    /// Cluster peering: peer addresses, exploration cadence, and the
    /// advertised identity. Empty (the default) keeps the daemon
    /// single-node — no placement, no outbound dials, no votes.
    pub peer: PeerConfig,
    /// Per-workload priority lanes for the run queues. The default
    /// single lane is scheduling-neutral — identical to no lanes.
    pub lanes: Lanes,
    /// Feasibility-based admission: shed a deadlined request on arrival
    /// when its deadline is provably unmeetable. Off by default.
    pub admission: bool,
    /// Work stealing between shard-pinned worker groups. Off by
    /// default; when on, the pool splits into one group per shard and a
    /// dry group's workers take the best entry from a sibling's queue.
    pub steal: bool,
    /// Starvation aging threshold for lower-priority lanes;
    /// `Duration::ZERO` means pure strict priority.
    pub lane_aging: Duration,
    /// CPU topology-aware placement: pin each shard's reactor and
    /// worker group to a disjoint, SMT- and NUMA-aware core set, and
    /// first-touch the shard's ring and buffer memory from those cores.
    /// Off by default — and "off" means the daemon makes **zero**
    /// affinity syscalls, byte-for-byte the unpinned behaviour.
    pub pin: bool,
    /// Busy-wait budget before an idle stealing worker parks on its
    /// group doorbell. `Duration::ZERO` parks immediately.
    pub spin: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: available_workers(),
            queue_depth: 64,
            batch_window: Duration::ZERO,
            hedge: HedgeConfig::default(),
            shards: 1,
            ring_slots: DEFAULT_RING_SLOTS,
            ring_slot_bytes: DEFAULT_RING_SLOT_BYTES,
            peer: PeerConfig::default(),
            lanes: Lanes::single(),
            admission: false,
            steal: false,
            lane_aging: DEFAULT_LANE_AGING,
            pin: false,
            spin: DEFAULT_SPIN,
        }
    }
}

/// Default reply-ring slots per shard: deep enough that slots are only
/// exhausted when more replies are mid-write than a shard ever has in
/// flight at once, at 256 KiB resident per shard with default slots.
pub const DEFAULT_RING_SLOTS: usize = 256;

/// Default slot capacity: every fixed-size reply (OK, deadline, vote,
/// short errors) fits with room to spare; big text dumps (STATS,
/// catalog) take the counted spill path by design.
pub const DEFAULT_RING_SLOT_BYTES: usize = 1024;

/// Worker count matched to the host (at least 2).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .max(2)
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] or send the `SHUTDOWN` opcode.
pub struct ServerHandle {
    addr: SocketAddr,
    ctl: Arc<DaemonCtl>,
    /// The acceptor (when sharded) followed by every shard thread.
    threads: Vec<JoinHandle<()>>,
    telemetry: Arc<Telemetry>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared telemetry, live while the daemon runs.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown and blocks until the daemon has drained every
    /// in-flight race and joined every thread.
    pub fn shutdown(mut self) {
        self.ctl.request_shutdown();
        for h in self.threads.drain(..) {
            h.join().expect("front-end thread exits cleanly");
        }
    }

    /// Blocks until the daemon shuts down (e.g. via the `SHUTDOWN`
    /// opcode from a client).
    pub fn wait(mut self) {
        for h in self.threads.drain(..) {
            h.join().expect("front-end thread exits cleanly");
        }
    }
}

/// Binds and starts the daemon, returning once it is accepting.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
    let n_shards = config.shards.max(1);

    // Front-door topology. Single shard: one classic listener, owned
    // by the lone reactor. Sharded: one SO_REUSEPORT listener *per
    // shard*, so every accept lands on the thread that will serve the
    // connection and the kernel's hash does the balancing. Where the
    // platform can't do that (or the bind fails), fall back to one
    // listener plus the acceptor thread dealing round-robin.
    let mut own_listeners: Vec<Option<TcpListener>>;
    let mut acceptor_listener = None;
    let addr;
    if n_shards == 1 {
        let listener = TcpListener::bind(&addrs[..])?;
        listener.set_nonblocking(true)?;
        addr = listener.local_addr()?;
        own_listeners = vec![Some(listener)];
    } else {
        match bind_shard_listeners(&addrs, n_shards) {
            Ok(listeners) => {
                addr = listeners[0].local_addr()?;
                own_listeners = listeners.into_iter().map(Some).collect();
            }
            Err(_) => {
                let listener = TcpListener::bind(&addrs[..])?;
                listener.set_nonblocking(true)?;
                addr = listener.local_addr()?;
                own_listeners = (0..n_shards).map(|_| None).collect();
                acceptor_listener = Some(listener);
            }
        }
    }

    let telemetry = Arc::new(Telemetry::new());

    // Topology-aware placement. Discovery runs *only* under --pin: the
    // unpinned daemon must make zero affinity syscalls, and discovery
    // itself reads the process affinity mask. Failure (weird sysfs, a
    // locked-down container) logs and degrades to unpinned — placement
    // is an optimisation, never a requirement.
    let placement = if config.pin {
        match crate::topo::CpuTopology::discover() {
            Ok(topo) => Some(crate::topo::plan_shards(&topo, n_shards)),
            Err(e) => {
                eprintln!(
                    "altxd: --pin requested but topology discovery failed ({e}); running unpinned"
                );
                None
            }
        }
    } else {
        None
    };

    // Stealing is what splits the pool into shard-pinned worker groups;
    // without it a single group (the classic FIFO shape) avoids ever
    // stranding capacity behind an empty group queue. Pin sets follow
    // the group shape: one core set per shard group, or the whole
    // plan's union for the single shared group.
    let groups = if config.steal { n_shards } else { 1 };
    let pin_cores = placement.as_ref().map(|plan| {
        if groups == n_shards {
            plan.shards.clone()
        } else {
            vec![plan.union()]
        }
    });
    let pool = Arc::new(WorkerPool::with_config(PoolConfig {
        workers: config.workers,
        queue_depth: config.queue_depth,
        groups,
        lanes: config.lanes.count(),
        steal: config.steal,
        lane_aging: config.lane_aging,
        spin: config.spin,
        pin_cores,
    }));
    telemetry.attach_pool(pool.stats());
    telemetry.attach_lane_names(config.lanes.names().to_vec());
    let sched = Arc::new(HedgePolicy::new(config.hedge));
    telemetry.attach_catalog(Arc::clone(sched.catalog()));
    let admission = Arc::new(Admission::new(
        config.admission,
        Arc::clone(sched.catalog()),
    ));
    let lanes = Arc::new(config.lanes.clone());
    let ctl = Arc::new(DaemonCtl::new(n_shards));

    // The peer plane exists even with no peers configured: this node
    // may still be asked to *execute* shipped alternatives, and the
    // results ride home over its own outbound (dial-on-demand) links.
    // With an empty peer list the placement never ships, so the single-
    // node request path is untouched beyond one idle thread.
    let advertise = config
        .peer
        .advertise
        .clone()
        .unwrap_or_else(|| addr.to_string());
    let peer_stats = Arc::new(PeerStatsTable::new(&config.peer.peers));
    telemetry.attach_peers(Arc::clone(&peer_stats));
    let ledger = Arc::new(CommitLedger::new());
    let races = Arc::new(RemoteRaces::new(
        Arc::clone(&telemetry),
        Arc::clone(&sched),
        Arc::clone(&ledger),
        advertise.clone(),
    ));
    let (peernet, peer_handle) = PeerNet::new(
        Arc::clone(&peer_stats),
        Arc::clone(&races),
        Arc::clone(&ledger),
        Arc::clone(&ctl),
        Arc::clone(&telemetry),
        advertise.clone(),
        &config.peer,
    )?;
    ctl.wire_peer_wake(peer_handle.clone_waker()?);
    races.wire_peers(Arc::clone(&peer_handle));
    races.wire_pool(Arc::clone(&pool));
    races.wire_self(&races);
    let plane = Arc::new(PeerPlane {
        handle: peer_handle,
        races: Arc::clone(&races),
        ledger,
        inflight: Arc::new(InflightRemote::new()),
        placement: Placement::new(config.peer.explore_every),
        advertise,
    });

    // Each reactor takes its own listener (single-shard or reuseport)
    // and accepts directly; in the acceptor fallback they get `None`
    // and adopt from their inboxes instead.
    let mut reactors = Vec::with_capacity(n_shards);
    let mut shareds = Vec::with_capacity(n_shards);
    let mut shard_stats = Vec::with_capacity(n_shards);
    for (i, own_listener) in own_listeners.iter_mut().enumerate() {
        let (reactor, shared, stats) = Reactor::new(
            own_listener.take(),
            Arc::clone(&pool),
            Arc::clone(&telemetry),
            Arc::clone(&sched),
            config.batch_window,
            Arc::clone(&ctl),
            i,
            Arc::clone(&plane),
            config.ring_slots,
            config.ring_slot_bytes,
            Arc::clone(&admission),
            Arc::clone(&lanes),
            placement.as_ref().and_then(|p| p.shards.get(i).cloned()),
        )?;
        reactors.push(reactor);
        shareds.push(shared);
        shard_stats.push(stats);
    }
    ctl.wire_shards(shareds.clone());
    races.wire_shards(shareds.clone());
    telemetry.attach_shards(shard_stats);

    let mut threads = Vec::with_capacity(n_shards + 2);
    threads.push(
        std::thread::Builder::new()
            .name("altxd-peernet".to_owned())
            .spawn(move || peernet.run())
            .expect("spawn peer thread"),
    );
    if let Some(listener) = acceptor_listener {
        let (wake_tx, wake_rx) = wake_pair()?;
        ctl.wire_acceptor(wake_tx);
        let acceptor_ctl = Arc::clone(&ctl);
        threads.push(
            std::thread::Builder::new()
                .name("altxd-acceptor".to_owned())
                .spawn(move || run_acceptor(listener, wake_rx, acceptor_ctl, shareds))
                .expect("spawn acceptor"),
        );
    }
    for (i, reactor) in reactors.into_iter().enumerate() {
        threads.push(
            std::thread::Builder::new()
                .name(format!("altxd-reactor-{i}"))
                .spawn(move || reactor.run())
                .expect("spawn reactor"),
        );
    }

    Ok(ServerHandle {
        addr,
        ctl,
        threads,
        telemetry,
    })
}

/// Binds one `SO_REUSEPORT` listener per shard on the same address.
/// The first bind resolves an ephemeral port (`:0`); siblings bind the
/// resolved address so they all share the one accept queue group.
fn bind_shard_listeners(addrs: &[SocketAddr], n_shards: usize) -> io::Result<Vec<TcpListener>> {
    let mut last_err = io::Error::new(io::ErrorKind::InvalidInput, "no address resolved");
    let first = 'bound: {
        for &a in addrs {
            match bind_reuseport(a) {
                Ok(l) => break 'bound l,
                Err(e) => last_err = e,
            }
        }
        return Err(last_err);
    };
    let resolved = first.local_addr()?;
    let mut listeners = vec![first];
    for _ in 1..n_shards {
        listeners.push(bind_reuseport(resolved)?);
    }
    for l in &listeners {
        l.set_nonblocking(true)?;
    }
    Ok(listeners)
}

/// Executes the race for one admitted request (worker context).
///
/// The scheduler is consulted for a [`LaunchPlan`](altx::engine::LaunchPlan)
/// — launch-all unless hedging is enabled and the workload's history is
/// warm — and the outcome feeds back: the winner's latency and win count
/// update the interned statistics the *next* plan reads, and the hedge
/// counters (`hedges_launched`, `hedge_wins`, `launches_suppressed`)
/// account for what the plan actually saved or spent.
pub(crate) fn run_race(
    telemetry: &Telemetry,
    sched: &HedgePolicy,
    widx: usize,
    deadline_ms: u32,
    arg: u64,
) -> Response {
    let spec = match workload::CATALOG.get(widx) {
        Some(spec) => spec,
        None => {
            telemetry.on_error();
            return Response::UnknownWorkload;
        }
    };
    // Plan before building: an alternative the scheduler prunes (near-
    // zero win rate over a warm history) is replaced by a stub at
    // construction — its real body is never built, and if the favourite
    // answers inside its envelope the stub never launches either,
    // feeding the ordinary `launches_suppressed` accounting below.
    let (plan, prune) = sched.plan_pruned(widx, spec.alternatives());
    let block = match workload::build_pruned(spec.name, arg, prune.as_deref()) {
        Some(b) => b,
        None => {
            telemetry.on_error();
            return Response::UnknownWorkload;
        }
    };
    // `deadline_ms == 0` is best-effort end to end: no cancel deadline
    // here, no EDF deadline in the run queue, and the admission gate
    // waves it through — the one documented meaning of zero.
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Duration::from_millis(u64::from(deadline_ms)))
    } else {
        CancelToken::new()
    };
    let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
    let start = Instant::now();
    let result = ThreadedEngine::new().execute_planned(&block, &mut workspace, &token, &plan);
    let latency_us = start.elapsed().as_micros() as u64;
    // Every outcome feeds the service-time table the admission gate
    // reads — timeouts included, or infeasibility could never be proven.
    sched.record_service(widx, latency_us);
    if deadline_ms > 0 && latency_us > u64::from(deadline_ms) * 1000 {
        telemetry.on_deadline_miss();
    }
    telemetry.on_alt_panics(result.panics as u64);
    telemetry.on_launches_suppressed(result.suppressed as u64);
    // Hedges that launched = those the plan held back minus those the
    // decision suppressed (saturating: under bounded engines a t=0
    // alternative can be suppressed too, but not here).
    telemetry.on_hedges_launched(plan.staggered().saturating_sub(result.suppressed) as u64);

    match (result.winner, result.value) {
        (Some(w), Some(value)) => {
            let winner_name = result
                .winner_name
                .clone()
                .unwrap_or_else(|| format!("alt{w}"));
            telemetry.on_completed(latency_us);
            sched.record_win(widx, w, latency_us);
            if !plan.offset(w).is_zero() {
                telemetry.on_hedge_win();
            }
            Response::Ok {
                winner: w as u32,
                winner_name,
                latency_us,
                value,
            }
        }
        _ if token.deadline_expired() => {
            telemetry.on_deadline_exceeded();
            Response::DeadlineExceeded { latency_us }
        }
        _ => {
            telemetry.on_error();
            Response::Error {
                message: "no alternative succeeded".to_owned(),
            }
        }
    }
}

/// Executes the *local leg* of a distributed race: every alternative
/// the placement policy did not ship, raced under the shared cancel
/// token so a remote commit eliminates it mid-flight.
///
/// Unlike [`run_race`] this records only engine-level costs (panics,
/// suppressions, hedge launches). Race-outcome accounting — completed,
/// win, deadline, error — belongs to the remote-race registry, which
/// sees local and remote legs together and records each outcome exactly
/// once at commit or failure.
pub(crate) fn run_subrace(
    telemetry: &Telemetry,
    sched: &HedgePolicy,
    widx: usize,
    arg: u64,
    token: &CancelToken,
    skip: &[bool],
) -> Response {
    let spec = match workload::CATALOG.get(widx) {
        Some(spec) => spec,
        None => return Response::UnknownWorkload,
    };
    let n = spec.alternatives();
    let (plan, prune) = sched.plan_pruned(widx, n);
    // Shipped alternatives become local stubs exactly like scheduler-
    // pruned ones; the placement policy never ships the favourite, so
    // at least one real body always stays local.
    let merged: Vec<bool> = (0..n)
        .map(|i| {
            skip.get(i).copied().unwrap_or(false)
                || prune
                    .as_deref()
                    .is_some_and(|p| p.get(i).copied().unwrap_or(false))
        })
        .collect();
    let block = match workload::build_pruned(spec.name, arg, Some(&merged)) {
        Some(b) => b,
        None => return Response::UnknownWorkload,
    };
    let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
    let start = Instant::now();
    let result = ThreadedEngine::new().execute_planned(&block, &mut workspace, token, &plan);
    let latency_us = start.elapsed().as_micros() as u64;
    telemetry.on_alt_panics(result.panics as u64);
    telemetry.on_launches_suppressed(result.suppressed as u64);
    telemetry.on_hedges_launched(plan.staggered().saturating_sub(result.suppressed) as u64);

    match (result.winner, result.value) {
        (Some(w), Some(value)) => {
            let winner_name = result
                .winner_name
                .clone()
                .unwrap_or_else(|| format!("alt{w}"));
            Response::Ok {
                winner: w as u32,
                winner_name,
                latency_us,
                value,
            }
        }
        _ if token.deadline_expired() => Response::DeadlineExceeded { latency_us },
        _ => Response::Error {
            message: "no alternative succeeded".to_owned(),
        },
    }
}

/// Executes one shipped alternative on behalf of a remote origin
/// (worker context on the *executor* node): the named alternative runs
/// alone — every sibling is a stub — under a token the origin's
/// `ELIMINATE` can cancel. Returns `(status, value, latency_us)` for
/// the `ALT_RESULT` frame.
pub(crate) fn run_remote_alt(
    telemetry: &Telemetry,
    widx: usize,
    alt_idx: u32,
    arg: u64,
    token: &CancelToken,
) -> (u8, u64, u64) {
    let Some(spec) = workload::CATALOG.get(widx) else {
        return (ALT_FAILED, 0, 0);
    };
    let n = spec.alternatives();
    let alt = alt_idx as usize;
    if alt >= n {
        return (ALT_FAILED, 0, 0);
    }
    let prune: Vec<bool> = (0..n).map(|i| i != alt).collect();
    let Some(block) = workload::build_pruned(spec.name, arg, Some(&prune)) else {
        return (ALT_FAILED, 0, 0);
    };
    let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
    let start = Instant::now();
    let result = ThreadedEngine::new().execute_planned(
        &block,
        &mut workspace,
        token,
        &LaunchPlan::immediate(n),
    );
    let latency_us = start.elapsed().as_micros() as u64;
    telemetry.on_alt_panics(result.panics as u64);
    match (result.winner, result.value) {
        (Some(w), Some(value)) if w == alt => (ALT_OK, value, latency_us),
        _ if token.deadline_expired() => (ALT_DEADLINE, 0, latency_us),
        _ => (ALT_FAILED, 0, latency_us),
    }
}
