//! The daemon: a reactor front end bridging framed requests to the
//! worker pool.
//!
//! Flow of one request: the reactor (one thread, `poll(2)` over every
//! socket — see [`crate::reactor`]) feeds inbound bytes through an
//! incremental frame decoder and tries to enqueue each decoded `RUN` on
//! the [`WorkerPool`]. If the bounded queue refuses, the request is
//! shed with an immediate `Overloaded` reply — admission control at the
//! door, not timeouts deep in the building. If admitted, a worker races
//! the workload's alternatives on a [`ThreadedEngine`] under a
//! [`CancelToken`] carrying the request's deadline — the serving
//! analogue of the paper's `alt_wait(timeout)` — and posts the reply
//! back to the reactor through a completion queue and a self-pipe
//! wakeup. Replies are released per connection in request order, so
//! pipelined requests on one socket come back in the order they were
//! sent even when a later race finishes first.
//!
//! Concurrency cost model: an idle connection is a file descriptor and
//! a few hundred bytes of state — not a thread. The daemon runs
//! O(workers + 1) OS threads (the reactor, the pool, its supervisor)
//! regardless of how many clients are connected.
//!
//! Shutdown (local call or the `SHUTDOWN` opcode) stops admissions and
//! new reads, lets every in-flight race finish and flush its reply,
//! reclaims each connection as it drains, and only then joins the pool:
//! no request that was admitted goes unanswered, and no daemon thread
//! outlives the drain.

use crate::frame::Response;
use crate::pool::WorkerPool;
use crate::reactor::{Reactor, ReactorShared};
use crate::telemetry::Telemetry;
use crate::workload;
use altx::engine::ThreadedEngine;
use altx::CancelToken;
use altx_pager::{AddressSpace, PageSize};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads racing requests.
    pub workers: usize,
    /// Bounded run-queue depth; the shed threshold.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: available_workers(),
            queue_depth: 64,
        }
    }
}

/// Worker count matched to the host (at least 2).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .max(2)
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] or send the `SHUTDOWN` opcode.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ReactorShared>,
    reactor: Option<JoinHandle<()>>,
    telemetry: Arc<Telemetry>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared telemetry, live while the daemon runs.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown and blocks until the daemon has drained every
    /// in-flight race and joined every thread.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        if let Some(h) = self.reactor.take() {
            h.join().expect("reactor exits cleanly");
        }
    }

    /// Blocks until the daemon shuts down (e.g. via the `SHUTDOWN`
    /// opcode from a client).
    pub fn wait(mut self) {
        if let Some(h) = self.reactor.take() {
            h.join().expect("reactor exits cleanly");
        }
    }
}

/// Binds and starts the daemon, returning once it is accepting.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
    let listener = TcpListener::bind(&addrs[..])?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let telemetry = Arc::new(Telemetry::new());
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
    telemetry.attach_pool(pool.stats());

    let (reactor, shared) = Reactor::new(listener, pool, Arc::clone(&telemetry))?;
    let handle = std::thread::Builder::new()
        .name("altxd-reactor".to_owned())
        .spawn(move || reactor.run())
        .expect("spawn reactor");

    Ok(ServerHandle {
        addr,
        shared,
        reactor: Some(handle),
        telemetry,
    })
}

/// Executes the race for one admitted request (worker context).
pub(crate) fn run_race(
    telemetry: &Telemetry,
    workload: &str,
    deadline_ms: u32,
    arg: u64,
) -> Response {
    let block = match workload::build(workload, arg) {
        Some(b) => b,
        None => {
            telemetry.on_error();
            return Response::UnknownWorkload;
        }
    };
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Duration::from_millis(u64::from(deadline_ms)))
    } else {
        CancelToken::new()
    };
    let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
    let start = Instant::now();
    let result = ThreadedEngine::new().execute_with_token(&block, &mut workspace, &token);
    let latency_us = start.elapsed().as_micros() as u64;
    telemetry.on_alt_panics(result.panics as u64);

    match (result.winner, result.value) {
        (Some(w), Some(value)) => {
            let winner_name = result
                .winner_name
                .clone()
                .unwrap_or_else(|| format!("alt{w}"));
            telemetry.on_completed(workload, &winner_name, latency_us);
            Response::Ok {
                winner: w as u32,
                winner_name,
                latency_us,
                value,
            }
        }
        _ if token.deadline_expired() => {
            telemetry.on_deadline_exceeded();
            Response::DeadlineExceeded { latency_us }
        }
        _ => {
            telemetry.on_error();
            Response::Error {
                message: "no alternative succeeded".to_owned(),
            }
        }
    }
}
