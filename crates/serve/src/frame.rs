//! Length-prefixed wire protocol for the speculation daemon.
//!
//! Every message is one *frame*: a 4-byte big-endian body length
//! followed by the body. Bodies are bounded by [`MAX_FRAME`]; a peer
//! announcing a larger frame is rejected before any allocation, and a
//! short read surfaces as [`FrameError::Truncated`] rather than a hang
//! or a panic.
//!
//! Request body layout (all integers big-endian):
//!
//! ```text
//! RUN:         0x01 | deadline_ms: u32 | arg: u64 | name_len: u16 | name
//! STATS:       0x02
//! PROMETHEUS:  0x03
//! SHUTDOWN:    0x04
//! CATALOG:     0x05
//! EXEC_ALT:    0x06 | race_id: u64 | alt_idx: u32 | deadline_ms: u32
//!                   | arg: u64 | name_len: u16 | workload
//!                   | origin_len: u16 | origin
//! ALT_RESULT:  0x07 | race_id: u64 | alt_idx: u32 | status: u8
//!                   | value: u64 | latency_us: u64
//! COMMIT_VOTE: 0x08 | race_id: u64 | origin_len: u16 | origin
//!                   | cand_len: u16 | candidate
//! ELIMINATE:   0x09 | race_id: u64 | origin_len: u16 | origin
//! PEER_STATS:  0x0A
//! RECONCILE:   0x0B | watermark: u64 | origin_len: u16 | origin
//! ```
//!
//! Response body layout:
//!
//! ```text
//! OK:                0x00 | winner: u32 | latency_us: u64 | value: u64
//!                         | name_len: u16 | winner_name
//! DEADLINE_EXCEEDED: 0x01 | latency_us: u64
//! OVERLOADED:        0x02
//! UNKNOWN_WORKLOAD:  0x03
//! ERROR:             0x04 | msg_len: u16 | message
//! TEXT:              0x05 | body_len: u32 | body      (STATS/PROMETHEUS)
//! VOTE:              0x06 | granted: u8 | holder_len: u16 | holder
//! ```
//!
//! Opcodes 0x06–0x0B and the VOTE status are the peering plane (see
//! `peer.rs` / `remote.rs` / `commit.rs`): `EXEC_ALT` ships one
//! alternative of a race to a peer (acked immediately; the outcome
//! comes back later as an `ALT_RESULT` request on the executor's own
//! link to the origin), `COMMIT_VOTE` asks for the voter's exclusive
//! 0–1 commit grant, `ELIMINATE` cancels a shipped alternative after
//! the race is decided, and `RECONCILE` is sent on reconnect after a
//! partition: every race the origin created with an id below the
//! watermark is decided, so the receiver cancels any zombie executions
//! and reclaims its commit-ledger slots for them. A daemon that
//! predates these opcodes answers them with a protocol `ERROR` reply
//! and keeps the connection — version skew fails loudly per request,
//! not by dropping the link.

use std::io::{self, Read, Write};

/// Upper bound on a frame body, in bytes. Large enough for any stats
/// dump, small enough that a hostile length prefix cannot OOM the
/// server.
pub const MAX_FRAME: usize = 256 * 1024;

/// Decoding failures. I/O errors are kept separate from protocol
/// violations so the server can distinguish "peer went away" from
/// "peer is speaking garbage".
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended mid-frame (or mid-header).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The body was well-framed but malformed (bad tag, short field,
    /// invalid UTF-8).
    Malformed(&'static str),
    /// The frame was well-formed but its leading opcode is not one this
    /// build knows. Unlike [`FrameError::Malformed`] the stream is
    /// *not* desynchronized — the length prefix delimited the body — so
    /// the connection can answer with a protocol error and keep going,
    /// which is how peer-version skew fails loudly instead of silently
    /// dropping links.
    UnknownOpcode(u8),
    /// Transport error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized(n) => write!(f, "oversized frame ({n} bytes > {MAX_FRAME})"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown request opcode 0x{op:02x}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Builds the 4-byte length prefix for a frame body of `len` bytes.
/// This is the **one** MAX_FRAME check every encode path shares —
/// [`write_frame`] for streaming writers and [`append_frame`] for
/// in-place encoding both route through it, so the bound is enforced in
/// release builds no matter which path produced the frame. A body over
/// [`MAX_FRAME`] is refused with `InvalidInput`: the peer would reject
/// it anyway, and a half-written oversized frame would desynchronize
/// the stream for good.
pub fn frame_header(body_len: usize) -> io::Result<[u8; 4]> {
    if body_len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {body_len} bytes exceeds MAX_FRAME"),
        ));
    }
    Ok((body_len as u32).to_be_bytes())
}

/// Writes one frame (length prefix + body) to a streaming writer.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let header = frame_header(body.len())?;
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()
}

/// Appends one whole frame to `out` *in place*: a 4-byte placeholder is
/// reserved, `fill` encodes the body directly after it, and the real
/// length prefix is patched in afterwards. This is how a reply reaches
/// its ring slot without an intermediate body buffer — header and body
/// are laid out contiguously where the socket write will read them.
/// On a [`MAX_FRAME`] violation `out` is rolled back to its original
/// length and the shared [`frame_header`] error is returned.
pub fn append_frame(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) -> io::Result<usize> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    fill(out);
    let body_len = out.len() - start - 4;
    match frame_header(body_len) {
        Ok(header) => {
            out[start..start + 4].copy_from_slice(&header);
            Ok(4 + body_len)
        }
        Err(e) => {
            out.truncate(start);
            Err(e)
        }
    }
}

/// Reads one frame body. `Ok(None)` means the peer closed the
/// connection cleanly *between* frames.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // A clean EOF before any header byte is a normal disconnect.
    match r.read(&mut header) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut header[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => r.read_exact(&mut header)?,
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Incremental, resumable frame decoder for non-blocking transports.
///
/// The blocking [`read_frame`] owns the stream until a whole frame
/// arrives — fine for one thread per connection, useless for a reactor
/// that must never wait. `FrameDecoder` inverts the control flow: feed
/// it whatever bytes the socket had ([`FrameDecoder::extend`]), then
/// drain complete bodies with [`FrameDecoder::next_frame`]. Partial
/// headers and partial bodies are buffered across calls, so a frame
/// split across any number of reads decodes identically to one that
/// arrived whole.
///
/// An oversized length prefix is rejected as soon as the 4 header
/// bytes are visible — before the announced body is buffered — with
/// the same [`FrameError::Oversized`] the blocking path returns.
///
/// Internally the decoder is a buffer plus a *read cursor*. Consuming a
/// frame only advances the cursor; the consumed prefix is reclaimed
/// lazily — all at once when the buffer fully drains (the common case:
/// `buf.clear()`, free), or by a single memmove once the dead prefix
/// dominates the buffer. A pipelined burst of k frames therefore costs
/// O(bytes) total, not the O(k · bytes) it would cost to memmove the
/// tail after every frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `pos` belong to already-consumed frames.
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame body, `Ok(None)` if more bytes are
    /// needed. After an `Err` the stream is desynchronized and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut body = Vec::new();
        Ok(self.next_frame_into(&mut body)?.then_some(body))
    }

    /// Like [`FrameDecoder::next_frame`], but appends the body into a
    /// caller-supplied buffer (typically recycled from a pool) instead
    /// of allocating. Returns `Ok(true)` when a frame was written to
    /// `out`, `Ok(false)` when more bytes are needed (`out` untouched).
    pub fn next_frame_into(&mut self, out: &mut Vec<u8>) -> Result<bool, FrameError> {
        if self.buffered() < 4 {
            return Ok(false);
        }
        let header = &self.buf[self.pos..self.pos + 4];
        let len = u32::from_be_bytes(header.try_into().expect("len 4")) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        if self.buffered() < 4 + len {
            return Ok(false);
        }
        out.extend_from_slice(&self.buf[self.pos + 4..self.pos + 4 + len]);
        self.pos += 4 + len;
        self.compact();
        Ok(true)
    }

    /// Reclaims the consumed prefix, amortized: free when the buffer is
    /// fully drained, one memmove when dead bytes are both sizeable and
    /// the majority of the buffer.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Call at EOF: leftover bytes mean the peer died mid-frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.buffered() == 0 {
            Ok(())
        } else {
            Err(FrameError::Truncated)
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Race the named workload's alternatives; reply with the winner.
    Run {
        /// Registered workload name.
        workload: String,
        /// Per-request deadline in milliseconds; `0` means unbounded.
        deadline_ms: u32,
        /// Workload argument (problem size, RNG seed — workload-defined).
        arg: u64,
    },
    /// Human-readable counter dump.
    Stats,
    /// Prometheus text-format metrics.
    Prometheus,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// The workload catalog plus what the scheduler has learned
    /// (favourite alternative and win rates per workload).
    Catalog,
    /// Peer plane: run *one* alternative of a race on this node. The
    /// immediate reply only acks admission (`Text` or `Overloaded`);
    /// the outcome travels back as an [`Request::AltResult`] on the
    /// executor's own link to `origin`.
    ExecAlt {
        /// Race identifier, unique within the origin node.
        race_id: u64,
        /// Which alternative of the workload to run.
        alt_idx: u32,
        /// Deadline inherited from the client request (0 = unbounded).
        deadline_ms: u32,
        /// Workload argument.
        arg: u64,
        /// Registered workload name.
        workload: String,
        /// The origin node's advertised peer address — where the
        /// result and any elimination bookkeeping go back to.
        origin: String,
    },
    /// Peer plane: the outcome of a shipped alternative, sent by the
    /// executor to the race's origin.
    AltResult {
        /// Race identifier (the origin's id space).
        race_id: u64,
        /// Which alternative this outcome belongs to.
        alt_idx: u32,
        /// One of [`ALT_OK`], [`ALT_FAILED`], [`ALT_DEADLINE`].
        status: u8,
        /// The alternative's value (meaningful only for [`ALT_OK`]).
        value: u64,
        /// Executor-side latency in microseconds.
        latency_us: u64,
    },
    /// Peer plane: request this node's exclusive 0–1 commit vote for
    /// `candidate` in race `(origin, race_id)`. Answered with
    /// [`Response::Vote`].
    CommitVote {
        /// Race identifier (the origin's id space).
        race_id: u64,
        /// The origin node's advertised peer address (scopes the id).
        origin: String,
        /// Candidate identity, e.g. `"host:port/alt2"`.
        candidate: String,
    },
    /// Peer plane: the race is decided — cancel any alternative of
    /// `(origin, race_id)` still running here.
    Eliminate {
        /// Race identifier (the origin's id space).
        race_id: u64,
        /// The origin node's advertised peer address (scopes the id).
        origin: String,
    },
    /// Peer plane: the node's per-peer link table (text).
    PeerStats,
    /// Peer plane: partition-heal reconciliation. Every race `origin`
    /// created with `race_id < watermark` is decided — cancel any of
    /// their alternatives still running here and drop their commit
    /// grants.
    Reconcile {
        /// First race id that may still be open at the origin.
        watermark: u64,
        /// The origin node's advertised peer address (scopes the ids).
        origin: String,
    },
}

/// `AltResult` status: the alternative succeeded with a value.
pub const ALT_OK: u8 = 0;
/// `AltResult` status: the alternative's guard failed (or it panicked).
pub const ALT_FAILED: u8 = 1;
/// `AltResult` status: the deadline expired before the alternative
/// finished.
pub const ALT_DEADLINE: u8 = 2;

const OP_RUN: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_PROMETHEUS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_CATALOG: u8 = 0x05;
const OP_EXEC_ALT: u8 = 0x06;
const OP_ALT_RESULT: u8 = 0x07;
const OP_COMMIT_VOTE: u8 = 0x08;
const OP_ELIMINATE: u8 = 0x09;
const OP_PEER_STATS: u8 = 0x0A;
const OP_RECONCILE: u8 = 0x0B;

impl Request {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Run {
                workload,
                deadline_ms,
                arg,
            } => {
                let name = workload.as_bytes();
                let mut b = Vec::with_capacity(15 + name.len());
                b.push(OP_RUN);
                b.extend_from_slice(&deadline_ms.to_be_bytes());
                b.extend_from_slice(&arg.to_be_bytes());
                b.extend_from_slice(&(name.len() as u16).to_be_bytes());
                b.extend_from_slice(name);
                b
            }
            Request::Stats => vec![OP_STATS],
            Request::Prometheus => vec![OP_PROMETHEUS],
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::Catalog => vec![OP_CATALOG],
            Request::ExecAlt {
                race_id,
                alt_idx,
                deadline_ms,
                arg,
                workload,
                origin,
            } => {
                let name = workload.as_bytes();
                let from = origin.as_bytes();
                let mut b = Vec::with_capacity(29 + name.len() + from.len());
                b.push(OP_EXEC_ALT);
                b.extend_from_slice(&race_id.to_be_bytes());
                b.extend_from_slice(&alt_idx.to_be_bytes());
                b.extend_from_slice(&deadline_ms.to_be_bytes());
                b.extend_from_slice(&arg.to_be_bytes());
                b.extend_from_slice(&(name.len() as u16).to_be_bytes());
                b.extend_from_slice(name);
                b.extend_from_slice(&(from.len() as u16).to_be_bytes());
                b.extend_from_slice(from);
                b
            }
            Request::AltResult {
                race_id,
                alt_idx,
                status,
                value,
                latency_us,
            } => {
                let mut b = Vec::with_capacity(30);
                b.push(OP_ALT_RESULT);
                b.extend_from_slice(&race_id.to_be_bytes());
                b.extend_from_slice(&alt_idx.to_be_bytes());
                b.push(*status);
                b.extend_from_slice(&value.to_be_bytes());
                b.extend_from_slice(&latency_us.to_be_bytes());
                b
            }
            Request::CommitVote {
                race_id,
                origin,
                candidate,
            } => {
                let from = origin.as_bytes();
                let cand = candidate.as_bytes();
                let mut b = Vec::with_capacity(13 + from.len() + cand.len());
                b.push(OP_COMMIT_VOTE);
                b.extend_from_slice(&race_id.to_be_bytes());
                b.extend_from_slice(&(from.len() as u16).to_be_bytes());
                b.extend_from_slice(from);
                b.extend_from_slice(&(cand.len() as u16).to_be_bytes());
                b.extend_from_slice(cand);
                b
            }
            Request::Eliminate { race_id, origin } => {
                let from = origin.as_bytes();
                let mut b = Vec::with_capacity(11 + from.len());
                b.push(OP_ELIMINATE);
                b.extend_from_slice(&race_id.to_be_bytes());
                b.extend_from_slice(&(from.len() as u16).to_be_bytes());
                b.extend_from_slice(from);
                b
            }
            Request::PeerStats => vec![OP_PEER_STATS],
            Request::Reconcile { watermark, origin } => {
                let from = origin.as_bytes();
                let mut b = Vec::with_capacity(11 + from.len());
                b.push(OP_RECONCILE);
                b.extend_from_slice(&watermark.to_be_bytes());
                b.extend_from_slice(&(from.len() as u16).to_be_bytes());
                b.extend_from_slice(from);
                b
            }
        }
    }

    /// Parses a frame body.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_RUN => {
                let deadline_ms = c.u32()?;
                let arg = c.u64()?;
                let name_len = c.u16()? as usize;
                let workload = c.str(name_len)?;
                Request::Run {
                    workload,
                    deadline_ms,
                    arg,
                }
            }
            OP_STATS => Request::Stats,
            OP_PROMETHEUS => Request::Prometheus,
            OP_SHUTDOWN => Request::Shutdown,
            OP_CATALOG => Request::Catalog,
            OP_EXEC_ALT => {
                let race_id = c.u64()?;
                let alt_idx = c.u32()?;
                let deadline_ms = c.u32()?;
                let arg = c.u64()?;
                let name_len = c.u16()? as usize;
                let workload = c.str(name_len)?;
                let origin_len = c.u16()? as usize;
                let origin = c.str(origin_len)?;
                Request::ExecAlt {
                    race_id,
                    alt_idx,
                    deadline_ms,
                    arg,
                    workload,
                    origin,
                }
            }
            OP_ALT_RESULT => {
                let race_id = c.u64()?;
                let alt_idx = c.u32()?;
                let status = c.u8()?;
                if status > ALT_DEADLINE {
                    return Err(FrameError::Malformed("bad alt-result status"));
                }
                Request::AltResult {
                    race_id,
                    alt_idx,
                    status,
                    value: c.u64()?,
                    latency_us: c.u64()?,
                }
            }
            OP_COMMIT_VOTE => {
                let race_id = c.u64()?;
                let origin_len = c.u16()? as usize;
                let origin = c.str(origin_len)?;
                let cand_len = c.u16()? as usize;
                let candidate = c.str(cand_len)?;
                Request::CommitVote {
                    race_id,
                    origin,
                    candidate,
                }
            }
            OP_ELIMINATE => {
                let race_id = c.u64()?;
                let origin_len = c.u16()? as usize;
                let origin = c.str(origin_len)?;
                Request::Eliminate { race_id, origin }
            }
            OP_PEER_STATS => Request::PeerStats,
            OP_RECONCILE => {
                let watermark = c.u64()?;
                let origin_len = c.u16()? as usize;
                let origin = c.str(origin_len)?;
                Request::Reconcile { watermark, origin }
            }
            op => return Err(FrameError::UnknownOpcode(op)),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The race completed; the first successful alternative's result.
    Ok {
        /// Index of the winning alternative within its workload.
        winner: u32,
        /// Name of the winning alternative.
        winner_name: String,
        /// Server-side latency, microseconds.
        latency_us: u64,
        /// The winning value.
        value: u64,
    },
    /// The deadline expired before any alternative succeeded.
    DeadlineExceeded {
        /// Server-side latency, microseconds.
        latency_us: u64,
    },
    /// The run queue was full; the request was shed without executing.
    Overloaded,
    /// No workload registered under the requested name.
    UnknownWorkload,
    /// The race failed for a non-deadline reason.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Textual payload (stats / metrics dumps, shutdown ack).
    Text {
        /// The text body.
        body: String,
    },
    /// Peer plane: the reply to a [`Request::CommitVote`] — whether
    /// this voter's exclusive 0–1 grant went to the asking candidate.
    Vote {
        /// True when the vote was granted (first request for the race,
        /// or a re-request by the same holder).
        granted: bool,
        /// Who holds the vote after this request (the candidate it was
        /// first granted to).
        holder: String,
    },
}

const ST_OK: u8 = 0x00;
const ST_DEADLINE: u8 = 0x01;
const ST_OVERLOADED: u8 = 0x02;
const ST_UNKNOWN: u8 = 0x03;
const ST_ERROR: u8 = 0x04;
const ST_TEXT: u8 = 0x05;
const ST_VOTE: u8 = 0x06;

impl Response {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        self.encode_into(&mut b);
        b
    }

    /// Serializes into a caller-supplied buffer (typically recycled
    /// from a pool), appending the frame body to whatever it holds.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        match self {
            Response::Ok {
                winner,
                winner_name,
                latency_us,
                value,
            } => {
                let name = winner_name.as_bytes();
                b.reserve(23 + name.len());
                b.push(ST_OK);
                b.extend_from_slice(&winner.to_be_bytes());
                b.extend_from_slice(&latency_us.to_be_bytes());
                b.extend_from_slice(&value.to_be_bytes());
                b.extend_from_slice(&(name.len() as u16).to_be_bytes());
                b.extend_from_slice(name);
            }
            Response::DeadlineExceeded { latency_us } => {
                b.push(ST_DEADLINE);
                b.extend_from_slice(&latency_us.to_be_bytes());
            }
            Response::Overloaded => b.push(ST_OVERLOADED),
            Response::UnknownWorkload => b.push(ST_UNKNOWN),
            Response::Error { message } => {
                let msg = message.as_bytes();
                let msg = &msg[..msg.len().min(u16::MAX as usize)];
                b.push(ST_ERROR);
                b.extend_from_slice(&(msg.len() as u16).to_be_bytes());
                b.extend_from_slice(msg);
            }
            Response::Text { body } => {
                let text = body.as_bytes();
                b.push(ST_TEXT);
                b.extend_from_slice(&(text.len() as u32).to_be_bytes());
                b.extend_from_slice(text);
            }
            Response::Vote { granted, holder } => {
                let who = holder.as_bytes();
                b.reserve(4 + who.len());
                b.push(ST_VOTE);
                b.push(u8::from(*granted));
                b.extend_from_slice(&(who.len() as u16).to_be_bytes());
                b.extend_from_slice(who);
            }
        }
    }

    /// Exact serialized body length, byte-for-byte what
    /// [`Response::encode_into`] appends. The ring data plane sizes a
    /// slot reservation from this *before* encoding, so the choice
    /// between a ring slot and a heap spill is made without a throwaway
    /// encode pass.
    pub fn encoded_len(&self) -> usize {
        match self {
            Response::Ok { winner_name, .. } => 23 + winner_name.len(),
            Response::DeadlineExceeded { .. } => 9,
            Response::Overloaded | Response::UnknownWorkload => 1,
            Response::Error { message } => 3 + message.len().min(u16::MAX as usize),
            Response::Text { body } => 5 + body.len(),
            Response::Vote { holder, .. } => 4 + holder.len(),
        }
    }

    /// Parses a frame body.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            ST_OK => {
                let winner = c.u32()?;
                let latency_us = c.u64()?;
                let value = c.u64()?;
                let name_len = c.u16()? as usize;
                let winner_name = c.str(name_len)?;
                Response::Ok {
                    winner,
                    winner_name,
                    latency_us,
                    value,
                }
            }
            ST_DEADLINE => Response::DeadlineExceeded {
                latency_us: c.u64()?,
            },
            ST_OVERLOADED => Response::Overloaded,
            ST_UNKNOWN => Response::UnknownWorkload,
            ST_ERROR => {
                let len = c.u16()? as usize;
                Response::Error {
                    message: c.str(len)?,
                }
            }
            ST_TEXT => {
                let len = c.u32()? as usize;
                Response::Text { body: c.str(len)? }
            }
            ST_VOTE => {
                let granted = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Malformed("bad vote flag")),
                };
                let len = c.u16()? as usize;
                Response::Vote {
                    granted,
                    holder: c.str(len)?,
                }
            }
            op => return Err(FrameError::UnknownOpcode(op)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Tiny bounds-checked reader over a frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(FrameError::Malformed("field past end of body"))?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn str(&mut self, n: usize) -> Result<String, FrameError> {
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| FrameError::Malformed("invalid utf-8"))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after message"))
        }
    }
}
