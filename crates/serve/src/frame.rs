//! Length-prefixed wire protocol for the speculation daemon.
//!
//! Every message is one *frame*: a 4-byte big-endian body length
//! followed by the body. Bodies are bounded by [`MAX_FRAME`]; a peer
//! announcing a larger frame is rejected before any allocation, and a
//! short read surfaces as [`FrameError::Truncated`] rather than a hang
//! or a panic.
//!
//! Request body layout (all integers big-endian):
//!
//! ```text
//! RUN:        0x01 | deadline_ms: u32 | arg: u64 | name_len: u16 | name
//! STATS:      0x02
//! PROMETHEUS: 0x03
//! SHUTDOWN:   0x04
//! CATALOG:    0x05
//! ```
//!
//! Response body layout:
//!
//! ```text
//! OK:                0x00 | winner: u32 | latency_us: u64 | value: u64
//!                         | name_len: u16 | winner_name
//! DEADLINE_EXCEEDED: 0x01 | latency_us: u64
//! OVERLOADED:        0x02
//! UNKNOWN_WORKLOAD:  0x03
//! ERROR:             0x04 | msg_len: u16 | message
//! TEXT:              0x05 | body_len: u32 | body      (STATS/PROMETHEUS)
//! ```

use std::io::{self, Read, Write};

/// Upper bound on a frame body, in bytes. Large enough for any stats
/// dump, small enough that a hostile length prefix cannot OOM the
/// server.
pub const MAX_FRAME: usize = 256 * 1024;

/// Decoding failures. I/O errors are kept separate from protocol
/// violations so the server can distinguish "peer went away" from
/// "peer is speaking garbage".
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended mid-frame (or mid-header).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The body was well-framed but malformed (bad tag, short field,
    /// invalid UTF-8).
    Malformed(&'static str),
    /// Transport error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized(n) => write!(f, "oversized frame ({n} bytes > {MAX_FRAME})"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes one frame (length prefix + body). A body over [`MAX_FRAME`]
/// is refused with `InvalidInput` before any byte hits the wire — the
/// peer would reject it anyway, and a half-written oversized frame
/// would desynchronize the stream for good.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds MAX_FRAME", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body. `Ok(None)` means the peer closed the
/// connection cleanly *between* frames.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // A clean EOF before any header byte is a normal disconnect.
    match r.read(&mut header) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut header[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => r.read_exact(&mut header)?,
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Incremental, resumable frame decoder for non-blocking transports.
///
/// The blocking [`read_frame`] owns the stream until a whole frame
/// arrives — fine for one thread per connection, useless for a reactor
/// that must never wait. `FrameDecoder` inverts the control flow: feed
/// it whatever bytes the socket had ([`FrameDecoder::extend`]), then
/// drain complete bodies with [`FrameDecoder::next_frame`]. Partial
/// headers and partial bodies are buffered across calls, so a frame
/// split across any number of reads decodes identically to one that
/// arrived whole.
///
/// An oversized length prefix is rejected as soon as the 4 header
/// bytes are visible — before the announced body is buffered — with
/// the same [`FrameError::Oversized`] the blocking path returns.
///
/// Internally the decoder is a buffer plus a *read cursor*. Consuming a
/// frame only advances the cursor; the consumed prefix is reclaimed
/// lazily — all at once when the buffer fully drains (the common case:
/// `buf.clear()`, free), or by a single memmove once the dead prefix
/// dominates the buffer. A pipelined burst of k frames therefore costs
/// O(bytes) total, not the O(k · bytes) it would cost to memmove the
/// tail after every frame.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `pos` belong to already-consumed frames.
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame body, `Ok(None)` if more bytes are
    /// needed. After an `Err` the stream is desynchronized and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut body = Vec::new();
        Ok(self.next_frame_into(&mut body)?.then_some(body))
    }

    /// Like [`FrameDecoder::next_frame`], but appends the body into a
    /// caller-supplied buffer (typically recycled from a pool) instead
    /// of allocating. Returns `Ok(true)` when a frame was written to
    /// `out`, `Ok(false)` when more bytes are needed (`out` untouched).
    pub fn next_frame_into(&mut self, out: &mut Vec<u8>) -> Result<bool, FrameError> {
        if self.buffered() < 4 {
            return Ok(false);
        }
        let header = &self.buf[self.pos..self.pos + 4];
        let len = u32::from_be_bytes(header.try_into().expect("len 4")) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        if self.buffered() < 4 + len {
            return Ok(false);
        }
        out.extend_from_slice(&self.buf[self.pos + 4..self.pos + 4 + len]);
        self.pos += 4 + len;
        self.compact();
        Ok(true)
    }

    /// Reclaims the consumed prefix, amortized: free when the buffer is
    /// fully drained, one memmove when dead bytes are both sizeable and
    /// the majority of the buffer.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Call at EOF: leftover bytes mean the peer died mid-frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.buffered() == 0 {
            Ok(())
        } else {
            Err(FrameError::Truncated)
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Race the named workload's alternatives; reply with the winner.
    Run {
        /// Registered workload name.
        workload: String,
        /// Per-request deadline in milliseconds; `0` means unbounded.
        deadline_ms: u32,
        /// Workload argument (problem size, RNG seed — workload-defined).
        arg: u64,
    },
    /// Human-readable counter dump.
    Stats,
    /// Prometheus text-format metrics.
    Prometheus,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// The workload catalog plus what the scheduler has learned
    /// (favourite alternative and win rates per workload).
    Catalog,
}

const OP_RUN: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_PROMETHEUS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_CATALOG: u8 = 0x05;

impl Request {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Run {
                workload,
                deadline_ms,
                arg,
            } => {
                let name = workload.as_bytes();
                let mut b = Vec::with_capacity(15 + name.len());
                b.push(OP_RUN);
                b.extend_from_slice(&deadline_ms.to_be_bytes());
                b.extend_from_slice(&arg.to_be_bytes());
                b.extend_from_slice(&(name.len() as u16).to_be_bytes());
                b.extend_from_slice(name);
                b
            }
            Request::Stats => vec![OP_STATS],
            Request::Prometheus => vec![OP_PROMETHEUS],
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::Catalog => vec![OP_CATALOG],
        }
    }

    /// Parses a frame body.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_RUN => {
                let deadline_ms = c.u32()?;
                let arg = c.u64()?;
                let name_len = c.u16()? as usize;
                let workload = c.str(name_len)?;
                Request::Run {
                    workload,
                    deadline_ms,
                    arg,
                }
            }
            OP_STATS => Request::Stats,
            OP_PROMETHEUS => Request::Prometheus,
            OP_SHUTDOWN => Request::Shutdown,
            OP_CATALOG => Request::Catalog,
            _ => return Err(FrameError::Malformed("unknown request opcode")),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The race completed; the first successful alternative's result.
    Ok {
        /// Index of the winning alternative within its workload.
        winner: u32,
        /// Name of the winning alternative.
        winner_name: String,
        /// Server-side latency, microseconds.
        latency_us: u64,
        /// The winning value.
        value: u64,
    },
    /// The deadline expired before any alternative succeeded.
    DeadlineExceeded {
        /// Server-side latency, microseconds.
        latency_us: u64,
    },
    /// The run queue was full; the request was shed without executing.
    Overloaded,
    /// No workload registered under the requested name.
    UnknownWorkload,
    /// The race failed for a non-deadline reason.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Textual payload (stats / metrics dumps, shutdown ack).
    Text {
        /// The text body.
        body: String,
    },
}

const ST_OK: u8 = 0x00;
const ST_DEADLINE: u8 = 0x01;
const ST_OVERLOADED: u8 = 0x02;
const ST_UNKNOWN: u8 = 0x03;
const ST_ERROR: u8 = 0x04;
const ST_TEXT: u8 = 0x05;

impl Response {
    /// Serializes into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        self.encode_into(&mut b);
        b
    }

    /// Serializes into a caller-supplied buffer (typically recycled
    /// from a pool), appending the frame body to whatever it holds.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        match self {
            Response::Ok {
                winner,
                winner_name,
                latency_us,
                value,
            } => {
                let name = winner_name.as_bytes();
                b.reserve(23 + name.len());
                b.push(ST_OK);
                b.extend_from_slice(&winner.to_be_bytes());
                b.extend_from_slice(&latency_us.to_be_bytes());
                b.extend_from_slice(&value.to_be_bytes());
                b.extend_from_slice(&(name.len() as u16).to_be_bytes());
                b.extend_from_slice(name);
            }
            Response::DeadlineExceeded { latency_us } => {
                b.push(ST_DEADLINE);
                b.extend_from_slice(&latency_us.to_be_bytes());
            }
            Response::Overloaded => b.push(ST_OVERLOADED),
            Response::UnknownWorkload => b.push(ST_UNKNOWN),
            Response::Error { message } => {
                let msg = message.as_bytes();
                let msg = &msg[..msg.len().min(u16::MAX as usize)];
                b.push(ST_ERROR);
                b.extend_from_slice(&(msg.len() as u16).to_be_bytes());
                b.extend_from_slice(msg);
            }
            Response::Text { body } => {
                let text = body.as_bytes();
                b.push(ST_TEXT);
                b.extend_from_slice(&(text.len() as u32).to_be_bytes());
                b.extend_from_slice(text);
            }
        }
    }

    /// Parses a frame body.
    pub fn decode(body: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            ST_OK => {
                let winner = c.u32()?;
                let latency_us = c.u64()?;
                let value = c.u64()?;
                let name_len = c.u16()? as usize;
                let winner_name = c.str(name_len)?;
                Response::Ok {
                    winner,
                    winner_name,
                    latency_us,
                    value,
                }
            }
            ST_DEADLINE => Response::DeadlineExceeded {
                latency_us: c.u64()?,
            },
            ST_OVERLOADED => Response::Overloaded,
            ST_UNKNOWN => Response::UnknownWorkload,
            ST_ERROR => {
                let len = c.u16()? as usize;
                Response::Error {
                    message: c.str(len)?,
                }
            }
            ST_TEXT => {
                let len = c.u32()? as usize;
                Response::Text { body: c.str(len)? }
            }
            _ => return Err(FrameError::Malformed("unknown response status")),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Tiny bounds-checked reader over a frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(FrameError::Malformed("field past end of body"))?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn str(&mut self, n: usize) -> Result<String, FrameError> {
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| FrameError::Malformed("invalid utf-8"))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after message"))
        }
    }
}
