//! The wire-backed majority 0–1 commit semaphore.
//!
//! The paper (§3.2.1, after Thomas 1979) makes cross-machine
//! elimination at-most-once with a majority-consensus 0–1 semaphore:
//! every node holds exactly one **exclusive, unrevocable** vote per
//! race, a finisher commits only after collecting a majority of the
//! votes, and because two candidates cannot both assemble a majority of
//! exclusive grants, at most one winner ever commits — even when nodes
//! crash or messages are lost mid-race. `altx-consensus` proves the
//! rule out under a simulated clock; this module is the same voter rule
//! carried by real frames (`COMMIT_VOTE` / `VOTE`, see
//! [`crate::frame`]).
//!
//! Two halves:
//!
//! * [`CommitLedger`] — the **voter** side every peered daemon runs:
//!   one grant slot per `(origin, race_id)`, granted to the first
//!   candidate that asks and re-granted only to that same holder.
//! * [`VoteTally`] — the **proposer** side the race origin runs: counts
//!   grants and denials against the majority threshold of the voter set
//!   frozen when the race started, and reports when the round is
//!   decided — or when enough voters died that a majority can never
//!   assemble and the origin must degrade.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One node's vote slots, keyed by `(origin address, race id)` so
/// concurrent races from different origins can never collide even if
/// their locally-assigned race ids do.
#[derive(Debug, Default)]
pub struct CommitLedger {
    slots: Mutex<HashMap<(String, u64), Grant>>,
    granted: AtomicU64,
    denied: AtomicU64,
}

#[derive(Debug)]
struct Grant {
    holder: String,
    at: Instant,
}

impl CommitLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests this node's vote for `candidate` in race `(origin,
    /// race_id)`. Returns `(granted, holder)`: the vote is granted to
    /// the first candidate that asks and to the *same* candidate on a
    /// re-request (retries after partial failure are idempotent); any
    /// other candidate is denied for as long as the slot lives. The
    /// grant is never revoked — that unrevocability is what makes a
    /// majority of grants imply at most one committed winner.
    pub fn vote(&self, origin: &str, race_id: u64, candidate: &str) -> (bool, String) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = slots
            .entry((origin.to_owned(), race_id))
            .or_insert_with(|| Grant {
                holder: candidate.to_owned(),
                at: Instant::now(),
            });
        let granted = slot.holder == candidate;
        if granted {
            self.granted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.denied.fetch_add(1, Ordering::Relaxed);
        }
        (granted, slot.holder.clone())
    }

    /// Votes granted (including idempotent re-grants).
    pub fn votes_granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Votes denied (slot already held by another candidate).
    pub fn votes_denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }

    /// Partition-heal resync: a reconnecting origin advertises its
    /// lowest still-open race id; every slot this node holds for that
    /// origin below the watermark belongs to a race already decided,
    /// so dropping the grant cannot enable a double-commit. Returns
    /// how many slots were dropped.
    pub fn reconcile(&self, origin: &str, watermark: u64) -> usize {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let before = slots.len();
        slots.retain(|(o, id), _| o != origin || *id >= watermark);
        before - slots.len()
    }

    /// Drops slots older than `ttl`. Races are short-lived; the slot
    /// only has to outlive any late retry for its race, so a sweep with
    /// a generous TTL keeps the ledger bounded without risking a
    /// double-grant inside a race's lifetime.
    pub fn sweep(&self, ttl: Duration) {
        let now = Instant::now();
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|_, g| now.duration_since(g.at) < ttl);
    }

    /// Live grant slots (test/diagnostic hook).
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no grant slot is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The proposer's view of one commit round: grants collected against
/// the majority threshold of a voter set that was frozen when the race
/// was created (self plus every peer that was up). Freezing the set is
/// what keeps the threshold meaningful when a voter dies mid-round —
/// the dead peer's vote simply converts to a denial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteTally {
    voters: usize,
    granted: usize,
    denied: usize,
}

/// Where a commit round stands after the latest vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TallyState {
    /// Votes are still outstanding and both outcomes remain possible.
    Undecided,
    /// A majority of the frozen voter set granted: the candidate is
    /// committed, at most once cluster-wide.
    Committed,
    /// Enough voters denied (or died) that a majority can never
    /// assemble. The origin must degrade: the paper's answer is to
    /// block, the serving layer's is to answer anyway and record it.
    Unreachable,
}

impl VoteTally {
    /// A tally over `voters` total voters (self included), with the
    /// proposer's own self-grant already counted when `self_granted`.
    pub fn new(voters: usize, self_granted: bool) -> Self {
        VoteTally {
            voters: voters.max(1),
            granted: usize::from(self_granted),
            denied: 0,
        }
    }

    /// Majority threshold: `n/2 + 1` of the frozen voter set.
    pub fn majority(&self) -> usize {
        self.voters / 2 + 1
    }

    /// Records one granted vote.
    pub fn grant(&mut self) {
        self.granted += 1;
    }

    /// Records one denial — an explicit `granted: false` reply, or a
    /// voter that died before answering (same effect: that vote can no
    /// longer contribute to a majority).
    pub fn deny(&mut self) {
        self.denied += 1;
    }

    /// Votes neither granted nor denied yet.
    pub fn pending(&self) -> usize {
        self.voters.saturating_sub(self.granted + self.denied)
    }

    /// Votes granted so far.
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Where the round stands.
    pub fn state(&self) -> TallyState {
        if self.granted >= self.majority() {
            TallyState::Committed
        } else if self.granted + self.pending() < self.majority() {
            TallyState::Unreachable
        } else {
            TallyState::Undecided
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_candidate_gets_the_vote_and_keeps_it() {
        let ledger = CommitLedger::new();
        let (granted, holder) = ledger.vote("a:1", 7, "a:1/alt0");
        assert!(granted);
        assert_eq!(holder, "a:1/alt0");
        // Re-request by the same holder is idempotent.
        let (granted, _) = ledger.vote("a:1", 7, "a:1/alt0");
        assert!(granted);
        // Any other candidate is denied, and told who holds it.
        let (granted, holder) = ledger.vote("a:1", 7, "b:2/alt1");
        assert!(!granted);
        assert_eq!(holder, "a:1/alt0");
        assert_eq!(ledger.votes_granted(), 2);
        assert_eq!(ledger.votes_denied(), 1);
    }

    #[test]
    fn race_ids_are_scoped_by_origin() {
        let ledger = CommitLedger::new();
        assert!(ledger.vote("a:1", 7, "a:1/alt0").0);
        // Same race id from a different origin is a different slot.
        assert!(ledger.vote("b:2", 7, "b:2/alt3").0);
        assert_eq!(ledger.len(), 2);
    }

    /// The at-most-once property under contention: many threads racing
    /// distinct candidates for one slot — exactly one is ever granted.
    #[test]
    fn concurrent_votes_grant_exactly_one_candidate() {
        let ledger = Arc::new(CommitLedger::new());
        let winners: Vec<String> = (0..8)
            .map(|i| {
                let ledger = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    let cand = format!("node{i}/alt{i}");
                    let (granted, holder) = ledger.vote("origin:9", 42, &cand);
                    assert_eq!(granted, holder == cand);
                    holder
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("voter thread"))
            .collect();
        // Every thread observed the same holder.
        assert!(winners.windows(2).all(|w| w[0] == w[1]), "{winners:?}");
        assert_eq!(ledger.votes_granted(), 1);
        assert_eq!(ledger.votes_denied(), 7);
    }

    #[test]
    fn reconcile_drops_only_the_origin_slots_below_the_watermark() {
        let ledger = CommitLedger::new();
        ledger.vote("a:1", 1, "x");
        ledger.vote("a:1", 5, "y");
        ledger.vote("b:2", 1, "z");
        assert_eq!(ledger.reconcile("a:1", 5), 1, "only a:1/1 is below");
        assert_eq!(ledger.len(), 2);
        // The surviving slot still enforces its grant.
        let (granted, _) = ledger.vote("a:1", 5, "other");
        assert!(!granted, "a:1/5 survived the reconcile");
        assert_eq!(ledger.reconcile("a:1", 100), 1);
        assert_eq!(ledger.len(), 1, "b:2 is untouched");
    }

    #[test]
    fn sweep_reclaims_old_slots() {
        let ledger = CommitLedger::new();
        ledger.vote("a:1", 1, "x");
        ledger.vote("a:1", 2, "y");
        assert_eq!(ledger.len(), 2);
        ledger.sweep(Duration::from_secs(600));
        assert_eq!(ledger.len(), 2, "young slots survive");
        ledger.sweep(Duration::ZERO);
        assert!(ledger.is_empty(), "expired slots are reclaimed");
    }

    #[test]
    fn tally_commits_on_majority() {
        // Three voters (self + two peers), self-grant counted.
        let mut t = VoteTally::new(3, true);
        assert_eq!(t.majority(), 2);
        assert_eq!(t.state(), TallyState::Undecided);
        t.grant();
        assert_eq!(t.state(), TallyState::Committed);
    }

    #[test]
    fn tally_unreachable_when_majority_cannot_assemble() {
        // Three voters; both peers die before voting.
        let mut t = VoteTally::new(3, true);
        t.deny();
        assert_eq!(
            t.state(),
            TallyState::Undecided,
            "one peer could still grant"
        );
        t.deny();
        assert_eq!(t.state(), TallyState::Unreachable);
    }

    #[test]
    fn single_voter_tally_self_commits() {
        // No peers up: the voter set is just the origin.
        let t = VoteTally::new(1, true);
        assert_eq!(t.state(), TallyState::Committed);
    }

    #[test]
    fn two_voter_tally_needs_both() {
        let mut t = VoteTally::new(2, true);
        assert_eq!(t.majority(), 2);
        assert_eq!(t.state(), TallyState::Undecided);
        let mut dead_peer = t;
        dead_peer.deny();
        assert_eq!(dead_peer.state(), TallyState::Unreachable);
        t.grant();
        assert_eq!(t.state(), TallyState::Committed);
    }
}
