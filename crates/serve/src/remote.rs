//! Origin-side registry of distributed races, and the executor-side
//! table of remotely-owned alternatives.
//!
//! A *distributed race* is one client request whose alternatives run on
//! more than one node: the local subrace (favourite plus whatever else
//! stayed) races on this node's pool while shipped alternatives run on
//! peers. [`RemoteRaces`] owns the origin's view: which alternatives
//! are where, which peers vote, who finished first, and — through the
//! majority 0–1 semaphore ([`crate::commit`]) — which single candidate
//! commits. The final [`Response`] is posted to the owning reactor
//! shard's completion queue exactly once, whichever of the many event
//! orderings happens.
//!
//! Every public method follows the same discipline: lock the table,
//! mutate, collect deferred [`Action`]s, unlock, act. Actions touch
//! other locks (a shard's completion queue, the peer handle's command
//! queue) so they must never run under the table lock.
//!
//! Failure conversions (the "graceful degradation" half of the issue):
//!
//! * a peer that refuses, errors, or dies converts its shipped
//!   alternatives to failed guards — the race continues on survivors;
//! * a voter that dies converts to a denial; if enough die that a
//!   majority can never assemble, the commit **degrades**: the origin
//!   answers the client anyway and counts `commits_degraded`, trading
//!   the paper's blocking semantics for serving-grade liveness;
//! * a race that outlives its deadline plus a grace window is expired
//!   by the peer thread's sweep, so a silent peer cannot strand a
//!   client even when TCP never reports the loss.

use crate::commit::{CommitLedger, TallyState, VoteTally};
use crate::frame::{Request, Response, ALT_DEADLINE, ALT_FAILED, ALT_OK};
use crate::peer::{PeerHandle, SendTag};
use crate::pool::WorkerPool;
use crate::reactor::ReactorShared;
use crate::sched::HedgePolicy;
use crate::telemetry::Telemetry;
use altx::CancelToken;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};
use std::time::{Duration, Instant};

/// Extra time past the client deadline before a distributed race is
/// force-expired (covers result frames in flight).
const DEADLINE_GRACE: Duration = Duration::from_secs(1);
/// Expiry cap for races with no client deadline.
const UNBOUNDED_CAP: Duration = Duration::from_secs(10);
/// A remote leg always gets at least this long before it is given up
/// on, however fast the link's RTT claims the peer is — covers worker
/// pickup and execution, not just the wire.
const LEG_FLOOR: Duration = Duration::from_millis(20);
/// Leg allowance as a multiple of the link's RTT EWMA.
const LEG_RTT_MULT: u32 = 8;
/// A leg may consume at most this fraction (in percent) of the client
/// deadline, so a locally-redispatched alternative still has budget.
const LEG_DEADLINE_PCT: u32 = 75;

/// One shipped alternative, tracked until its result (or its peer's
/// death) arrives.
#[derive(Debug)]
struct RemoteAlt {
    alt_idx: u32,
    peer: String,
    pending: bool,
    /// Per-leg deadline: the moment the origin stops waiting for this
    /// peer and hedges the alternative locally instead.
    deadline: Instant,
    /// The leg blew its deadline and a local redo was submitted. The
    /// slot stays `pending` — a late genuine result may still win —
    /// but the leg is never redispatched twice.
    redispatched: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VoteState {
    NotAsked,
    Asked,
    Done,
}

#[derive(Debug)]
struct Voter {
    addr: String,
    state: VoteState,
}

/// The first finisher, held while its commit round runs.
#[derive(Debug)]
struct Candidate {
    alt_idx: u32,
    winner_name: String,
    value: u64,
    /// Executor-side latency — feeds the scheduler's EWMA (it estimates
    /// the alternative's cost, not the network's).
    exec_latency_us: u64,
    /// `Some(addr)` when a peer executed the winner; `None` for local.
    peer: Option<String>,
}

struct DistRace {
    shard: usize,
    group: u64,
    widx: usize,
    /// The client argument — kept so an expired leg can be re-run
    /// locally with the same input.
    arg: u64,
    deadline_ms: u32,
    started: Instant,
    expire_at: Instant,
    local_pending: bool,
    local_cancel: CancelToken,
    /// Any participant reported a blown deadline (picks the final
    /// failure flavour when nothing succeeds).
    deadline_seen: bool,
    remotes: Vec<RemoteAlt>,
    voters: Vec<Voter>,
    tally: Option<VoteTally>,
    candidate: Option<Candidate>,
}

/// Deferred side effects, executed strictly after the table unlocks.
enum Action {
    Post {
        shard: usize,
        group: u64,
        response: Response,
    },
    SendVote {
        peer: String,
        race_id: u64,
        candidate: String,
    },
    SendEliminate {
        peer: String,
        race_id: u64,
    },
    NoteWin {
        peer: String,
    },
    /// A remote leg blew its per-leg deadline: run the alternative on
    /// the local pool instead (hedged recovery).
    Redispatch {
        race_id: u64,
        alt_idx: u32,
        widx: usize,
        arg: u64,
        token: CancelToken,
    },
}

/// The origin-side registry. One per daemon, shared by every reactor
/// shard, the worker pool (through subrace notifiers), and the peer
/// thread.
pub(crate) struct RemoteRaces {
    races: Mutex<HashMap<u64, DistRace>>,
    next_id: AtomicU64,
    shards: OnceLock<Vec<Arc<ReactorShared>>>,
    peers: OnceLock<Arc<PeerHandle>>,
    /// Local pool for redispatched legs. Unset (tests, peerless boot)
    /// means legs never expire individually — the race-level sweep
    /// remains the only backstop.
    pool: OnceLock<Arc<WorkerPool>>,
    /// Weak self-handle so a redispatched job's notifier can report
    /// back without a reference cycle through the pool.
    me: OnceLock<Weak<RemoteRaces>>,
    ledger: Arc<CommitLedger>,
    telemetry: Arc<Telemetry>,
    sched: Arc<HedgePolicy>,
    advertise: String,
}

impl RemoteRaces {
    pub(crate) fn new(
        telemetry: Arc<Telemetry>,
        sched: Arc<HedgePolicy>,
        ledger: Arc<CommitLedger>,
        advertise: String,
    ) -> Self {
        RemoteRaces {
            races: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shards: OnceLock::new(),
            peers: OnceLock::new(),
            pool: OnceLock::new(),
            me: OnceLock::new(),
            ledger,
            telemetry,
            sched,
            advertise,
        }
    }

    /// Wires every shard's completion queue in (once, at startup).
    pub(crate) fn wire_shards(&self, shards: Vec<Arc<ReactorShared>>) {
        let _ = self.shards.set(shards);
    }

    /// Wires the peer send handle in (once, at startup).
    pub(crate) fn wire_peers(&self, peers: Arc<PeerHandle>) {
        let _ = self.peers.set(peers);
    }

    /// Wires the worker pool in (once, at startup). Without it,
    /// per-leg deadlines are inert.
    pub(crate) fn wire_pool(&self, pool: Arc<WorkerPool>) {
        let _ = self.pool.set(pool);
    }

    /// Wires the registry's own `Arc` in (once, at startup) so
    /// redispatched jobs can report their outcome back.
    pub(crate) fn wire_self(&self, me: &Arc<RemoteRaces>) {
        let _ = self.me.set(Arc::downgrade(me));
    }

    /// Registers a new distributed race **before** anything races:
    /// the local subrace must be admitted and the `EXEC_ALT`s sent only
    /// after the entry exists, or an instant finisher would report into
    /// the void. `remotes` is `(alt_idx, peer)` per shipped
    /// alternative; `voters` is the frozen voter set (up peers at
    /// creation; self is implicit). Returns the race id.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn create(
        &self,
        shard: usize,
        group: u64,
        widx: usize,
        arg: u64,
        deadline_ms: u32,
        local_cancel: CancelToken,
        remotes: Vec<(u32, String)>,
        voters: Vec<String>,
    ) -> u64 {
        let race_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let expire_at = if deadline_ms > 0 {
            started + Duration::from_millis(u64::from(deadline_ms)) + DEADLINE_GRACE
        } else {
            started + UNBOUNDED_CAP
        };
        // A leg may not eat more than a fraction of the client budget:
        // whatever is left must suffice for the local redo.
        let leg_cap = if deadline_ms > 0 {
            Duration::from_millis(u64::from(deadline_ms)) * LEG_DEADLINE_PCT / 100
        } else {
            UNBOUNDED_CAP
        };
        let race = DistRace {
            shard,
            group,
            widx,
            arg,
            deadline_ms,
            started,
            expire_at,
            local_pending: true,
            local_cancel,
            deadline_seen: false,
            remotes: remotes
                .into_iter()
                .map(|(alt_idx, peer)| {
                    let rtt_us = self
                        .peers
                        .get()
                        .and_then(|h| h.stats().by_addr(&peer).map(|s| s.rtt_ewma_us()))
                        .unwrap_or(0);
                    let allowance = (Duration::from_micros(rtt_us) * LEG_RTT_MULT)
                        .max(LEG_FLOOR)
                        .min(leg_cap);
                    RemoteAlt {
                        alt_idx,
                        peer,
                        pending: true,
                        deadline: started + allowance,
                        redispatched: false,
                    }
                })
                .collect(),
            voters: voters
                .into_iter()
                .map(|addr| Voter {
                    addr,
                    state: VoteState::NotAsked,
                })
                .collect(),
            tally: None,
            candidate: None,
        };
        self.lock().insert(race_id, race);
        race_id
    }

    /// Removes a race whose local subrace was *refused* by the pool —
    /// nothing ran, nothing was sent, the waiters were answered inline.
    pub(crate) fn abort(&self, race_id: u64) {
        self.lock().remove(&race_id);
    }

    /// The local subrace finished (worker notifier context).
    pub(crate) fn on_local_done(&self, race_id: u64, resp: Response) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let Some(race) = races.get_mut(&race_id) else {
                return; // race already decided; late local result
            };
            race.local_pending = false;
            match resp {
                Response::Ok {
                    winner,
                    winner_name,
                    latency_us,
                    value,
                } => {
                    if race.candidate.is_none() {
                        race.candidate = Some(Candidate {
                            alt_idx: winner,
                            winner_name,
                            value,
                            exec_latency_us: latency_us,
                            peer: None,
                        });
                    }
                }
                Response::DeadlineExceeded { .. } => race.deadline_seen = true,
                _ => {}
            }
            if self.resolve(race_id, race, &mut actions) {
                races.remove(&race_id);
            }
        }
        self.act(actions);
    }

    /// An `ALT_RESULT` arrived from the executor of a shipped
    /// alternative.
    pub(crate) fn on_remote_result(
        &self,
        race_id: u64,
        alt_idx: u32,
        status: u8,
        value: u64,
        latency_us: u64,
    ) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let Some(race) = races.get_mut(&race_id) else {
                return;
            };
            let Some(slot) = race
                .remotes
                .iter_mut()
                .find(|r| r.alt_idx == alt_idx && r.pending)
            else {
                return; // duplicate or never-shipped: ignore
            };
            slot.pending = false;
            let peer = slot.peer.clone();
            self.telemetry.on_remote_result();
            match status {
                ALT_OK => {
                    if race.candidate.is_none() {
                        race.candidate = Some(Candidate {
                            alt_idx,
                            winner_name: format!("alt{alt_idx}"),
                            value,
                            exec_latency_us: latency_us,
                            peer: Some(peer),
                        });
                    }
                }
                ALT_DEADLINE => race.deadline_seen = true,
                ALT_FAILED => self.telemetry.on_remote_failed(),
                _ => self.telemetry.on_remote_failed(),
            }
            if self.resolve(race_id, race, &mut actions) {
                races.remove(&race_id);
            }
        }
        self.act(actions);
    }

    /// A locally-redispatched leg finished (worker notifier context).
    /// Races the genuine remote result for the same slot: whichever
    /// lands first clears `pending`, the other is ignored.
    pub(crate) fn on_redispatch_result(
        &self,
        race_id: u64,
        alt_idx: u32,
        status: u8,
        value: u64,
        latency_us: u64,
    ) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let Some(race) = races.get_mut(&race_id) else {
                return;
            };
            let Some(slot) = race
                .remotes
                .iter_mut()
                .find(|r| r.alt_idx == alt_idx && r.pending && r.redispatched)
            else {
                return; // the real remote result beat the redo
            };
            slot.pending = false;
            match status {
                ALT_OK => {
                    if race.candidate.is_none() {
                        race.candidate = Some(Candidate {
                            alt_idx,
                            winner_name: format!("alt{alt_idx}"),
                            value,
                            exec_latency_us: latency_us,
                            // Local execution: the stalled peer gets no
                            // credit for the win.
                            peer: None,
                        });
                    }
                }
                ALT_DEADLINE => race.deadline_seen = true,
                _ => {}
            }
            if self.resolve(race_id, race, &mut actions) {
                races.remove(&race_id);
            }
        }
        self.act(actions);
    }

    /// A shipped alternative will never run: the peer refused it, the
    /// link was down at send time, or it died before the ack.
    pub(crate) fn on_remote_refused(&self, race_id: u64, alt_idx: u32) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let Some(race) = races.get_mut(&race_id) else {
                return;
            };
            let Some(slot) = race
                .remotes
                .iter_mut()
                .find(|r| r.alt_idx == alt_idx && r.pending)
            else {
                return;
            };
            slot.pending = false;
            self.telemetry.on_remote_failed();
            if self.resolve(race_id, race, &mut actions) {
                races.remove(&race_id);
            }
        }
        self.act(actions);
    }

    /// A vote reply (or its conversion to a denial when the voter died).
    pub(crate) fn on_vote(&self, race_id: u64, voter: &str, granted: bool) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let Some(race) = races.get_mut(&race_id) else {
                return;
            };
            let Some(v) = race
                .voters
                .iter_mut()
                .find(|v| v.addr == voter && v.state == VoteState::Asked)
            else {
                return; // unknown voter or already counted
            };
            v.state = VoteState::Done;
            if let Some(tally) = &mut race.tally {
                if granted {
                    tally.grant();
                } else {
                    tally.deny();
                }
            }
            if self.resolve(race_id, race, &mut actions) {
                races.remove(&race_id);
            }
        }
        self.act(actions);
    }

    /// A peer link died: every alternative it had acked but not
    /// finished becomes a failed guard. (Its unanswered votes are
    /// denied separately, tag by tag, by the peer thread.)
    pub(crate) fn on_peer_down(&self, peer: &str) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let ids: Vec<u64> = races.keys().copied().collect();
            for race_id in ids {
                let race = races.get_mut(&race_id).expect("id just listed");
                let mut touched = false;
                for slot in race
                    .remotes
                    .iter_mut()
                    .filter(|r| r.pending && r.peer == peer)
                {
                    slot.pending = false;
                    touched = true;
                    self.telemetry.on_remote_failed();
                }
                if touched && self.resolve(race_id, race, &mut actions) {
                    races.remove(&race_id);
                }
            }
        }
        self.act(actions);
    }

    /// Expires every race past its deadline-plus-grace: a candidate
    /// stuck in voting commits degraded; a race with nothing decided
    /// fails over to a deadline/error reply. This is the backstop that
    /// keeps a silent peer from stranding a client.
    pub(crate) fn sweep(&self, now: Instant) {
        self.expire_legs(now);
        self.flush_where(|race| race.expire_at <= now);
    }

    /// Expires individual remote legs past their per-leg deadline:
    /// the leg's peer gets an `ELIMINATE` and the alternative is
    /// redispatched on the local pool. The slot stays `pending` so a
    /// late genuine result can still win the slot — only the *waiting*
    /// stops. No-op until a pool is wired in.
    fn expire_legs(&self, now: Instant) {
        if self.pool.get().is_none() {
            return;
        }
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            for (&race_id, race) in races.iter_mut() {
                if race.candidate.is_some() {
                    continue; // deciding already; commit handles the legs
                }
                for slot in race
                    .remotes
                    .iter_mut()
                    .filter(|r| r.pending && !r.redispatched && r.deadline <= now)
                {
                    slot.redispatched = true;
                    self.telemetry.on_remote_redispatched();
                    self.telemetry.on_elimination();
                    actions.push(Action::SendEliminate {
                        peer: slot.peer.clone(),
                        race_id,
                    });
                    actions.push(Action::Redispatch {
                        race_id,
                        alt_idx: slot.alt_idx,
                        widx: race.widx,
                        arg: race.arg,
                        token: race.local_cancel.clone(),
                    });
                }
            }
        }
        self.act(actions);
    }

    /// Drain-time flush: every open race resolves *now* (degraded
    /// commit or failure) so shutdown never strands a waiter.
    pub(crate) fn shutdown_flush(&self) {
        self.flush_where(|_| true);
    }

    fn flush_where(&self, pred: impl Fn(&DistRace) -> bool) {
        let mut actions = Vec::new();
        {
            let mut races = self.lock();
            let ids: Vec<u64> = races
                .iter()
                .filter(|(_, r)| pred(r))
                .map(|(&id, _)| id)
                .collect();
            for race_id in ids {
                let race = races.get_mut(&race_id).expect("id just listed");
                // Force a decision: outstanding work is abandoned.
                race.local_cancel.cancel();
                race.local_pending = false;
                for slot in race.remotes.iter_mut().filter(|r| r.pending) {
                    slot.pending = false;
                    self.telemetry.on_remote_failed();
                }
                if race.deadline_ms > 0 {
                    race.deadline_seen = true;
                }
                if race.candidate.is_some() {
                    // Voting stalled (voters dead or drain): degrade.
                    self.commit(race_id, race, true, &mut actions);
                } else {
                    self.fail(race, &mut actions);
                }
                races.remove(&race_id);
            }
        }
        self.act(actions);
    }

    /// Earliest race expiry — or pending leg deadline, when legs are
    /// live — for the peer thread's poll timeout.
    pub(crate) fn next_expiry(&self) -> Option<Instant> {
        let legs_live = self.pool.get().is_some();
        self.lock()
            .values()
            .flat_map(|r| {
                // A leg only contributes while its expiry would still
                // do something: undecided race, not yet redispatched.
                let legs = r
                    .remotes
                    .iter()
                    .filter(move |s| {
                        legs_live && r.candidate.is_none() && s.pending && !s.redispatched
                    })
                    .map(|s| s.deadline);
                std::iter::once(r.expire_at).chain(legs)
            })
            .min()
    }

    /// The lowest still-open race id (or the next id to be assigned
    /// when none is open). Race ids are handed out monotonically from
    /// one counter, so every id below the watermark is decided — a
    /// reconnecting peer can discard those races' state wholesale.
    pub(crate) fn reconcile_watermark(&self) -> u64 {
        let races = self.lock();
        races
            .keys()
            .copied()
            .min()
            .unwrap_or_else(|| self.next_id.load(Ordering::Relaxed))
    }

    /// Open distributed races (diagnostic/test hook).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, DistRace>> {
        self.races.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drives one race forward after any event. Returns `true` when the
    /// race is finished and must be removed.
    fn resolve(&self, race_id: u64, race: &mut DistRace, actions: &mut Vec<Action>) -> bool {
        if race.candidate.is_none() {
            if race.local_pending || race.remotes.iter().any(|r| r.pending) {
                return false; // still racing
            }
            self.fail(race, actions);
            return true;
        }
        if race.tally.is_none() {
            self.begin_commit(race_id, race, actions);
        }
        match race.tally.expect("tally just ensured").state() {
            TallyState::Undecided => false,
            TallyState::Committed => {
                self.commit(race_id, race, false, actions);
                true
            }
            TallyState::Unreachable => {
                self.commit(race_id, race, true, actions);
                true
            }
        }
    }

    /// Opens the commit round for the first finisher: cast the origin's
    /// own ledger vote, freeze the tally, ask every voter.
    fn begin_commit(&self, race_id: u64, race: &mut DistRace, actions: &mut Vec<Action>) {
        let cand = race.candidate.as_ref().expect("caller checked");
        let cand_id = format!("{}/alt{}", self.advertise, cand.alt_idx);
        let (granted, _) = self.ledger.vote(&self.advertise, race_id, &cand_id);
        self.telemetry.on_commit_vote();
        race.tally = Some(VoteTally::new(1 + race.voters.len(), granted));
        for v in race.voters.iter_mut() {
            v.state = VoteState::Asked;
            actions.push(Action::SendVote {
                peer: v.addr.clone(),
                race_id,
                candidate: cand_id.clone(),
            });
        }
    }

    /// The candidate commits (cleanly or degraded): answer the client,
    /// eliminate surviving siblings on their peers, record the win.
    fn commit(&self, race_id: u64, race: &mut DistRace, degraded: bool, actions: &mut Vec<Action>) {
        let cand = race.candidate.take().expect("caller checked");
        let total_us = race.started.elapsed().as_micros() as u64;
        if degraded {
            self.telemetry.on_commit_degraded();
        }
        self.telemetry.on_completed(total_us);
        self.sched
            .record_win(race.widx, cand.alt_idx as usize, cand.exec_latency_us);
        if let Some(peer) = &cand.peer {
            self.telemetry.on_remote_win();
            actions.push(Action::NoteWin { peer: peer.clone() });
        }
        // Local siblings — and any redispatched legs, which share the
        // subrace token — are cancelled unconditionally (a no-op when
        // everything local already finished).
        race.local_cancel.cancel();
        // Remote siblings: one ELIMINATE per peer still owing a result.
        // Redispatched legs already got theirs at leg expiry.
        let mut peers: Vec<String> = race
            .remotes
            .iter()
            .filter(|r| r.pending && !r.redispatched)
            .map(|r| r.peer.clone())
            .collect();
        peers.sort();
        peers.dedup();
        for peer in peers {
            self.telemetry.on_elimination();
            actions.push(Action::SendEliminate { peer, race_id });
        }
        actions.push(Action::Post {
            shard: race.shard,
            group: race.group,
            response: Response::Ok {
                winner: cand.alt_idx,
                winner_name: cand.winner_name,
                latency_us: total_us,
                value: cand.value,
            },
        });
    }

    /// Nothing succeeded anywhere: answer with the failure flavour the
    /// race observed.
    fn fail(&self, race: &mut DistRace, actions: &mut Vec<Action>) {
        let total_us = race.started.elapsed().as_micros() as u64;
        let response = if race.deadline_seen {
            self.telemetry.on_deadline_exceeded();
            Response::DeadlineExceeded {
                latency_us: total_us,
            }
        } else {
            self.telemetry.on_error();
            Response::Error {
                message: "no alternative succeeded".to_owned(),
            }
        };
        actions.push(Action::Post {
            shard: race.shard,
            group: race.group,
            response,
        });
    }

    /// Executes deferred side effects. Never called under the table
    /// lock.
    fn act(&self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Post {
                    shard,
                    group,
                    response,
                } => {
                    if let Some(shards) = self.shards.get() {
                        if let Some(s) = shards.get(shard) {
                            s.post(group, response);
                        }
                    }
                }
                Action::SendVote {
                    peer,
                    race_id,
                    candidate,
                } => {
                    if let Some(h) = self.peers.get() {
                        h.send(
                            &peer,
                            Request::CommitVote {
                                race_id,
                                origin: self.advertise.clone(),
                                candidate,
                            },
                            SendTag::Vote { race_id },
                        );
                    }
                }
                Action::SendEliminate { peer, race_id } => {
                    if let Some(h) = self.peers.get() {
                        // Tagged so a link that dies before the ack can
                        // re-park the ELIMINATE for replay on reconnect
                        // (zombie executions must not outlive a
                        // partition).
                        h.send(
                            &peer,
                            Request::Eliminate {
                                race_id,
                                origin: self.advertise.clone(),
                            },
                            SendTag::Eliminate { race_id },
                        );
                    }
                }
                Action::NoteWin { peer } => {
                    if let Some(h) = self.peers.get() {
                        if let Some(stat) = h.stats().by_addr(&peer) {
                            stat.note_win();
                        }
                    }
                }
                Action::Redispatch {
                    race_id,
                    alt_idx,
                    widx,
                    arg,
                    token,
                } => {
                    if !self.redispatch(race_id, alt_idx, widx, arg, token) {
                        // Pool full or not wired: the leg converts to a
                        // failed guard like any refused dispatch.
                        self.on_remote_refused(race_id, alt_idx);
                    }
                }
            }
        }
    }

    /// Submits a local redo of an expired remote leg. The job runs the
    /// exact same single-alternative execution an `EXEC_ALT` peer
    /// would, under the subrace token so commit/expiry cancels it.
    fn redispatch(
        &self,
        race_id: u64,
        alt_idx: u32,
        widx: usize,
        arg: u64,
        token: CancelToken,
    ) -> bool {
        let (Some(pool), Some(me)) = (self.pool.get(), self.me.get()) else {
            return false;
        };
        let Some(me) = me.upgrade() else {
            return false;
        };
        let slot: Arc<Mutex<Option<(u8, u64, u64)>>> = Arc::new(Mutex::new(None));
        let job = {
            let slot = Arc::clone(&slot);
            let telemetry = Arc::clone(&self.telemetry);
            Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    crate::server::run_remote_alt(&telemetry, widx, alt_idx, arg, &token)
                }))
                .unwrap_or((ALT_FAILED, 0, 0));
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            })
        };
        let notify = Box::new(move || {
            // An empty slot means the pool dropped the job unrun.
            let (status, value, latency_us) = slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .unwrap_or((ALT_FAILED, 0, 0));
            me.on_redispatch_result(race_id, alt_idx, status, value, latency_us);
        });
        pool.try_submit_notify(job, notify).is_ok()
    }
}

/// Executor-side table of remotely-owned alternatives, keyed by
/// `(origin, race_id)` so two origins' id spaces can never collide.
/// An `ELIMINATE` cancels every token registered under its key — the
/// cross-machine half of sibling elimination.
#[derive(Debug, Default)]
pub(crate) struct InflightRemote {
    map: Mutex<HashMap<(String, u64), Vec<(u32, CancelToken)>>>,
}

impl InflightRemote {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a shipped alternative's cancel token before its job is
    /// admitted.
    pub(crate) fn register(&self, origin: &str, race_id: u64, alt_idx: u32, token: CancelToken) {
        self.lock()
            .entry((origin.to_owned(), race_id))
            .or_default()
            .push((alt_idx, token));
    }

    /// Drops one alternative's registration after its result is sent.
    pub(crate) fn complete(&self, origin: &str, race_id: u64, alt_idx: u32) {
        let mut map = self.lock();
        if let Some(slots) = map.get_mut(&(origin.to_owned(), race_id)) {
            slots.retain(|(a, _)| *a != alt_idx);
            if slots.is_empty() {
                map.remove(&(origin.to_owned(), race_id));
            }
        }
    }

    /// Eliminates a race: cancels every alternative still registered
    /// under `(origin, race_id)`. Returns how many were cancelled.
    pub(crate) fn eliminate(&self, origin: &str, race_id: u64) -> usize {
        match self.lock().remove(&(origin.to_owned(), race_id)) {
            Some(slots) => {
                for (_, token) in &slots {
                    token.cancel();
                }
                slots.len()
            }
            None => 0,
        }
    }

    /// Partition-heal reconciliation: cancels every execution for
    /// `origin`'s races below `watermark`. The origin advertises its
    /// lowest still-open race id on reconnect; everything below it was
    /// decided while the link was down, so whatever this node is still
    /// running for those races is a zombie. Returns how many
    /// executions were cancelled.
    pub(crate) fn eliminate_below(&self, origin: &str, watermark: u64) -> usize {
        let mut map = self.lock();
        let keys: Vec<(String, u64)> = map
            .keys()
            .filter(|(o, id)| o == origin && *id < watermark)
            .cloned()
            .collect();
        let mut n = 0;
        for key in keys {
            if let Some(slots) = map.remove(&key) {
                for (_, token) in &slots {
                    token.cancel();
                }
                n += slots.len();
            }
        }
        n
    }

    /// Registered alternatives (test/diagnostic hook).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().values().map(Vec::len).sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(String, u64), Vec<(u32, CancelToken)>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::HedgeConfig;

    fn registry() -> RemoteRaces {
        RemoteRaces::new(
            Arc::new(Telemetry::new()),
            Arc::new(HedgePolicy::new(HedgeConfig::default())),
            Arc::new(CommitLedger::new()),
            "origin:1".to_owned(),
        )
    }

    fn ok(winner: u32, value: u64) -> Response {
        Response::Ok {
            winner,
            winner_name: format!("alt{winner}"),
            latency_us: 500,
            value,
        }
    }

    #[test]
    fn local_win_with_no_voters_commits_immediately() {
        let races = registry();
        let id = races.create(
            0,
            7,
            0,
            0,
            0,
            CancelToken::new(),
            vec![(1, "peer:1".into())],
            vec![],
        );
        races.on_local_done(id, ok(0, 42));
        // Single-voter tally (self only) commits on the self-grant; the
        // race is gone and the still-pending remote was eliminated.
        assert_eq!(races.len(), 0);
        assert_eq!(races.telemetry.snapshot().completed, 1);
        assert_eq!(races.telemetry.snapshot().eliminations, 1);
        assert_eq!(races.ledger.votes_granted(), 1);
    }

    #[test]
    fn remote_result_wins_when_local_fails() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![(2, "peer:1".into())],
            vec![],
        );
        races.on_local_done(
            id,
            Response::Error {
                message: "guards failed".into(),
            },
        );
        assert_eq!(races.len(), 1, "race waits for the shipped alternative");
        races.on_remote_result(id, 2, ALT_OK, 99, 1_000);
        assert_eq!(races.len(), 0);
        let s = races.telemetry.snapshot();
        assert_eq!(s.completed, 1);
        assert_eq!(s.remote_wins, 1);
        assert_eq!(s.remote_results, 1);
    }

    #[test]
    fn everything_failing_answers_once_with_the_deadline_flavour() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            50,
            CancelToken::new(),
            vec![(1, "a:1".into()), (2, "b:2".into())],
            vec![],
        );
        races.on_remote_result(id, 1, ALT_FAILED, 0, 10);
        races.on_local_done(id, Response::DeadlineExceeded { latency_us: 50_000 });
        assert_eq!(races.len(), 1);
        races.on_remote_result(id, 2, ALT_DEADLINE, 0, 50_000);
        assert_eq!(races.len(), 0);
        let s = races.telemetry.snapshot();
        assert_eq!(s.deadline_exceeded, 1, "deadline flavour wins");
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn peer_death_converts_its_alternatives_to_failed_guards() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![(1, "dead:1".into()), (2, "alive:2".into())],
            vec![],
        );
        races.on_local_done(
            id,
            Response::Error {
                message: "guards failed".into(),
            },
        );
        races.on_peer_down("dead:1");
        assert_eq!(races.len(), 1, "the survivor's alternative still races");
        assert_eq!(races.telemetry.snapshot().remote_failed, 1);
        races.on_remote_result(id, 2, ALT_OK, 5, 100);
        assert_eq!(races.len(), 0);
        assert_eq!(races.telemetry.snapshot().remote_wins, 1);
    }

    #[test]
    fn dead_voters_degrade_the_commit_instead_of_blocking() {
        let races = registry();
        let token = CancelToken::new();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            token.clone(),
            vec![],
            vec!["v1:1".into(), "v2:2".into()],
        );
        races.on_local_done(id, ok(0, 7));
        assert_eq!(races.len(), 1, "majority of 3 needs one peer grant");
        races.on_vote(id, "v1:1", false);
        assert_eq!(races.len(), 1, "one denial leaves the round undecided");
        races.on_vote(id, "v2:2", false);
        assert_eq!(races.len(), 0, "second denial makes majority unreachable");
        let s = races.telemetry.snapshot();
        assert_eq!(s.commits_degraded, 1);
        assert_eq!(s.completed, 1, "the client is answered regardless");
    }

    #[test]
    fn majority_grant_commits_cleanly() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![],
            vec!["v1:1".into(), "v2:2".into()],
        );
        races.on_local_done(id, ok(1, 3));
        races.on_vote(id, "v1:1", true);
        assert_eq!(races.len(), 0, "2 of 3 grants commit");
        let s = races.telemetry.snapshot();
        assert_eq!(s.commits_degraded, 0);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn duplicate_votes_are_ignored() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![],
            vec!["v1:1".into()],
        );
        races.on_local_done(id, ok(0, 1));
        assert_eq!(races.len(), 1);
        races.on_vote(id, "v1:1", false);
        assert_eq!(races.len(), 0, "1 of 2 can never be a majority");
        // Late duplicate for a removed race: no panic, no double post.
        races.on_vote(id, "v1:1", true);
    }

    #[test]
    fn sweep_expires_overdue_races() {
        let races = registry();
        let token = CancelToken::new();
        let id = races.create(
            0,
            1,
            0,
            0,
            10,
            token.clone(),
            vec![(1, "silent:1".into())],
            vec![],
        );
        assert!(races.next_expiry().is_some());
        races.sweep(Instant::now()); // not yet due
        assert_eq!(races.len(), 1);
        races.sweep(Instant::now() + Duration::from_secs(60));
        assert_eq!(races.len(), 0);
        assert!(token.is_cancelled(), "expiry cancels the local subrace");
        let s = races.telemetry.snapshot();
        assert_eq!(s.deadline_exceeded, 1, "deadline race expires as deadline");
        let _ = id;
    }

    #[test]
    fn shutdown_flush_degrades_a_race_stuck_in_voting() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![],
            vec!["v:1".into()],
        );
        races.on_local_done(id, ok(0, 9));
        assert_eq!(races.len(), 1, "waiting on the voter");
        races.shutdown_flush();
        assert_eq!(races.len(), 0);
        let s = races.telemetry.snapshot();
        assert_eq!(s.commits_degraded, 1);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn expired_leg_redispatches_locally_and_answers() {
        let races = Arc::new(registry());
        let pool = Arc::new(WorkerPool::new(2, 8));
        races.wire_pool(Arc::clone(&pool));
        races.wire_self(&races);
        // widx 0 is "trivial": both alternatives succeed instantly, so
        // the local redo of alt 1 must win the race.
        let id = races.create(
            0,
            1,
            0,
            7,
            0,
            CancelToken::new(),
            vec![(1, "stalled:1".into())],
            vec![],
        );
        races.on_local_done(
            id,
            Response::Error {
                message: "guards failed".into(),
            },
        );
        assert_eq!(races.len(), 1, "only the shipped leg can still answer");
        // The leg deadline (20ms floor; no RTT sample) passes silently.
        races.sweep(Instant::now() + Duration::from_millis(50));
        assert_eq!(races.telemetry.snapshot().remote_redispatched, 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while races.len() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(races.len(), 0, "the local redo answers the race");
        let s = races.telemetry.snapshot();
        assert_eq!(s.completed, 1);
        assert_eq!(s.remote_wins, 0, "a local redo is not a remote win");
        assert_eq!(s.eliminations, 1, "the stalled peer was told to stop");
        // A late genuine result for the already-decided race is a no-op.
        races.on_remote_result(id, 1, ALT_OK, 9, 100);
        assert_eq!(races.telemetry.snapshot().completed, 1);
        pool.shutdown();
    }

    #[test]
    fn legs_do_not_expire_without_a_pool() {
        let races = registry();
        let id = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![(1, "stalled:1".into())],
            vec![],
        );
        races.on_local_done(
            id,
            Response::Error {
                message: "guards failed".into(),
            },
        );
        // Well past the leg floor but before race expiry: nothing to
        // redispatch onto, so the leg keeps waiting.
        races.sweep(Instant::now() + Duration::from_millis(200));
        assert_eq!(races.len(), 1);
        assert_eq!(races.telemetry.snapshot().remote_redispatched, 0);
    }

    #[test]
    fn reconcile_watermark_tracks_the_lowest_open_race() {
        let races = registry();
        assert_eq!(races.reconcile_watermark(), 1, "nothing open: next id");
        let a = races.create(
            0,
            1,
            0,
            0,
            0,
            CancelToken::new(),
            vec![(1, "p:1".into())],
            vec![],
        );
        let b = races.create(
            0,
            2,
            0,
            0,
            0,
            CancelToken::new(),
            vec![(1, "p:1".into())],
            vec![],
        );
        assert_eq!(races.reconcile_watermark(), a, "lowest open id");
        races.on_local_done(a, ok(0, 1));
        assert_eq!(races.reconcile_watermark(), b, "a decided, b still open");
        races.on_local_done(b, ok(0, 1));
        assert_eq!(races.reconcile_watermark(), b + 1, "all decided: next id");
    }

    #[test]
    fn eliminate_below_kills_only_zombies_under_the_watermark() {
        let inflight = InflightRemote::new();
        let (t1, t2, t3) = (CancelToken::new(), CancelToken::new(), CancelToken::new());
        inflight.register("o:1", 3, 0, t1.clone());
        inflight.register("o:1", 7, 0, t2.clone());
        inflight.register("o:2", 3, 0, t3.clone());
        assert_eq!(inflight.eliminate_below("o:1", 7), 1);
        assert!(t1.is_cancelled(), "race below the watermark is a zombie");
        assert!(!t2.is_cancelled(), "race at the watermark is still live");
        assert!(!t3.is_cancelled(), "other origin is untouched");
        assert_eq!(inflight.len(), 2);
    }

    #[test]
    fn inflight_eliminate_cancels_every_registered_token() {
        let inflight = InflightRemote::new();
        let (t1, t2) = (CancelToken::new(), CancelToken::new());
        inflight.register("o:1", 5, 0, t1.clone());
        inflight.register("o:1", 5, 2, t2.clone());
        inflight.register("o:2", 5, 0, CancelToken::new());
        assert_eq!(inflight.len(), 3);
        assert_eq!(inflight.eliminate("o:1", 5), 2);
        assert!(t1.is_cancelled() && t2.is_cancelled());
        assert_eq!(inflight.len(), 1, "other origin's race is untouched");
        inflight.complete("o:2", 5, 0);
        assert_eq!(inflight.len(), 0);
        assert_eq!(inflight.eliminate("o:1", 99), 0, "unknown race is a no-op");
    }
}
