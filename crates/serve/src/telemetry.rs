//! Daemon telemetry: lock-free counters, a fixed-bucket latency
//! histogram, and per-alternative win tallies, rendered either as a
//! human-readable stats page or Prometheus text format.
//!
//! Everything on the request path is an atomic increment. Win tallies
//! live in the scheduler's interned [`CatalogStats`] — indexed atomics
//! keyed by `(workload index, alternative index)` — so recording a win
//! costs two relaxed atomic adds, not a `Mutex<BTreeMap<(String,
//! String), u64>>` insert; the string keys are materialized only when a
//! snapshot is rendered.
//!
//! Front-end counters are **per shard**: each reactor shard owns a
//! [`ShardStats`] it updates without touching any other shard's cache
//! line, and a [`Snapshot`] sums them back into the single global view
//! (`conns_open`, `conns_active`, `wakeups`) existing STATS and
//! Prometheus consumers already scrape — sharding changes who counts,
//! not what is reported.

use crate::bufpool::BufPoolStats;
use crate::peer::PeerStatsTable;
use crate::pool::PoolStats;
use crate::ring::RingStats;
use crate::sched::CatalogStats;
use altx::CachePadded;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Histogram bucket upper bounds, microseconds. The last bucket is
/// unbounded.
pub const BUCKET_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1): the bound
    /// of the first bucket whose cumulative count reaches `q·total`.
    /// Resolution is the bucket grid; the open last bucket reports its
    /// lower edge.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(*BUCKET_BOUNDS_US.last().expect("non-empty bounds"));
            }
        }
        *BUCKET_BOUNDS_US.last().expect("non-empty bounds")
    }

    /// (bound, cumulative count) pairs for Prometheus `le` buckets,
    /// ending with the +Inf bucket.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            out.push((BUCKET_BOUNDS_US.get(i).copied(), acc));
        }
        out
    }
}

/// Counters owned by one reactor shard. The shard is the only writer
/// (single-threaded event loop), so every update is an uncontended
/// relaxed store; readers are snapshot renders on *some* shard's
/// thread, which only need eventual consistency.
#[derive(Debug)]
pub struct ShardStats {
    /// Connections currently owned by this shard (gauge).
    conns_open: AtomicU64,
    /// Connections with at least one request in flight (gauge).
    conns_active: AtomicU64,
    /// Self-pipe wakeups of this shard's event loop (counter).
    wakeups: AtomicU64,
    /// POLLOUT events that arrived for a connection with nothing left
    /// to write — write-interest churn the reactor's loop order is
    /// meant to keep at zero (counter).
    pollout_spurious: AtomicU64,
    /// The shard's buffer-pool hit/miss counters.
    buf: Arc<BufPoolStats>,
    /// The shard's reply-ring hit/spill counters.
    ring: Arc<RingStats>,
}

impl ShardStats {
    /// Stats for a shard whose buffer pool reports through `buf` and
    /// whose reply ring reports through `ring`.
    pub fn new(buf: Arc<BufPoolStats>, ring: Arc<RingStats>) -> Self {
        ShardStats {
            conns_open: AtomicU64::new(0),
            conns_active: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            pollout_spurious: AtomicU64::new(0),
            buf,
            ring,
        }
    }

    /// Counts a connection adopted by this shard.
    pub fn on_conn_open(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection whose state this shard reclaimed.
    pub fn on_conn_close(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes how many of this shard's connections have a request in
    /// flight.
    pub fn set_conns_active(&self, n: u64) {
        self.conns_active.store(n, Ordering::Relaxed);
    }

    /// Counts a self-pipe wakeup of this shard.
    pub fn on_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently owned by this shard.
    pub fn conns_open(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// This shard's connections with a request in flight.
    pub fn conns_active(&self) -> u64 {
        self.conns_active.load(Ordering::Relaxed)
    }

    /// This shard's wakeup count.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Buffer-pool gets served from this shard's free list.
    pub fn pool_recycled(&self) -> u64 {
        self.buf.recycled()
    }

    /// Buffer-pool gets that had to allocate on this shard.
    pub fn pool_misses(&self) -> u64 {
        self.buf.misses()
    }

    /// Counts a POLLOUT event that found no pending output.
    pub fn on_pollout_spurious(&self) {
        self.pollout_spurious.fetch_add(1, Ordering::Relaxed);
    }

    /// This shard's spurious-POLLOUT count.
    pub fn pollout_spurious(&self) -> u64 {
        self.pollout_spurious.load(Ordering::Relaxed)
    }

    /// Replies this shard's ring served from a fixed slot.
    pub fn ring_hits(&self) -> u64 {
        self.ring.hits()
    }

    /// Replies that spilled past this shard's ring to a heap buffer.
    pub fn ring_spills(&self) -> u64 {
        self.ring.spills()
    }
}

/// All daemon counters. One instance, shared by every connection and
/// worker.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Requests admitted to the run queue.
    accepted: CachePadded<AtomicU64>,
    /// Races that completed with a winner.
    completed: CachePadded<AtomicU64>,
    /// Requests shed because the queue was full.
    shed: CachePadded<AtomicU64>,
    /// Requests shed by the feasibility gate: deadline provably
    /// unmeetable on arrival, before spending a queue slot.
    sheds_at_admission: CachePadded<AtomicU64>,
    /// Races that blew their deadline.
    deadline_exceeded: CachePadded<AtomicU64>,
    /// Races that completed with a winner but *after* their deadline —
    /// served, but too late to count as goodput.
    deadline_misses: CachePadded<AtomicU64>,
    /// Unknown workloads, protocol violations, failed races.
    errors: CachePadded<AtomicU64>,
    /// Alternative bodies that panicked and were contained by an engine.
    alt_panics: CachePadded<AtomicU64>,
    /// Batches submitted as one race (window > 0 only).
    batches_formed: CachePadded<AtomicU64>,
    /// Requests that joined an already-open batch instead of racing.
    requests_coalesced: CachePadded<AtomicU64>,
    /// Hedged alternatives whose launch offset elapsed (their bodies ran).
    hedges_launched: CachePadded<AtomicU64>,
    /// Races won by an alternative that launched from a hedge offset.
    hedge_wins: CachePadded<AtomicU64>,
    /// Alternatives whose bodies never ran because the race was decided
    /// first (hedges suppressed by a fast favourite).
    launches_suppressed: CachePadded<AtomicU64>,
    /// Alternatives shipped to peers (`EXEC_ALT` frames sent).
    remote_dispatched: CachePadded<AtomicU64>,
    /// `ALT_RESULT` frames received back from executors.
    remote_results: CachePadded<AtomicU64>,
    /// Races committed to a peer-executed alternative.
    remote_wins: CachePadded<AtomicU64>,
    /// Shipped alternatives converted to failed guards (refused,
    /// executor failure, or peer death).
    remote_failed: CachePadded<AtomicU64>,
    /// Remote legs that blew their per-leg deadline and were re-run on
    /// the local pool (hedged recovery from a stalled peer).
    remote_redispatched: CachePadded<AtomicU64>,
    /// Replies from a previous link incarnation dropped by the
    /// reconnect-generation check.
    peer_stale_replies: CachePadded<AtomicU64>,
    /// `EXEC_ALT` requests this node admitted as an executor.
    remote_execs: CachePadded<AtomicU64>,
    /// Commit-semaphore votes this node's ledger handled (its own
    /// self-votes plus `COMMIT_VOTE` frames from peers).
    commit_votes: CachePadded<AtomicU64>,
    /// Commits answered without a majority (enough voters died).
    commits_degraded: CachePadded<AtomicU64>,
    /// `ELIMINATE` frames sent to cancel shipped siblings.
    eliminations: CachePadded<AtomicU64>,
    /// Reactor shards whose thread successfully pinned to its planned
    /// core set (`--pin`). Written once per shard at startup — cold, so
    /// unpadded.
    pinned_shards: AtomicU64,
    /// Latency of completed races.
    latency: LatencyHistogram,
    /// The scheduler's interned per-alternative statistics (win tallies
    /// render from here), attached once at startup.
    catalog: OnceLock<Arc<CatalogStats>>,
    /// The serving pool's failure counters, attached once at startup.
    pool: OnceLock<Arc<PoolStats>>,
    /// One [`ShardStats`] per reactor shard, attached once at startup;
    /// the front-end gauges in a [`Snapshot`] are sums over these.
    shards: OnceLock<Vec<Arc<ShardStats>>>,
    /// Per-peer link counters, attached once at startup.
    peers: OnceLock<Arc<PeerStatsTable>>,
    /// Configured lane names (priority order), attached once at startup
    /// so lane-depth gauges render with their declared names.
    lane_names: OnceLock<Vec<String>>,
}

/// A point-in-time copy of the counters, for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Requests admitted to the run queue.
    pub accepted: u64,
    /// Races completed with a winner.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests shed by the feasibility gate on arrival.
    pub sheds_at_admission: u64,
    /// Deadline-exceeded races.
    pub deadline_exceeded: u64,
    /// Races served with a winner but after their deadline.
    pub deadline_misses: u64,
    /// Jobs a dry worker took from a sibling group's run queue while
    /// the pool was open (load-balancing steals only).
    pub steals: u64,
    /// Jobs scavenged from sibling groups while draining a closed pool
    /// (shutdown, not load balancing).
    pub drain_scavenges: u64,
    /// Reactor shards successfully pinned to their planned core sets
    /// (zero without `--pin`).
    pub pinned_shards: u64,
    /// Queued jobs per priority lane (gauge), priority order.
    pub lane_depths: Vec<u64>,
    /// Error replies.
    pub errors: u64,
    /// Contained panics inside racing alternatives.
    pub alt_panics: u64,
    /// Jobs whose closure panicked inside the pool (contained).
    pub jobs_panicked: u64,
    /// Dead workers replaced by the pool supervisor.
    pub worker_respawns: u64,
    /// Faults injected process-wide by the active [`altx::faults`] plan
    /// (zero when no plan is installed).
    pub faults_injected: u64,
    /// Connections currently open, summed across reactor shards.
    pub conns_open: u64,
    /// Connections with at least one request in flight, summed across
    /// reactor shards.
    pub conns_active: u64,
    /// Reactor self-pipe wakeups, summed across shards.
    pub wakeups: u64,
    /// Reactor shards serving the front end.
    pub shards: u64,
    /// Frame buffers served from a shard's free list instead of the
    /// allocator, summed across shards.
    pub pool_recycled: u64,
    /// Frame-buffer requests that had to allocate, summed across shards.
    pub pool_misses: u64,
    /// Replies encoded straight into a reply-ring slot, summed across
    /// shards.
    pub ring_hits: u64,
    /// Replies that spilled past the ring to a heap buffer, summed
    /// across shards.
    pub ring_spills: u64,
    /// POLLOUT events that found nothing left to write, summed across
    /// shards.
    pub pollout_spurious: u64,
    /// Batches submitted as one race.
    pub batches_formed: u64,
    /// Requests coalesced into an already-open batch.
    pub requests_coalesced: u64,
    /// Hedged alternatives that actually launched.
    pub hedges_launched: u64,
    /// Races won from a hedge offset.
    pub hedge_wins: u64,
    /// Alternative bodies suppressed by an early decision.
    pub launches_suppressed: u64,
    /// Alternatives shipped to peers.
    pub remote_dispatched: u64,
    /// Result frames received back from executors.
    pub remote_results: u64,
    /// Races committed to a peer-executed alternative.
    pub remote_wins: u64,
    /// Shipped alternatives converted to failed guards.
    pub remote_failed: u64,
    /// Remote legs redispatched locally after a blown leg deadline.
    pub remote_redispatched: u64,
    /// Stale pre-reconnect replies dropped by the generation check.
    pub peer_stale_replies: u64,
    /// Transitions into the Quarantined peer state, summed over peers.
    pub peer_quarantines: u64,
    /// `EXEC_ALT` requests this node admitted as an executor.
    pub remote_execs: u64,
    /// Commit-semaphore votes handled by this node's ledger.
    pub commit_votes: u64,
    /// Commits answered without a majority.
    pub commits_degraded: u64,
    /// `ELIMINATE` frames sent.
    pub eliminations: u64,
    /// Peer links currently up (gauge).
    pub peers_up: u64,
    /// Successful peer re-dials after the first connect, summed.
    pub peer_reconnects: u64,
    /// Mean completed-race latency (µs).
    pub mean_us: f64,
    /// p50 estimate (µs).
    pub p50_us: u64,
    /// p99 estimate (µs).
    pub p99_us: u64,
    /// Wins per (workload, alternative).
    pub wins: BTreeMap<(String, String), u64>,
}

impl Telemetry {
    /// Creates zeroed telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an admitted request.
    pub fn on_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed race. The winner itself is recorded in the
    /// scheduler's [`CatalogStats`] (see [`Telemetry::attach_catalog`]);
    /// this keeps the hot path free of string keys and locks.
    pub fn on_completed(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_us);
    }

    /// Counts a shed request.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request the feasibility gate shed on arrival.
    pub fn on_shed_admission(&self) {
        self.sheds_at_admission.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a blown deadline.
    pub fn on_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a race that won — but past its deadline.
    pub fn on_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an error reply.
    pub fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` contained alternative panics (from a race's
    /// `BlockResult::panics`).
    pub fn on_alt_panics(&self, n: u64) {
        if n > 0 {
            self.alt_panics.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one batch submitted as a single race.
    pub fn on_batch_formed(&self) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` requests that joined an already-open batch.
    pub fn on_requests_coalesced(&self, n: u64) {
        if n > 0 {
            self.requests_coalesced.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` hedged alternatives whose bodies actually ran.
    pub fn on_hedges_launched(&self, n: u64) {
        if n > 0 {
            self.hedges_launched.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts a race won by an alternative launched from a hedge offset.
    pub fn on_hedge_win(&self) {
        self.hedge_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` alternative bodies suppressed by an early decision.
    pub fn on_launches_suppressed(&self, n: u64) {
        if n > 0 {
            self.launches_suppressed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one alternative shipped to a peer.
    pub fn on_remote_dispatched(&self) {
        self.remote_dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `ALT_RESULT` received from an executor.
    pub fn on_remote_result(&self) {
        self.remote_results.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one race committed to a peer-executed alternative.
    pub fn on_remote_win(&self) {
        self.remote_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one shipped alternative converted to a failed guard.
    pub fn on_remote_failed(&self) {
        self.remote_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one remote leg redispatched locally after its per-leg
    /// deadline expired.
    pub fn on_remote_redispatched(&self) {
        self.remote_redispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one stale reply (pre-reconnect link generation) dropped.
    pub fn on_peer_stale_reply(&self) {
        self.peer_stale_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `EXEC_ALT` this node admitted as an executor.
    pub fn on_remote_exec(&self) {
        self.remote_execs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one commit-semaphore vote handled by this node's ledger.
    pub fn on_commit_vote(&self) {
        self.commit_votes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one commit answered without a majority.
    pub fn on_commit_degraded(&self) {
        self.commits_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `ELIMINATE` sent to cancel a shipped sibling.
    pub fn on_elimination(&self) {
        self.eliminations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one reactor shard that pinned itself to its planned core
    /// set. Recorded by the shard thread itself, so the count reflects
    /// pins that actually took, not pins that were merely requested.
    pub fn on_shard_pinned(&self) {
        self.pinned_shards.fetch_add(1, Ordering::Relaxed);
    }

    /// Attaches the scheduler's interned statistics so win tallies
    /// appear in snapshots. Later calls are ignored.
    pub fn attach_catalog(&self, catalog: Arc<CatalogStats>) {
        let _ = self.catalog.set(catalog);
    }

    /// Attaches the serving pool's counters so snapshots include them.
    /// Later calls are ignored (one pool per daemon).
    pub fn attach_pool(&self, stats: Arc<PoolStats>) {
        let _ = self.pool.set(stats);
    }

    /// Attaches the per-shard front-end counters, one per reactor
    /// shard. Later calls are ignored (the shard set is fixed for the
    /// daemon's lifetime).
    pub fn attach_shards(&self, shards: Vec<Arc<ShardStats>>) {
        let _ = self.shards.set(shards);
    }

    /// Attaches the per-peer link counters. Later calls are ignored
    /// (the configured peer set is fixed for the daemon's lifetime).
    pub fn attach_peers(&self, peers: Arc<PeerStatsTable>) {
        let _ = self.peers.set(peers);
    }

    /// Attaches the configured lane names (priority order) so lane
    /// depth gauges render with their declared names. Later calls are
    /// ignored.
    pub fn attach_lane_names(&self, names: Vec<String>) {
        let _ = self.lane_names.set(names);
    }

    /// The name of priority lane `i` (`lane<i>` when unattached).
    fn lane_name(&self, i: usize) -> String {
        self.lane_names
            .get()
            .and_then(|n| n.get(i).cloned())
            .unwrap_or_else(|| format!("lane{i}"))
    }

    /// The attached per-peer counters, if peering is wired.
    pub fn peer_table(&self) -> Option<&Arc<PeerStatsTable>> {
        self.peers.get()
    }

    /// The attached per-shard counters (empty before
    /// [`Telemetry::attach_shards`]). Tests use this to observe how
    /// connections were distributed; snapshots sum over it.
    pub fn per_shard(&self) -> &[Arc<ShardStats>] {
        self.shards.get().map_or(&[], Vec::as_slice)
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> Snapshot {
        let shards = self.per_shard();
        Snapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            sheds_at_admission: self.sheds_at_admission.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            steals: self.pool.get().map_or(0, |p| p.steals()),
            drain_scavenges: self.pool.get().map_or(0, |p| p.drain_scavenges()),
            pinned_shards: self.pinned_shards.load(Ordering::Relaxed),
            lane_depths: self.pool.get().map_or_else(Vec::new, |p| p.lane_depths()),
            errors: self.errors.load(Ordering::Relaxed),
            alt_panics: self.alt_panics.load(Ordering::Relaxed),
            jobs_panicked: self.pool.get().map_or(0, |p| p.jobs_panicked()),
            worker_respawns: self.pool.get().map_or(0, |p| p.worker_respawns()),
            faults_injected: altx::faults::injected_total(),
            conns_open: shards.iter().map(|s| s.conns_open()).sum(),
            conns_active: shards.iter().map(|s| s.conns_active()).sum(),
            wakeups: shards.iter().map(|s| s.wakeups()).sum(),
            shards: shards.len() as u64,
            pool_recycled: shards.iter().map(|s| s.pool_recycled()).sum(),
            pool_misses: shards.iter().map(|s| s.pool_misses()).sum(),
            ring_hits: shards.iter().map(|s| s.ring_hits()).sum(),
            ring_spills: shards.iter().map(|s| s.ring_spills()).sum(),
            pollout_spurious: shards.iter().map(|s| s.pollout_spurious()).sum(),
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            requests_coalesced: self.requests_coalesced.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            launches_suppressed: self.launches_suppressed.load(Ordering::Relaxed),
            remote_dispatched: self.remote_dispatched.load(Ordering::Relaxed),
            remote_results: self.remote_results.load(Ordering::Relaxed),
            remote_wins: self.remote_wins.load(Ordering::Relaxed),
            remote_failed: self.remote_failed.load(Ordering::Relaxed),
            remote_redispatched: self.remote_redispatched.load(Ordering::Relaxed),
            peer_stale_replies: self.peer_stale_replies.load(Ordering::Relaxed),
            peer_quarantines: self.peers.get().map_or(0, |p| p.total_quarantines()),
            remote_execs: self.remote_execs.load(Ordering::Relaxed),
            commit_votes: self.commit_votes.load(Ordering::Relaxed),
            commits_degraded: self.commits_degraded.load(Ordering::Relaxed),
            eliminations: self.eliminations.load(Ordering::Relaxed),
            peers_up: self.peers.get().map_or(0, |p| p.peers_up()),
            peer_reconnects: self.peers.get().map_or(0, |p| p.total_reconnects()),
            mean_us: self.latency.mean_us(),
            p50_us: self.latency.quantile_us(0.50),
            p99_us: self.latency.quantile_us(0.99),
            wins: self.catalog.get().map(|c| c.wins_map()).unwrap_or_default(),
        }
    }

    /// Human-readable stats page (the STATS reply body).
    pub fn render_stats(&self) -> String {
        let s = self.snapshot();
        let mut out = String::new();
        out.push_str("altxd stats\n");
        out.push_str(&format!("  accepted            {}\n", s.accepted));
        out.push_str(&format!("  completed           {}\n", s.completed));
        out.push_str(&format!("  shed (overloaded)   {}\n", s.shed));
        out.push_str(&format!("  sheds at admission  {}\n", s.sheds_at_admission));
        out.push_str(&format!("  deadline exceeded   {}\n", s.deadline_exceeded));
        out.push_str(&format!("  deadline misses     {}\n", s.deadline_misses));
        out.push_str(&format!("  steals              {}\n", s.steals));
        out.push_str(&format!("  drain scavenges     {}\n", s.drain_scavenges));
        out.push_str(&format!("  pinned shards       {}\n", s.pinned_shards));
        for (i, depth) in s.lane_depths.iter().enumerate() {
            out.push_str(&format!(
                "    lane {} ({}) depth {}\n",
                i,
                self.lane_name(i),
                depth
            ));
        }
        out.push_str(&format!("  errors              {}\n", s.errors));
        out.push_str(&format!("  alt panics          {}\n", s.alt_panics));
        out.push_str(&format!("  jobs panicked       {}\n", s.jobs_panicked));
        out.push_str(&format!("  worker respawns     {}\n", s.worker_respawns));
        out.push_str(&format!("  faults injected     {}\n", s.faults_injected));
        out.push_str(&format!("  conns open          {}\n", s.conns_open));
        out.push_str(&format!("  conns active        {}\n", s.conns_active));
        out.push_str(&format!("  reactor wakeups     {}\n", s.wakeups));
        out.push_str(&format!("  shards              {}\n", s.shards));
        out.push_str(&format!("  pool recycled       {}\n", s.pool_recycled));
        out.push_str(&format!("  pool misses         {}\n", s.pool_misses));
        out.push_str(&format!("  ring hits           {}\n", s.ring_hits));
        out.push_str(&format!("  ring spills         {}\n", s.ring_spills));
        out.push_str(&format!("  pollout spurious    {}\n", s.pollout_spurious));
        if s.shards > 1 {
            for (i, shard) in self.per_shard().iter().enumerate() {
                out.push_str(&format!(
                    "    shard {i}: conns {} active {} wakeups {}\n",
                    shard.conns_open(),
                    shard.conns_active(),
                    shard.wakeups()
                ));
            }
        }
        out.push_str(&format!("  batches formed      {}\n", s.batches_formed));
        out.push_str(&format!("  requests coalesced  {}\n", s.requests_coalesced));
        out.push_str(&format!("  hedges launched     {}\n", s.hedges_launched));
        out.push_str(&format!("  hedge wins          {}\n", s.hedge_wins));
        out.push_str(&format!(
            "  launches suppressed {}\n",
            s.launches_suppressed
        ));
        out.push_str(&format!("  remote dispatched   {}\n", s.remote_dispatched));
        out.push_str(&format!("  remote results      {}\n", s.remote_results));
        out.push_str(&format!("  remote wins         {}\n", s.remote_wins));
        out.push_str(&format!("  remote failed       {}\n", s.remote_failed));
        out.push_str(&format!(
            "  remote redispatched {}\n",
            s.remote_redispatched
        ));
        out.push_str(&format!("  peer stale replies  {}\n", s.peer_stale_replies));
        out.push_str(&format!("  peer quarantines    {}\n", s.peer_quarantines));
        out.push_str(&format!("  remote execs        {}\n", s.remote_execs));
        out.push_str(&format!("  commit votes        {}\n", s.commit_votes));
        out.push_str(&format!("  commits degraded    {}\n", s.commits_degraded));
        out.push_str(&format!("  eliminations sent   {}\n", s.eliminations));
        out.push_str(&format!("  peers up            {}\n", s.peers_up));
        out.push_str(&format!("  peer reconnects     {}\n", s.peer_reconnects));
        if let Some(peers) = self.peers.get() {
            for p in peers.peers() {
                let (queued, busy, workers) = p.load();
                out.push_str(&format!(
                    "    peer {}: up {} health {} rtt_us {} dispatched {} wins {} reconnects {} quarantines {} load {}/{}/{}\n",
                    p.addr(),
                    u8::from(p.up()),
                    p.health().label(),
                    p.rtt_ewma_us(),
                    p.dispatched(),
                    p.wins(),
                    p.reconnects(),
                    p.quarantines(),
                    queued,
                    busy,
                    workers,
                ));
            }
        }
        out.push_str(&format!(
            "  latency us          mean {:.1}  p50 {}  p99 {}\n",
            s.mean_us, s.p50_us, s.p99_us
        ));
        out.push_str("  wins per alternative\n");
        for ((workload, alt), n) in &s.wins {
            out.push_str(&format!("    {workload}/{alt}  {n}\n"));
        }
        out
    }

    /// Prometheus text exposition (the PROMETHEUS reply body).
    pub fn render_prometheus(&self) -> String {
        let s = self.snapshot();
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "altxd_requests_accepted_total",
            "Requests admitted to the run queue",
            s.accepted,
        );
        counter(
            &mut out,
            "altxd_requests_completed_total",
            "Races completed with a winner",
            s.completed,
        );
        counter(
            &mut out,
            "altxd_requests_shed_total",
            "Requests shed by admission control",
            s.shed,
        );
        counter(
            &mut out,
            "altxd_sheds_at_admission_total",
            "Requests shed by the feasibility gate on arrival",
            s.sheds_at_admission,
        );
        counter(
            &mut out,
            "altxd_requests_deadline_exceeded_total",
            "Races that blew their deadline",
            s.deadline_exceeded,
        );
        counter(
            &mut out,
            "altxd_deadline_misses_total",
            "Races served with a winner but after their deadline",
            s.deadline_misses,
        );
        counter(
            &mut out,
            "altxd_steals_total",
            "Jobs a dry worker took from a sibling group's run queue under load",
            s.steals,
        );
        counter(
            &mut out,
            "altxd_drain_scavenges_total",
            "Jobs scavenged from sibling groups while draining a closed pool",
            s.drain_scavenges,
        );
        counter(
            &mut out,
            "altxd_pinned_shards",
            "Reactor shards pinned to their planned core sets",
            s.pinned_shards,
        );
        counter(
            &mut out,
            "altxd_requests_error_total",
            "Error replies",
            s.errors,
        );
        counter(
            &mut out,
            "altxd_alt_panics_total",
            "Alternative bodies that panicked and were contained",
            s.alt_panics,
        );
        counter(
            &mut out,
            "altxd_jobs_panicked_total",
            "Pool jobs that panicked and were contained",
            s.jobs_panicked,
        );
        counter(
            &mut out,
            "altxd_worker_respawns_total",
            "Dead pool workers replaced by the supervisor",
            s.worker_respawns,
        );
        counter(
            &mut out,
            "altxd_faults_injected_total",
            "Faults injected by the active fault plan",
            s.faults_injected,
        );

        counter(
            &mut out,
            "altxd_reactor_wakeups_total",
            "Reactor self-pipe wakeups from completion posts",
            s.wakeups,
        );
        counter(
            &mut out,
            "altxd_ring_hits_total",
            "Replies encoded straight into a reply-ring slot",
            s.ring_hits,
        );
        counter(
            &mut out,
            "altxd_ring_spills_total",
            "Replies that spilled past the ring to a heap buffer",
            s.ring_spills,
        );
        counter(
            &mut out,
            "altxd_reactor_pollout_spurious_total",
            "POLLOUT events that found no pending output",
            s.pollout_spurious,
        );
        counter(
            &mut out,
            "altxd_batches_formed_total",
            "Coalesced request batches submitted as one race",
            s.batches_formed,
        );
        counter(
            &mut out,
            "altxd_requests_coalesced_total",
            "Requests that joined an already-open batch",
            s.requests_coalesced,
        );
        counter(
            &mut out,
            "altxd_hedges_launched_total",
            "Hedged alternatives whose launch offset elapsed",
            s.hedges_launched,
        );
        counter(
            &mut out,
            "altxd_hedge_wins_total",
            "Races won by a hedge-launched alternative",
            s.hedge_wins,
        );
        counter(
            &mut out,
            "altxd_launches_suppressed_total",
            "Alternative bodies suppressed by an early race decision",
            s.launches_suppressed,
        );
        counter(
            &mut out,
            "altxd_remote_dispatched_total",
            "Alternatives shipped to peer nodes",
            s.remote_dispatched,
        );
        counter(
            &mut out,
            "altxd_remote_results_total",
            "Result frames received back from executors",
            s.remote_results,
        );
        counter(
            &mut out,
            "altxd_remote_wins_total",
            "Races committed to a peer-executed alternative",
            s.remote_wins,
        );
        counter(
            &mut out,
            "altxd_remote_failed_total",
            "Shipped alternatives converted to failed guards",
            s.remote_failed,
        );
        counter(
            &mut out,
            "altxd_remote_redispatched_total",
            "Remote legs redispatched locally after a blown leg deadline",
            s.remote_redispatched,
        );
        counter(
            &mut out,
            "altxd_peer_stale_replies_total",
            "Stale pre-reconnect replies dropped by the generation check",
            s.peer_stale_replies,
        );
        counter(
            &mut out,
            "altxd_peer_quarantines_total",
            "Transitions into the Quarantined peer state",
            s.peer_quarantines,
        );
        counter(
            &mut out,
            "altxd_remote_execs_total",
            "EXEC_ALT requests admitted as an executor",
            s.remote_execs,
        );
        counter(
            &mut out,
            "altxd_commit_votes_total",
            "Commit-semaphore votes handled by the ledger",
            s.commit_votes,
        );
        counter(
            &mut out,
            "altxd_commits_degraded_total",
            "Commits answered without an assembled majority",
            s.commits_degraded,
        );
        counter(
            &mut out,
            "altxd_eliminations_total",
            "ELIMINATE frames sent to cancel shipped siblings",
            s.eliminations,
        );
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            &mut out,
            "altxd_conns_open",
            "Connections currently open on the reactor",
            s.conns_open,
        );
        gauge(
            &mut out,
            "altxd_conns_active",
            "Connections with a request in flight",
            s.conns_active,
        );
        gauge(
            &mut out,
            "altxd_shards",
            "Reactor shards serving the front end",
            s.shards,
        );
        counter(
            &mut out,
            "altxd_bufpool_recycled_total",
            "Frame buffers served from a shard free list",
            s.pool_recycled,
        );
        counter(
            &mut out,
            "altxd_bufpool_misses_total",
            "Frame-buffer requests that had to allocate",
            s.pool_misses,
        );
        if !s.lane_depths.is_empty() {
            out.push_str("# HELP altxd_lane_depth Queued jobs per priority lane\n");
            out.push_str("# TYPE altxd_lane_depth gauge\n");
            for (i, depth) in s.lane_depths.iter().enumerate() {
                out.push_str(&format!(
                    "altxd_lane_depth{{lane=\"{}\"}} {depth}\n",
                    self.lane_name(i)
                ));
            }
        }
        out.push_str("# HELP altxd_shard_conns_open Connections owned, per shard\n");
        out.push_str("# TYPE altxd_shard_conns_open gauge\n");
        for (i, shard) in self.per_shard().iter().enumerate() {
            out.push_str(&format!(
                "altxd_shard_conns_open{{shard=\"{i}\"}} {}\n",
                shard.conns_open()
            ));
        }

        if let Some(peers) = self.peers.get() {
            out.push_str("# HELP altxd_peer_up Peer link liveness (1 = connected)\n");
            out.push_str("# TYPE altxd_peer_up gauge\n");
            for p in peers.peers() {
                out.push_str(&format!(
                    "altxd_peer_up{{peer=\"{}\"}} {}\n",
                    p.addr(),
                    u8::from(p.up())
                ));
            }
            out.push_str(
                "# HELP altxd_peer_health Peer health state (0 = up, 1 = suspect, 2 = quarantined)\n",
            );
            out.push_str("# TYPE altxd_peer_health gauge\n");
            for p in peers.peers() {
                out.push_str(&format!(
                    "altxd_peer_health{{peer=\"{}\"}} {}\n",
                    p.addr(),
                    p.health() as u8
                ));
            }
            out.push_str("# HELP altxd_peer_rtt_us Peer round-trip EWMA in microseconds\n");
            out.push_str("# TYPE altxd_peer_rtt_us gauge\n");
            for p in peers.peers() {
                out.push_str(&format!(
                    "altxd_peer_rtt_us{{peer=\"{}\"}} {}\n",
                    p.addr(),
                    p.rtt_ewma_us()
                ));
            }
            out.push_str("# HELP altxd_peer_reconnects_total Successful re-dials, per peer\n");
            out.push_str("# TYPE altxd_peer_reconnects_total counter\n");
            for p in peers.peers() {
                out.push_str(&format!(
                    "altxd_peer_reconnects_total{{peer=\"{}\"}} {}\n",
                    p.addr(),
                    p.reconnects()
                ));
            }
        }

        out.push_str("# HELP altxd_race_latency_us Completed-race latency in microseconds\n");
        out.push_str("# TYPE altxd_race_latency_us histogram\n");
        for (bound, cum) in self.latency.cumulative() {
            let le = bound.map_or("+Inf".to_owned(), |b| b.to_string());
            out.push_str(&format!(
                "altxd_race_latency_us_bucket{{le=\"{le}\"}} {cum}\n"
            ));
        }
        out.push_str(&format!(
            "altxd_race_latency_us_sum {}\n",
            self.latency.sum_us.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "altxd_race_latency_us_count {}\n",
            self.latency.count()
        ));

        out.push_str("# HELP altxd_alternative_wins_total Races won, per alternative\n");
        out.push_str("# TYPE altxd_alternative_wins_total counter\n");
        for ((workload, alt), n) in &s.wins {
            out.push_str(&format!(
                "altxd_alternative_wins_total{{workload=\"{workload}\",alternative=\"{alt}\"}} {n}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for us in [40, 90, 90, 90, 90, 90, 90, 90, 90, 200_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_us(0.5), 100); // 90 µs falls in the ≤100 bucket
        assert_eq!(h.quantile_us(0.99), 250_000);
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn histogram_cumulative_ends_at_total() {
        let h = LatencyHistogram::new();
        for us in [1, 10_000, 9_999_999] {
            h.record(us);
        }
        let cum = h.cumulative();
        assert_eq!(cum.last().expect("buckets"), &(None, 3));
    }

    /// Telemetry wired to a fresh interned stats store, with one
    /// trivial/instant-a win recorded — the shape the daemon produces.
    fn with_one_win() -> Telemetry {
        let t = Telemetry::new();
        let catalog = Arc::new(CatalogStats::new());
        t.attach_catalog(Arc::clone(&catalog));
        let widx = crate::workload::index_of("trivial").expect("catalog");
        catalog.table(widx).expect("table").record_win(0, 120);
        t.on_completed(120);
        t
    }

    #[test]
    fn snapshot_reflects_events() {
        let t = with_one_win();
        t.on_accepted();
        t.on_accepted();
        t.on_shed();
        t.on_deadline_exceeded();
        t.on_error();
        let s = t.snapshot();
        assert_eq!(
            (
                s.accepted,
                s.completed,
                s.shed,
                s.deadline_exceeded,
                s.errors
            ),
            (2, 1, 1, 1, 1)
        );
        assert_eq!(s.wins[&("trivial".into(), "instant-a".into())], 1);
    }

    #[test]
    fn scheduler_counters_accumulate() {
        let t = Telemetry::new();
        t.on_batch_formed();
        t.on_requests_coalesced(3);
        t.on_hedges_launched(2);
        t.on_hedge_win();
        t.on_launches_suppressed(4);
        t.on_launches_suppressed(0);
        let s = t.snapshot();
        assert_eq!(s.batches_formed, 1);
        assert_eq!(s.requests_coalesced, 3);
        assert_eq!(s.hedges_launched, 2);
        assert_eq!(s.hedge_wins, 1);
        assert_eq!(s.launches_suppressed, 4);
        let page = t.render_stats();
        assert!(page.contains("requests coalesced  3"), "{page}");
        assert!(page.contains("launches suppressed 4"), "{page}");
    }

    #[test]
    fn unattached_catalog_renders_no_wins() {
        let t = Telemetry::new();
        t.on_completed(50);
        assert!(t.snapshot().wins.is_empty());
    }

    #[test]
    fn prometheus_dump_is_well_formed() {
        let t = with_one_win();
        let text = t.render_prometheus();
        assert!(text.contains("altxd_requests_completed_total 1"));
        assert!(text.contains("altxd_race_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains(
            "altxd_alternative_wins_total{workload=\"trivial\",alternative=\"instant-a\"} 1"
        ));
        assert!(text.contains("altxd_batches_formed_total 0"));
        assert!(text.contains("altxd_hedge_wins_total 0"));
        // Every non-comment line is "name{labels} value" with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().expect("value field");
            assert!(value.parse::<f64>().is_ok(), "bad line: {line}");
        }
    }
}
