//! Cluster peering: outbound links to other `altxd` nodes.
//!
//! The paper's §4.4 remote execution needs a control plane: each daemon
//! keeps one persistent outbound connection per configured `--peer`,
//! ships `EXEC_ALT` / `COMMIT_VOTE` / `ELIMINATE` / `ALT_RESULT` frames
//! over it, and measures the link (round-trip EWMA, liveness) so the
//! placement model works from observations instead of guesses.
//!
//! All outbound traffic runs on **one dedicated thread** ([`PeerNet`]):
//! a mini-reactor that polls every link plus a self-pipe, exactly the
//! shape of the front-end shards but pointed outward. Reactor shards
//! and pool workers never touch a peer socket — they push a [`Cmd`]
//! onto the [`PeerHandle`] and write one wake byte, the same
//! completion-queue discipline the shards already use inbound.
//!
//! Failure model (the part the paper hand-waves and a server cannot):
//!
//! * A link that refuses or drops is **failed fast**: an `EXEC_ALT`
//!   that cannot be sent converts to a refused alternative at the
//!   origin immediately, a `COMMIT_VOTE` converts to a denial. No
//!   request path ever blocks on a dead peer.
//! * A link that dies with requests in flight fails every pending tag
//!   the same way, then tells the remote-race registry the peer is down
//!   so alternatives already *acked* by that peer convert to failed
//!   guards too ([`crate::remote::RemoteRaces::on_peer_down`]).
//! * Reconnection is automatic with doubling backoff (50 ms → 2 s);
//!   every successful re-dial after a first connect counts in the
//!   per-peer `reconnects` counter the load generator scrapes.
//! * A link that is *up but silent* — the one-way partition TCP keeps
//!   alive — is caught by the health lifecycle: the thread heartbeats
//!   every configured link with a `PEER_STATS` frame, and a peer whose
//!   replies stop ages Up → Suspect → Quarantined
//!   ([`PeerHealth`]). Placement and voter freezing both read
//!   [`PeerStatsTable::up_peers`], which only lists healthy peers, so
//!   a quarantined peer stops receiving alternatives without its TCP
//!   link being torn down. Heartbeats keep flowing as probes; the
//!   first reply readmits the peer to Up.
//! * On re-dial after a failure the link replays the `ELIMINATE`s that
//!   were still unacknowledged when it died and sends a `RECONCILE`
//!   watermark, so a healed peer kills zombie executions instead of
//!   racing ghosts (partition-heal reconciliation).
//!
//! Replies on a link are correlated to requests by order — the framed
//! protocol answers every request exactly once, in order, so a FIFO of
//! [`SendTag`]s per link is a complete correlation table, and the
//! request→reply time of *any* tag is an rtt sample for the EWMA.
//! Every pending entry is additionally stamped with the link's
//! *reconnect generation*; a reply whose stamp does not match the
//! live generation is stale pre-reconnect traffic and is dropped
//! (counted as `peer_stale_replies`) rather than matched to a
//! post-reconnect request.
//!
//! All link I/O runs through the seeded network chaos shim
//! (`altx::faults` sites `peer.link.<addr>.send` / `.recv`): with a
//! fault plan installed, frames can be dropped, delayed, duplicated,
//! truncated, or swallowed by a one-way partition, deterministically
//! per seed. With no plan installed the shim is one relaxed atomic
//! load per frame.

use crate::commit::CommitLedger;
use crate::frame::{FrameDecoder, Request, Response};
use crate::placement::Placement;
use crate::reactor::{poll_fds, wake_pair, DaemonCtl, PollFd, POLLIN, POLLOUT};
use crate::remote::{InflightRemote, RemoteRaces};
use crate::telemetry::Telemetry;
use altx::faults::{self, NetFault};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Peering knobs, carried in [`crate::ServerConfig`]. An empty peer
/// list (the default) disables remote dispatch entirely: the placement
/// never ships, and the peer thread idles on its wake pipe.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Peer daemon addresses (`host:port`), one outbound link each.
    pub peers: Vec<String>,
    /// Force one remote dispatch every N races so link statistics stay
    /// live even when the model prefers local (0 disables exploration).
    pub explore_every: u64,
    /// Address advertised to peers as this node's identity (where
    /// results and votes come back to). Defaults to the bound listen
    /// address — override it when the bind address is not routable.
    pub advertise: Option<String>,
    /// Heartbeat cadence on configured links, in milliseconds (0
    /// disables the health lifecycle entirely).
    pub heartbeat_ms: u64,
    /// Silence threshold before a peer is suspected, in milliseconds;
    /// a peer silent for twice this long is quarantined.
    pub suspect_ms: u64,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            peers: Vec::new(),
            explore_every: 16,
            advertise: None,
            heartbeat_ms: 500,
            suspect_ms: 1500,
        }
    }
}

/// First re-dial delay after a link failure.
const BACKOFF_INITIAL: Duration = Duration::from_millis(50);
/// Backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Dial timeout: a peer that cannot complete a TCP handshake in this
/// budget is down for placement purposes.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(50);
/// Commit-ledger slots older than this are swept (a race never lives
/// anywhere near this long; the TTL only bounds memory).
const LEDGER_TTL: Duration = Duration::from_secs(300);
/// How often the ledger sweep runs.
const SWEEP_EVERY: Duration = Duration::from_secs(5);
/// Queued fire-and-forget frames kept per down link before the oldest
/// are dropped.
const MAX_QUEUED: usize = 256;
/// Idle poll backstop for the peer thread.
const PEER_BACKSTOP_MS: i32 = 250;

/// A configured peer's health state. TCP liveness (`up`) and health
/// are orthogonal: a one-way partition leaves the socket connected
/// while replies stop, which is exactly what this state machine
/// catches. Only an `Up` peer receives alternatives or freezes into a
/// race's voter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PeerHealth {
    /// Replying within the suspicion threshold.
    Up = 0,
    /// Silent past the suspicion threshold: no new work is shipped,
    /// but nothing is torn down — a reply restores `Up`.
    Suspect = 1,
    /// Silent past twice the threshold. Heartbeats keep flowing as
    /// readmission probes; the first reply restores `Up`.
    Quarantined = 2,
}

impl PeerHealth {
    fn from_u8(v: u8) -> PeerHealth {
        match v {
            1 => PeerHealth::Suspect,
            2 => PeerHealth::Quarantined,
            _ => PeerHealth::Up,
        }
    }

    /// Lower-case label for telemetry pages.
    pub fn label(self) -> &'static str {
        match self {
            PeerHealth::Up => "up",
            PeerHealth::Suspect => "suspect",
            PeerHealth::Quarantined => "quarantined",
        }
    }
}

/// Live counters for one configured peer link. The peer thread is the
/// only writer of `up`/`rtt`/`health`/load; dispatch/win counters are
/// bumped from reactor shards and the registry. Everything is relaxed
/// atomics — telemetry reads need eventual consistency only.
#[derive(Debug)]
pub struct PeerStat {
    addr: String,
    up: AtomicBool,
    health: AtomicU8,
    rtt_ewma_us: AtomicU64,
    dispatched: AtomicU64,
    wins: AtomicU64,
    reconnects: AtomicU64,
    quarantines: AtomicU64,
    load_queued: AtomicU64,
    load_busy: AtomicU64,
    load_workers: AtomicU64,
}

impl PeerStat {
    fn new(addr: String) -> Self {
        PeerStat {
            addr,
            up: AtomicBool::new(false),
            health: AtomicU8::new(PeerHealth::Up as u8),
            rtt_ewma_us: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            wins: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            load_queued: AtomicU64::new(0),
            load_busy: AtomicU64::new(0),
            load_workers: AtomicU64::new(0),
        }
    }

    /// The peer's configured address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True while the outbound link is connected.
    pub fn up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Round-trip EWMA in microseconds (0 until the first sample).
    pub fn rtt_ewma_us(&self) -> u64 {
        self.rtt_ewma_us.load(Ordering::Relaxed)
    }

    /// Alternatives shipped to this peer.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Races won by an alternative this peer executed.
    pub fn wins(&self) -> u64 {
        self.wins.load(Ordering::Relaxed)
    }

    /// Successful re-dials after the first connect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// The peer's health state.
    pub fn health(&self) -> PeerHealth {
        PeerHealth::from_u8(self.health.load(Ordering::Relaxed))
    }

    /// Times this peer entered [`PeerHealth::Quarantined`].
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// Last heartbeat-reported load: `(queued, busy, workers)`. All
    /// zero until the first heartbeat reply.
    pub fn load(&self) -> (u64, u64, u64) {
        (
            self.load_queued.load(Ordering::Relaxed),
            self.load_busy.load(Ordering::Relaxed),
            self.load_workers.load(Ordering::Relaxed),
        )
    }

    fn set_health(&self, h: PeerHealth) {
        let prev = self.health.swap(h as u8, Ordering::Relaxed);
        if h == PeerHealth::Quarantined && prev != PeerHealth::Quarantined as u8 {
            self.quarantines.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn set_load(&self, queued: u64, busy: u64, workers: u64) {
        self.load_queued.store(queued, Ordering::Relaxed);
        self.load_busy.store(busy, Ordering::Relaxed);
        self.load_workers.store(workers, Ordering::Relaxed);
    }

    /// Records one request→reply round trip (EWMA, α = 0.2).
    fn observe_rtt(&self, sample_us: u64) {
        let old = self.rtt_ewma_us.load(Ordering::Relaxed);
        let next = if old == 0 {
            sample_us
        } else {
            (old * 4 + sample_us) / 5
        };
        self.rtt_ewma_us.store(next.max(1), Ordering::Relaxed);
    }

    /// Counts one alternative shipped to this peer.
    pub(crate) fn note_dispatched(&self) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one race won by this peer's alternative.
    pub(crate) fn note_win(&self) {
        self.wins.fetch_add(1, Ordering::Relaxed);
    }
}

/// The fixed per-peer counter table, one entry per configured peer,
/// shared by the peer thread, the reactor shards, the registry, and
/// telemetry.
#[derive(Debug, Default)]
pub struct PeerStatsTable {
    peers: Vec<Arc<PeerStat>>,
}

impl PeerStatsTable {
    /// One zeroed entry per configured peer address.
    pub fn new(addrs: &[String]) -> Self {
        PeerStatsTable {
            peers: addrs
                .iter()
                .map(|a| Arc::new(PeerStat::new(a.clone())))
                .collect(),
        }
    }

    /// Every configured peer's counters.
    pub fn peers(&self) -> &[Arc<PeerStat>] {
        &self.peers
    }

    /// Counters for one peer address.
    pub fn by_addr(&self, addr: &str) -> Option<&Arc<PeerStat>> {
        self.peers.iter().find(|p| p.addr == addr)
    }

    /// One shippable peer, as the placement model sees it: link rtt
    /// plus the load figures from its last heartbeat reply.
    pub fn up_peers(&self) -> Vec<PeerLoad> {
        self.peers
            .iter()
            .filter(|p| p.up() && p.health() == PeerHealth::Up)
            .map(|p| {
                let (queued, busy, workers) = p.load();
                PeerLoad {
                    addr: p.addr.clone(),
                    rtt_us: p.rtt_ewma_us().max(1),
                    queued,
                    busy,
                    workers,
                }
            })
            .collect()
    }

    /// Sum of per-peer reconnect counters.
    pub fn total_reconnects(&self) -> u64 {
        self.peers.iter().map(|p| p.reconnects()).sum()
    }

    /// Sum of per-peer quarantine counters.
    pub fn total_quarantines(&self) -> u64 {
        self.peers.iter().map(|p| p.quarantines()).sum()
    }

    /// Peers whose link is up *and healthy* right now — the count that
    /// gates placement and voter freezing.
    pub fn peers_up(&self) -> u64 {
        self.peers
            .iter()
            .filter(|p| p.up() && p.health() == PeerHealth::Up)
            .count() as u64
    }

    /// The `PEER_STATS` text body.
    pub fn render(&self) -> String {
        let mut out = String::from("altxd peers\n");
        for p in &self.peers {
            let (queued, busy, workers) = p.load();
            out.push_str(&format!(
                "  peer {}  up {}  health {}  rtt_us {}  dispatched {}  wins {}  reconnects {}  \
                 quarantines {}  peer_load {}/{}/{}\n",
                p.addr,
                u8::from(p.up()),
                p.health().label(),
                p.rtt_ewma_us(),
                p.dispatched(),
                p.wins(),
                p.reconnects(),
                p.quarantines(),
                queued,
                busy,
                workers
            ));
        }
        out
    }
}

/// One healthy peer as seen by the placement model: link rtt plus the
/// queue depth and busy-worker count from its last heartbeat reply
/// (zeros until the first reply — an unknown peer is assumed idle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerLoad {
    /// The peer's configured address.
    pub addr: String,
    /// Round-trip EWMA in microseconds (floored at 1).
    pub rtt_us: u64,
    /// Jobs queued at the peer, per its last heartbeat.
    pub queued: u64,
    /// Workers busy at the peer, per its last heartbeat.
    pub busy: u64,
    /// The peer's worker count, per its last heartbeat.
    pub workers: u64,
}

/// What an outbound frame was *for* — pushed onto the link's FIFO when
/// the frame is sent, popped when its in-order reply arrives, failed
/// when the link dies first.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SendTag {
    /// An `EXEC_ALT` whose ack decides admitted-vs-refused.
    ExecAlt {
        /// Race the shipped alternative belongs to.
        race_id: u64,
        /// Which alternative was shipped.
        alt_idx: u32,
    },
    /// A `COMMIT_VOTE` whose reply carries the grant.
    Vote {
        /// Race the vote decides.
        race_id: u64,
    },
    /// Fire-and-forget (`ALT_RESULT`, `RECONCILE`): the ack only feeds
    /// the rtt EWMA.
    Fire,
    /// An `ELIMINATE` for `race_id`: fire-and-forget for the race's
    /// outcome, but tracked so an eliminate still unacknowledged when
    /// the link dies is replayed on re-dial — the healed peer must not
    /// keep racing a ghost.
    Eliminate {
        /// Race the eliminate closes (our id space).
        race_id: u64,
    },
    /// A `PEER_STATS` heartbeat the peer thread sent itself; the reply
    /// proves liveness and carries the peer's load line.
    Heartbeat,
}

struct Cmd {
    addr: String,
    req: Request,
    tag: SendTag,
}

/// The handle everyone but the peer thread holds: queue a command,
/// tickle the wake pipe. Sends never block and never touch a socket.
pub(crate) struct PeerHandle {
    cmds: Mutex<Vec<Cmd>>,
    wake_tx: TcpStream,
    stats: Arc<PeerStatsTable>,
}

impl PeerHandle {
    /// Queues one frame for `addr` and wakes the peer thread. If the
    /// link is down the thread fails the tag fast — the caller finds
    /// out through the registry, never by blocking here.
    pub(crate) fn send(&self, addr: &str, req: Request, tag: SendTag) {
        self.cmds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Cmd {
                addr: addr.to_owned(),
                req,
                tag,
            });
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// The shared per-peer counter table.
    pub(crate) fn stats(&self) -> &Arc<PeerStatsTable> {
        &self.stats
    }

    /// A clone of the wake pipe's write end so the shutdown latch can
    /// rouse the peer thread.
    pub(crate) fn clone_waker(&self) -> io::Result<TcpStream> {
        self.wake_tx.try_clone()
    }
}

/// Everything the reactor shards need to speak to the peer plane,
/// bundled so `Reactor::new` grows one argument, not six.
pub(crate) struct PeerPlane {
    /// Outbound send handle.
    pub(crate) handle: Arc<PeerHandle>,
    /// Origin-side distributed race registry.
    pub(crate) races: Arc<RemoteRaces>,
    /// Voter-side commit ledger.
    pub(crate) ledger: Arc<CommitLedger>,
    /// Executor-side in-flight remote alternatives (for `ELIMINATE`).
    pub(crate) inflight: Arc<InflightRemote>,
    /// Local-vs-remote placement policy.
    pub(crate) placement: Placement,
    /// This node's advertised peer identity.
    pub(crate) advertise: String,
}

/// One outbound link's connection state.
enum LinkState {
    Down,
    Up(UpLink),
}

struct UpLink {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_at: usize,
    /// In-order correlation FIFO: one entry per sent frame, popped by
    /// its reply; the `Instant` is the rtt sample's start and the
    /// `u64` is the link's reconnect generation at send time — a reply
    /// whose entry carries a stale generation is dropped, never
    /// matched to a post-reconnect request.
    pending: VecDeque<(SendTag, Instant, u64)>,
}

struct Link {
    /// Configured links persist and redial forever; dynamic links
    /// (dialed on demand, e.g. to send a result back to an origin that
    /// is not in our peer list) are dropped once idle and down.
    configured: bool,
    stat: Option<Arc<PeerStat>>,
    state: LinkState,
    /// Fire-and-forget frames parked while the link is down.
    queue: VecDeque<(Request, SendTag)>,
    backoff: Duration,
    next_dial: Instant,
    ever_up: bool,
    /// Reconnect generation: bumped on every successful dial.
    generation: u64,
    /// Last time a reply (any reply) arrived on this link.
    last_heard: Instant,
    /// Last time a heartbeat was queued on this link.
    last_hb: Instant,
}

impl Link {
    fn new(configured: bool, stat: Option<Arc<PeerStat>>) -> Self {
        Link {
            configured,
            stat,
            state: LinkState::Down,
            queue: VecDeque::new(),
            backoff: BACKOFF_INITIAL,
            next_dial: Instant::now(),
            ever_up: false,
            generation: 0,
            last_heard: Instant::now(),
            last_hb: Instant::now(),
        }
    }
}

/// The peer thread: owns every outbound link.
pub(crate) struct PeerNet {
    wake_rx: TcpStream,
    handle: Arc<PeerHandle>,
    races: Arc<RemoteRaces>,
    ledger: Arc<CommitLedger>,
    ctl: Arc<DaemonCtl>,
    telemetry: Arc<Telemetry>,
    links: HashMap<String, Link>,
    last_sweep: Instant,
    /// This node's advertised identity, for rebuilding `ELIMINATE` /
    /// `RECONCILE` frames on replay.
    advertise: String,
    /// Heartbeat cadence on configured links (zero disables).
    heartbeat: Duration,
    /// Silence threshold for suspicion; quarantine at twice this.
    suspect: Duration,
}

impl PeerNet {
    /// Builds the peer thread's state plus the handle everyone else
    /// uses. The caller spawns [`PeerNet::run`] on its own thread.
    pub(crate) fn new(
        stats: Arc<PeerStatsTable>,
        races: Arc<RemoteRaces>,
        ledger: Arc<CommitLedger>,
        ctl: Arc<DaemonCtl>,
        telemetry: Arc<Telemetry>,
        advertise: String,
        config: &PeerConfig,
    ) -> io::Result<(Self, Arc<PeerHandle>)> {
        let (wake_tx, wake_rx) = wake_pair()?;
        let handle = Arc::new(PeerHandle {
            cmds: Mutex::new(Vec::new()),
            wake_tx,
            stats: Arc::clone(&stats),
        });
        let links = stats
            .peers()
            .iter()
            .map(|p| (p.addr().to_owned(), Link::new(true, Some(Arc::clone(p)))))
            .collect();
        Ok((
            PeerNet {
                wake_rx,
                handle: Arc::clone(&handle),
                races,
                ledger,
                ctl,
                telemetry,
                links,
                last_sweep: Instant::now(),
                advertise,
                heartbeat: Duration::from_millis(config.heartbeat_ms),
                suspect: Duration::from_millis(config.suspect_ms),
            },
            handle,
        ))
    }

    /// The peer event loop. Exits when the daemon drains, after
    /// flushing every open distributed race so no client is stranded.
    pub(crate) fn run(mut self) {
        loop {
            if self.ctl.draining() {
                self.races.shutdown_flush();
                // Best effort: push any ELIMINATE/result frames the
                // flush queued, then leave.
                self.drain_cmds();
                for addr in self.link_addrs() {
                    self.flush_link(&addr);
                }
                break;
            }
            let now = Instant::now();
            self.dial_due(now);
            self.drain_cmds();
            self.health_tick(now);
            self.sweep(now);

            let (mut fds, addrs) = self.poll_set();
            let timeout = self.poll_timeout_ms(Instant::now());
            if poll_fds(&mut fds, timeout).is_err() {
                continue;
            }
            if fds[0].revents != 0 {
                let mut sink = [0u8; 256];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            for (slot, addr) in addrs.iter().enumerate() {
                let revents = fds[slot + 1].revents;
                if revents == 0 {
                    continue;
                }
                if revents & POLLIN != 0 {
                    self.read_link(addr);
                }
                if revents & POLLOUT != 0 {
                    self.flush_link(addr);
                }
            }
            // Dynamic links that went down with nothing left to send
            // are garbage; configured links persist for redial.
            self.links.retain(|_, l| {
                l.configured || !matches!(l.state, LinkState::Down) || !l.queue.is_empty()
            });
        }
    }

    fn link_addrs(&self) -> Vec<String> {
        self.links.keys().cloned().collect()
    }

    /// Re-dials every down link whose backoff expired.
    fn dial_due(&mut self, now: Instant) {
        let due: Vec<String> = self
            .links
            .iter()
            .filter(|(_, l)| matches!(l.state, LinkState::Down) && l.next_dial <= now)
            .map(|(a, _)| a.clone())
            .collect();
        for addr in due {
            self.dial(&addr);
        }
    }

    fn dial(&mut self, addr: &str) {
        if !self.links.contains_key(addr) {
            return;
        }
        let connected = connect(addr);
        let reconcile = Request::Reconcile {
            watermark: self.races.reconcile_watermark(),
            origin: self.advertise.clone(),
        };
        let heartbeat = self.heartbeat;
        let link = self.links.get_mut(addr).expect("link exists");
        match connected {
            Ok(stream) => {
                let reconnected = link.ever_up;
                if reconnected {
                    if let Some(stat) = &link.stat {
                        stat.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                link.ever_up = true;
                link.backoff = BACKOFF_INITIAL;
                link.generation += 1;
                let now = Instant::now();
                link.last_heard = now;
                link.last_hb = now;
                if let Some(stat) = &link.stat {
                    stat.up.store(true, Ordering::Relaxed);
                }
                let mut up = UpLink {
                    stream,
                    decoder: FrameDecoder::new(),
                    out: Vec::new(),
                    out_at: 0,
                    pending: VecDeque::new(),
                };
                if reconnected && link.configured {
                    // Partition-heal reconciliation: tell the peer
                    // which of our races are long decided, so it kills
                    // zombies the replayed ELIMINATEs don't name.
                    push_frame(&mut up, link.generation, addr, &reconcile, SendTag::Fire);
                }
                // Frames parked while down — including ELIMINATEs that
                // were unacknowledged when the link died — go out next.
                let queued = std::mem::take(&mut link.queue);
                for (req, tag) in queued {
                    push_frame(&mut up, link.generation, addr, &req, tag);
                }
                if link.configured && !heartbeat.is_zero() {
                    // Prime the health lifecycle (and the rtt EWMA, and
                    // the load figures) without waiting one cadence.
                    push_frame(
                        &mut up,
                        link.generation,
                        addr,
                        &Request::PeerStats,
                        SendTag::Heartbeat,
                    );
                }
                link.state = LinkState::Up(up);
                let addr = addr.to_owned();
                self.flush_link(&addr);
            }
            Err(_) => {
                link.next_dial = Instant::now() + link.backoff;
                link.backoff = (link.backoff * 2).min(BACKOFF_MAX);
            }
        }
    }

    /// Moves queued commands onto their links: encoded onto an up
    /// link's buffer, failed fast or parked on a down one.
    fn drain_cmds(&mut self) {
        let cmds = std::mem::take(
            &mut *self
                .handle
                .cmds
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for cmd in cmds {
            if !self.links.contains_key(&cmd.addr) {
                // Dial-on-demand: an origin outside the configured set
                // (results/votes go back to whoever asked).
                let stat = self.handle.stats.by_addr(&cmd.addr).cloned();
                self.links.insert(cmd.addr.clone(), Link::new(false, stat));
                self.dial(&cmd.addr);
            }
            let link = self.links.get_mut(&cmd.addr).expect("link exists");
            let mut flush = false;
            match &mut link.state {
                LinkState::Up(up) => {
                    push_frame(up, link.generation, &cmd.addr, &cmd.req, cmd.tag);
                    flush = true;
                }
                LinkState::Down => match cmd.tag {
                    SendTag::Fire | SendTag::Eliminate { .. } => {
                        link.queue.push_back((cmd.req, cmd.tag));
                        if link.queue.len() > MAX_QUEUED {
                            link.queue.pop_front();
                        }
                    }
                    // Fail fast: a down peer cannot run the alternative
                    // or grant the vote, and the race must not wait for
                    // the redial to find that out.
                    SendTag::ExecAlt { race_id, alt_idx } => {
                        self.races.on_remote_refused(race_id, alt_idx);
                    }
                    SendTag::Vote { race_id } => {
                        self.races.on_vote(race_id, &cmd.addr, false);
                    }
                    // Heartbeats are minted by the peer thread on up
                    // links only; one racing a link death is just
                    // dropped — the next dial primes a fresh one.
                    SendTag::Heartbeat => {}
                },
            }
            if flush {
                self.flush_link(&cmd.addr);
            }
        }
    }

    /// Reads everything the link has, dispatching each in-order reply
    /// against its pending tag. Every decoded frame passes the
    /// `peer.link.<addr>.recv` chaos site first: a dropped (or
    /// partitioned) reply consumes its tag silently — exactly what a
    /// reply lost on the wire looks like — a duplicated one dispatches
    /// twice to prove the protocol layer idempotent, and a truncated
    /// one kills the link like any desynchronized stream.
    fn read_link(&mut self, addr: &str) {
        let Some(link) = self.links.get_mut(addr) else {
            return;
        };
        let LinkState::Up(up) = &mut link.state else {
            return;
        };
        let recv_site = faults::enabled().then(|| format!("peer.link.{addr}.recv"));
        let mut buf = [0u8; 8192];
        let mut dead = false;
        let mut dispatches: Vec<(SendTag, Response, Option<Instant>, u64)> = Vec::new();
        loop {
            match up.stream.read(&mut buf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    up.decoder.extend(&buf[..n]);
                    loop {
                        match up.decoder.next_frame() {
                            Ok(Some(body)) => {
                                let fault = recv_site.as_deref().and_then(faults::inject_net);
                                match fault {
                                    Some(NetFault::Truncate) => {
                                        // A reply cut short desyncs the
                                        // stream; the link is done.
                                        dead = true;
                                        break;
                                    }
                                    Some(NetFault::Drop) | Some(NetFault::Partition) => {
                                        let _ = up.pending.pop_front();
                                        continue;
                                    }
                                    Some(NetFault::Delay(d)) => std::thread::sleep(d),
                                    Some(NetFault::Duplicate) | None => {}
                                }
                                match (Response::decode(&body), up.pending.pop_front()) {
                                    (Ok(resp), Some((tag, sent_at, gen))) => {
                                        if matches!(fault, Some(NetFault::Duplicate)) {
                                            // Second delivery: no tag of
                                            // its own, no rtt sample.
                                            dispatches.push((tag, resp.clone(), None, gen));
                                        }
                                        dispatches.push((tag, resp, Some(sent_at), gen));
                                    }
                                    _ => {
                                        // Undecodable reply or a reply we
                                        // never asked for: the stream is
                                        // not trustworthy.
                                        dead = true;
                                        break;
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if dead {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        let stat = link.stat.clone();
        let live_gen = link.generation;
        if !dispatches.is_empty() {
            link.last_heard = Instant::now();
            if let Some(stat) = &stat {
                // Any reply is proof of life: a Suspect or Quarantined
                // peer that answers a probe is readmitted.
                if stat.health() != PeerHealth::Up {
                    stat.set_health(PeerHealth::Up);
                }
            }
        }
        for (tag, resp, sent_at, gen) in dispatches {
            if gen != live_gen {
                // A pre-reconnect reply outlived its connection; pairing
                // it with a post-reconnect request would corrupt the
                // FIFO correlation.
                self.telemetry.on_peer_stale_reply();
                continue;
            }
            if let (Some(stat), Some(sent_at)) = (&stat, sent_at) {
                stat.observe_rtt(sent_at.elapsed().as_micros().max(1) as u64);
            }
            self.dispatch_reply(addr, stat.as_ref(), tag, resp);
        }
        if dead {
            self.link_down(addr);
        }
    }

    fn dispatch_reply(
        &self,
        addr: &str,
        stat: Option<&Arc<PeerStat>>,
        tag: SendTag,
        resp: Response,
    ) {
        match tag {
            SendTag::ExecAlt { race_id, alt_idx } => match resp {
                // The executor acks admission with a Text frame; any
                // other reply (Overloaded, Error from an older build)
                // means the alternative is not running there.
                Response::Text { .. } => {}
                _ => self.races.on_remote_refused(race_id, alt_idx),
            },
            SendTag::Vote { race_id } => match resp {
                Response::Vote { granted, .. } => self.races.on_vote(race_id, addr, granted),
                _ => self.races.on_vote(race_id, addr, false),
            },
            SendTag::Heartbeat => {
                // The PEER_STATS reply ends with the executor's load
                // line; older builds without one just leave the load
                // figures at their last value.
                if let (Some(stat), Response::Text { body }) = (stat, &resp) {
                    if let Some((queued, busy, workers)) = parse_load_line(body) {
                        stat.set_load(queued, busy, workers);
                    }
                }
            }
            SendTag::Fire | SendTag::Eliminate { .. } => {}
        }
    }

    /// Writes as much buffered output as the socket takes.
    fn flush_link(&mut self, addr: &str) {
        let Some(link) = self.links.get_mut(addr) else {
            return;
        };
        let LinkState::Up(up) = &mut link.state else {
            return;
        };
        let mut dead = false;
        while up.out_at < up.out.len() {
            match up.stream.write(&up.out[up.out_at..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => up.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if up.out_at == up.out.len() {
            up.out.clear();
            up.out_at = 0;
        }
        if dead {
            self.link_down(addr);
        }
    }

    /// A link died: fail every pending tag, mark the peer down, and
    /// convert its acked-but-unfinished alternatives to failed guards.
    /// Unacknowledged `ELIMINATE`s are re-parked for replay on the next
    /// dial — the race outcome no longer needs them, but the peer must
    /// still learn it or it keeps racing a ghost.
    fn link_down(&mut self, addr: &str) {
        let Some(link) = self.links.get_mut(addr) else {
            return;
        };
        let pending = match std::mem::replace(&mut link.state, LinkState::Down) {
            LinkState::Up(up) => up.pending,
            LinkState::Down => VecDeque::new(),
        };
        if let Some(stat) = &link.stat {
            stat.up.store(false, Ordering::Relaxed);
        }
        link.backoff = BACKOFF_INITIAL;
        link.next_dial = Instant::now() + BACKOFF_INITIAL;
        let mut fails = Vec::new();
        for (tag, _, _) in pending {
            match tag {
                SendTag::Eliminate { race_id } => {
                    link.queue.push_back((
                        Request::Eliminate {
                            race_id,
                            origin: self.advertise.clone(),
                        },
                        SendTag::Eliminate { race_id },
                    ));
                    if link.queue.len() > MAX_QUEUED {
                        link.queue.pop_front();
                    }
                }
                SendTag::Fire | SendTag::Heartbeat => {}
                tag => fails.push(tag),
            }
        }
        for tag in fails {
            match tag {
                SendTag::ExecAlt { race_id, alt_idx } => {
                    self.races.on_remote_refused(race_id, alt_idx);
                }
                SendTag::Vote { race_id } => self.races.on_vote(race_id, addr, false),
                _ => {}
            }
        }
        self.races.on_peer_down(addr);
    }

    /// The health lifecycle tick: queue heartbeats that are due and age
    /// silent peers Up → Suspect → Quarantined. Quarantine is entered
    /// after two silence thresholds; readmission happens in
    /// `read_link` the moment any reply arrives.
    fn health_tick(&mut self, now: Instant) {
        if self.heartbeat.is_zero() {
            return;
        }
        let suspect = self.suspect;
        let mut flush: Vec<String> = Vec::new();
        for (addr, link) in &mut self.links {
            if !link.configured {
                continue;
            }
            let LinkState::Up(up) = &mut link.state else {
                continue;
            };
            if now.duration_since(link.last_hb) >= self.heartbeat {
                link.last_hb = now;
                push_frame(
                    up,
                    link.generation,
                    addr,
                    &Request::PeerStats,
                    SendTag::Heartbeat,
                );
                flush.push(addr.clone());
            }
            if suspect.is_zero() {
                continue;
            }
            let silent = now.duration_since(link.last_heard);
            if let Some(stat) = &link.stat {
                let health = stat.health();
                if silent >= suspect * 2 {
                    if health != PeerHealth::Quarantined {
                        // set_health counts the quarantine transition.
                        stat.set_health(PeerHealth::Quarantined);
                    }
                } else if silent >= suspect && health == PeerHealth::Up {
                    stat.set_health(PeerHealth::Suspect);
                }
            }
        }
        for addr in flush {
            self.flush_link(&addr);
        }
    }

    /// Expires overdue races and (periodically) old ledger slots.
    fn sweep(&mut self, now: Instant) {
        self.races.sweep(now);
        if now.duration_since(self.last_sweep) >= SWEEP_EVERY {
            self.ledger.sweep(LEDGER_TTL);
            self.last_sweep = now;
        }
    }

    /// Poll set: the wake pipe first, then one entry per *up* link.
    fn poll_set(&self) -> (Vec<PollFd>, Vec<String>) {
        let mut fds = Vec::with_capacity(1 + self.links.len());
        let mut addrs = Vec::with_capacity(self.links.len());
        fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
        for (addr, link) in &self.links {
            if let LinkState::Up(up) = &link.state {
                let mut events = POLLIN;
                if up.out_at < up.out.len() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(up.stream.as_raw_fd(), events));
                addrs.push(addr.clone());
            }
        }
        (fds, addrs)
    }

    /// Sleep no longer than the earliest due redial, race expiry, or
    /// heartbeat.
    fn poll_timeout_ms(&self, now: Instant) -> i32 {
        let mut deadline: Option<Instant> = self.races.next_expiry();
        let fold = |d: Instant, deadline: &mut Option<Instant>| {
            *deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
        };
        for link in self.links.values() {
            if matches!(link.state, LinkState::Down) && (link.configured || !link.queue.is_empty())
            {
                fold(link.next_dial, &mut deadline);
            }
            if link.configured
                && !self.heartbeat.is_zero()
                && matches!(link.state, LinkState::Up(_))
            {
                fold(link.last_hb + self.heartbeat, &mut deadline);
            }
        }
        match deadline {
            None => PEER_BACKSTOP_MS,
            Some(d) => (d.saturating_duration_since(now).as_millis() as i32)
                .saturating_add(1)
                .clamp(1, PEER_BACKSTOP_MS),
        }
    }
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable peer"))?;
    let stream = TcpStream::connect_timeout(&sockaddr, CONNECT_TIMEOUT)?;
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Appends one framed request (length prefix + body) to `out`.
fn encode_onto(out: &mut Vec<u8>, req: &Request) {
    let body = req.encode();
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
}

/// Encodes one outbound frame onto an up link, keeping the correlation
/// FIFO aligned, with the `peer.link.<addr>.send` chaos site applied
/// first:
///
/// * **drop / partition** — the frame never reaches the buffer and its
///   tag is never pushed (no request ⇒ no reply ⇒ FIFO stays aligned);
///   a race leg lost this way is recovered by its per-leg deadline.
/// * **delay** — the peer thread stalls briefly, modeling a slow wire.
/// * **duplicate** — the frame is encoded twice with two tag entries;
///   the receiver answers both, and the protocol layer must shrug off
///   the second reply.
/// * **truncate** — the frame's tail is cut, desynchronizing the
///   stream; the receiver closes it and the link dies into redial.
fn push_frame(up: &mut UpLink, gen: u64, addr: &str, req: &Request, tag: SendTag) {
    if faults::enabled() {
        match faults::inject_net(&format!("peer.link.{addr}.send")) {
            Some(NetFault::Drop) | Some(NetFault::Partition) => return,
            Some(NetFault::Delay(d)) => std::thread::sleep(d),
            Some(NetFault::Duplicate) => {
                encode_onto(&mut up.out, req);
                up.pending.push_back((tag, Instant::now(), gen));
            }
            Some(NetFault::Truncate) => {
                let start = up.out.len();
                encode_onto(&mut up.out, req);
                let cut = ((up.out.len() - start) / 2).max(1);
                up.out.truncate(up.out.len() - cut);
                up.pending.push_back((tag, Instant::now(), gen));
                return;
            }
            None => {}
        }
    }
    encode_onto(&mut up.out, req);
    up.pending.push_back((tag, Instant::now(), gen));
}

/// Extracts `(queued, busy, workers)` from the `load queued N busy N
/// workers N` line the executor appends to its `PEER_STATS` reply.
fn parse_load_line(body: &str) -> Option<(u64, u64, u64)> {
    for line in body.lines() {
        let Some(rest) = line.trim().strip_prefix("load ") else {
            continue;
        };
        let mut queued = None;
        let mut busy = None;
        let mut workers = None;
        let mut toks = rest.split_whitespace();
        while let (Some(key), Some(val)) = (toks.next(), toks.next()) {
            let val: u64 = val.parse().ok()?;
            match key {
                "queued" => queued = Some(val),
                "busy" => busy = Some(val),
                "workers" => workers = Some(val),
                _ => {}
            }
        }
        return Some((queued?, busy?, workers?));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_ewma_converges_and_never_zeroes() {
        let stat = PeerStat::new("p:1".into());
        assert_eq!(stat.rtt_ewma_us(), 0, "no sample yet");
        stat.observe_rtt(1000);
        assert_eq!(stat.rtt_ewma_us(), 1000, "first sample seeds the EWMA");
        stat.observe_rtt(0);
        assert!(stat.rtt_ewma_us() >= 1, "EWMA floors at 1µs");
        for _ in 0..64 {
            stat.observe_rtt(200);
        }
        let settled = stat.rtt_ewma_us();
        assert!(
            (195..=210).contains(&settled),
            "settles near 200: {settled}"
        );
    }

    #[test]
    fn stats_table_tracks_liveness() {
        let table = PeerStatsTable::new(&["a:1".into(), "b:2".into()]);
        assert!(table.up_peers().is_empty());
        assert_eq!(table.peers_up(), 0);
        table
            .by_addr("a:1")
            .unwrap()
            .up
            .store(true, Ordering::Relaxed);
        table.by_addr("a:1").unwrap().observe_rtt(300);
        table.by_addr("a:1").unwrap().set_load(4, 2, 8);
        let up = table.up_peers();
        assert_eq!(
            up,
            vec![PeerLoad {
                addr: "a:1".to_owned(),
                rtt_us: 300,
                queued: 4,
                busy: 2,
                workers: 8,
            }]
        );
        assert_eq!(table.peers_up(), 1);
        assert!(table.by_addr("c:3").is_none());
    }

    #[test]
    fn unhealthy_peers_leave_the_placement_input() {
        let table = PeerStatsTable::new(&["a:1".into()]);
        let stat = table.by_addr("a:1").unwrap();
        stat.up.store(true, Ordering::Relaxed);
        assert_eq!(table.peers_up(), 1);

        // Suspicion and quarantine both pull the peer out of
        // placement without touching the TCP `up` bit.
        stat.set_health(PeerHealth::Suspect);
        assert!(table.up_peers().is_empty());
        assert_eq!(table.peers_up(), 0);
        assert_eq!(stat.quarantines(), 0, "suspicion is not quarantine");

        stat.set_health(PeerHealth::Quarantined);
        assert_eq!(stat.quarantines(), 1);
        stat.set_health(PeerHealth::Quarantined);
        assert_eq!(stat.quarantines(), 1, "re-entry is not a transition");

        // Readmission restores placement eligibility.
        stat.set_health(PeerHealth::Up);
        assert_eq!(table.peers_up(), 1);
        stat.set_health(PeerHealth::Quarantined);
        assert_eq!(stat.quarantines(), 2, "each distinct entry counts");
        assert_eq!(table.total_quarantines(), 2);
    }

    #[test]
    fn load_line_parses_and_rejects_garbage() {
        let body = "altxd peers\n  peer x:1  up 1 ...\nload queued 7 busy 3 workers 4\n";
        assert_eq!(parse_load_line(body), Some((7, 3, 4)));
        assert_eq!(parse_load_line("no load here\n"), None);
        assert_eq!(
            parse_load_line("load queued 7 busy 3\n"),
            None,
            "all three figures or nothing"
        );
        assert_eq!(parse_load_line("load queued x busy 3 workers 4\n"), None);
    }

    #[test]
    fn render_lists_every_configured_peer() {
        let table = PeerStatsTable::new(&["x:1".into(), "y:2".into()]);
        table.by_addr("x:1").unwrap().note_dispatched();
        table.by_addr("x:1").unwrap().note_win();
        let text = table.render();
        assert!(text.contains("peer x:1"), "{text}");
        assert!(text.contains("peer y:2"), "{text}");
        assert!(text.contains("dispatched 1  wins 1"), "{text}");
    }
}
