//! The workload catalog: named alternative-blocks a request can race.
//!
//! Each workload is a recipe for an [`AltBlock`] whose alternatives are
//! mutually exclusive ways of producing one `u64`. The request's `arg`
//! parameterizes the block (problem size or RNG seed), so repeated
//! requests explore the workload's latency distribution rather than one
//! fixed point. Sleep-based workloads poll their [`CancelToken`] every
//! 200 µs, so losing siblings and deadline-expired races stop promptly —
//! the serving-layer analogue of the paper's elimination signal.

use altx::{AltBlock, CancelToken};
use altx_bench::TimeDistribution;
use altx_des::SimRng;
use altx_prolog::{KnowledgeBase, Solver};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A catalog entry: what a workload is and which alternatives race.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Registered name (what requests put on the wire).
    pub name: &'static str,
    /// One-line description for stats dumps.
    pub description: &'static str,
    /// The alternatives' names, in block declaration order. Interned
    /// statically so telemetry and the scheduler can index wins by
    /// `(workload index, alternative index)` with no string keys on the
    /// hot path.
    pub alt_names: &'static [&'static str],
}

impl WorkloadSpec {
    /// Number of alternatives the block races.
    pub fn alternatives(&self) -> usize {
        self.alt_names.len()
    }

    /// Index of an alternative by name within this workload.
    pub fn alt_index(&self, alt: &str) -> Option<usize> {
        self.alt_names.iter().position(|n| *n == alt)
    }
}

/// Every workload the daemon serves.
pub const CATALOG: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "trivial",
        description: "two instant alternatives; measures pure service overhead",
        alt_names: &["instant-a", "instant-b"],
    },
    WorkloadSpec {
        name: "lognormal",
        description: "three heavy-tailed (lognormal) alternatives; racing wins",
        alt_names: &["draw-0", "draw-1", "draw-2"],
    },
    WorkloadSpec {
        name: "bimodal",
        description: "two usually-fast/sometimes-slow alternatives",
        alt_names: &["draw-0", "draw-1"],
    },
    WorkloadSpec {
        name: "sleep",
        description: "one alternative sleeping arg milliseconds; deadline fodder",
        alt_names: &["sleeper"],
    },
    WorkloadSpec {
        name: "prolog",
        description: "or-parallel countdown query raced against a reordered program",
        alt_names: &["clause-order-as-written", "clause-order-reversed"],
    },
];

/// Looks up a catalog entry by name.
pub fn spec(name: &str) -> Option<&'static WorkloadSpec> {
    CATALOG.iter().find(|w| w.name == name)
}

/// Looks up a workload's catalog index by name — the interned key the
/// scheduler and telemetry use in place of the string.
pub fn index_of(name: &str) -> Option<usize> {
    CATALOG.iter().position(|w| w.name == name)
}

/// Builds the alternative block for `name`, parameterized by `arg`.
/// Returns `None` for unregistered names.
pub fn build(name: &str, arg: u64) -> Option<AltBlock<u64>> {
    build_pruned(name, arg, None)
}

/// Like [`build`], but alternatives whose `skip` entry is `true` get an
/// instantly-failing **stub** in place of their real body — the
/// scheduler decided they are not worth constructing (near-zero win
/// rate; see `HedgePolicy::plan_pruned`). The stub preserves the
/// alternative's index and name, so launch offsets, winner accounting,
/// and the engine's suppression counting line up with the full block;
/// only the body (and whatever it would have captured or computed at
/// construction time) is skipped. Workloads that pre-draw per-
/// alternative randomness still advance the stream for skipped
/// entries, so the surviving alternatives replay exactly the values
/// they would see in an unpruned build of the same `arg`.
pub fn build_pruned(name: &str, arg: u64, skip: Option<&[bool]>) -> Option<AltBlock<u64>> {
    match name {
        "trivial" => Some(trivial(arg, skip)),
        "lognormal" => Some(sampled(
            arg,
            3,
            TimeDistribution::LogNormal {
                median_ms: 3.0,
                sigma: 1.0,
            },
            skip,
        )),
        "bimodal" => Some(sampled(
            arg,
            2,
            TimeDistribution::Bimodal {
                fast_ms: 1.0,
                slow_ms: 20.0,
                p_fast: 0.7,
            },
            skip,
        )),
        "sleep" => Some(sleep_block(arg)),
        "prolog" => Some(prolog(arg, skip)),
        _ => None,
    }
}

/// Whether alternative `i` should be built for real. Out-of-range mask
/// entries (a catalog/spec mismatch) fail safe: build everything.
fn wanted(skip: Option<&[bool]>, i: usize) -> bool {
    !skip.is_some_and(|s| s.get(i).copied().unwrap_or(false))
}

/// Sleeps for `total`, polling the token; `false` means we were
/// cancelled (race already decided, or deadline blown) and the
/// alternative should fail instead of pretending it finished.
fn cancellable_sleep(total: Duration, token: &CancelToken) -> bool {
    const SLICE: Duration = Duration::from_micros(200);
    let end = Instant::now() + total;
    loop {
        if token.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= end {
            return true;
        }
        std::thread::sleep(SLICE.min(end - now));
    }
}

/// Two alternatives that answer immediately. The race is decided by
/// scheduler timing alone; the value is `arg` either way, mirroring the
/// paper's requirement that alternatives be observably interchangeable.
fn trivial(arg: u64, skip: Option<&[bool]>) -> AltBlock<u64> {
    let mut block = AltBlock::new();
    for (i, name) in ["instant-a", "instant-b"].into_iter().enumerate() {
        block = if wanted(skip, i) {
            block.alternative(name, move |_ws, _t| Some(arg))
        } else {
            block.alternative(name, |_ws, _t| None)
        };
    }
    block
}

/// `n` alternatives each sleeping a time drawn from `dist` (seeded by
/// `arg`, so the same request replays the same race). Each stamps its
/// index into the workspace before succeeding — losing writes must
/// never survive, and the engine's COW containment guarantees it.
fn sampled(arg: u64, n: usize, dist: TimeDistribution, skip: Option<&[bool]>) -> AltBlock<u64> {
    let mut rng = SimRng::seed_from_u64(arg.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA17B);
    let mut block = AltBlock::new();
    for i in 0..n {
        // Drawn even for skipped alternatives: the per-arg stream must
        // stay aligned so the kept alternatives replay their usual times.
        let ms = dist.sample(&mut rng).as_millis_f64();
        block = if wanted(skip, i) {
            block.alternative(format!("draw-{i}"), move |ws, token: &CancelToken| {
                if !cancellable_sleep(Duration::from_secs_f64(ms / 1_000.0), token) {
                    return None;
                }
                ws.write(0, &[i as u8 + 1]);
                Some(ms.ceil() as u64)
            })
        } else {
            block.alternative(format!("draw-{i}"), |_ws, _t| None)
        };
    }
    block
}

/// One alternative sleeping exactly `arg` milliseconds — the simplest
/// way to exercise deadlines: a deadline shorter than `arg` must come
/// back `DeadlineExceeded`, never a value.
fn sleep_block(arg: u64) -> AltBlock<u64> {
    AltBlock::new().alternative("sleeper", move |_ws, token: &CancelToken| {
        cancellable_sleep(Duration::from_millis(arg), token).then_some(arg)
    })
}

/// The canned knowledge base for the `prolog` workload. Parsed once;
/// requests share it read-only — the paper's "overwhelming
/// preponderance of read references" case.
fn prolog_kb() -> &'static (KnowledgeBase, KnowledgeBase) {
    static KB: OnceLock<(KnowledgeBase, KnowledgeBase)> = OnceLock::new();
    KB.get_or_init(|| {
        // Left program explores a dead-end branch first; the reordered
        // program reaches the witness clause immediately. Racing the two
        // clause orders is or-parallelism at the strategy level.
        let slow_first = KnowledgeBase::parse(
            "countdown(0).
             countdown(N) :- N > 0, M is N - 1, countdown(M).
             q(D) :- countdown(D), fail.
             q(_).",
        )
        .expect("canned program parses");
        let fast_first = KnowledgeBase::parse(
            "countdown(0).
             countdown(N) :- N > 0, M is N - 1, countdown(M).
             q(_).
             q(D) :- countdown(D), fail.",
        )
        .expect("canned program parses");
        (slow_first, fast_first)
    })
}

/// Races the same query under two clause orders; the winner is whichever
/// strategy proves `q/1` first. The solver itself is not interruptible,
/// so the query size is bounded to keep losers short-lived. A skipped
/// alternative's query string is never even formatted.
fn prolog(arg: u64, skip: Option<&[bool]>) -> AltBlock<u64> {
    let depth = 50 + arg % 450;
    let mut block = AltBlock::new();
    block = if wanted(skip, 0) {
        let query = format!("q({depth})");
        block.alternative(
            "clause-order-as-written",
            move |_ws, token: &CancelToken| {
                if token.is_cancelled() {
                    return None;
                }
                let (slow_first, _) = prolog_kb();
                let mut solver = Solver::new(slow_first);
                let sols = solver.solve_str(&query, 1).ok()?;
                (!sols.is_empty()).then(|| solver.steps())
            },
        )
    } else {
        block.alternative("clause-order-as-written", |_ws, _t| None)
    };
    if wanted(skip, 1) {
        let query = format!("q({depth})");
        block.alternative("clause-order-reversed", move |_ws, token: &CancelToken| {
            if token.is_cancelled() {
                return None;
            }
            let (_, fast_first) = prolog_kb();
            let mut solver = Solver::new(fast_first);
            let sols = solver.solve_str(&query, 1).ok()?;
            (!sols.is_empty()).then(|| solver.steps())
        })
    } else {
        block.alternative("clause-order-reversed", |_ws, _t| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx::engine::ThreadedEngine;
    use altx::Engine;
    use altx_pager::{AddressSpace, PageSize};

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(4096, PageSize::K4)
    }

    #[test]
    fn catalog_names_all_build() {
        for spec in CATALOG {
            let block = build(spec.name, 7).expect("catalog entry builds");
            assert_eq!(block.len(), spec.alternatives(), "{}", spec.name);
            for (i, alt) in block.alternatives().iter().enumerate() {
                assert_eq!(
                    alt.name(),
                    spec.alt_names[i],
                    "{}: interned alternative names match the block",
                    spec.name
                );
                assert_eq!(spec.alt_index(alt.name()), Some(i));
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("no-such-workload", 0).is_none());
        assert!(spec("no-such-workload").is_none());
        assert!(index_of("no-such-workload").is_none());
    }

    #[test]
    fn index_of_matches_catalog_order() {
        for (i, w) in CATALOG.iter().enumerate() {
            assert_eq!(index_of(w.name), Some(i));
        }
    }

    #[test]
    fn trivial_returns_arg() {
        let r = ThreadedEngine::new().execute(&build("trivial", 42).unwrap(), &mut ws());
        assert_eq!(r.value, Some(42));
    }

    #[test]
    fn prolog_finds_the_witness() {
        let r = ThreadedEngine::new().execute(&build("prolog", 3).unwrap(), &mut ws());
        assert!(r.succeeded());
    }

    #[test]
    fn sleep_workload_is_cancellable() {
        let token = CancelToken::new();
        token.cancel();
        let start = Instant::now();
        let block = build("sleep", 5_000).unwrap();
        let mut space = ws();
        let r = ThreadedEngine::new().execute_with_token(&block, &mut space, &token);
        assert!(!r.succeeded());
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "cancel must cut the sleep short"
        );
    }
}
