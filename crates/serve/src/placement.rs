//! Local-vs-remote placement for race alternatives.
//!
//! The paper ships an alternative to another machine only when the
//! remote fork pays for itself (§4.4): predicted transfer + remote
//! execution must beat waiting for a local slot. `altx-cluster` carries
//! that cost model ([`RemoteForkModel`] over a [`NetworkModel`]); here
//! it is fed with **live** observations instead of 1989 calibration —
//! the measured per-peer round-trip EWMA stands in for the network
//! latency, the request frame stands in for the checkpoint image (the
//! daemon re-executes a registered workload by name, so the "image" is
//! a few dozen bytes, not a 70 KB process), and the local queueing
//! estimate comes from the worker pool's depth and the scheduler's
//! per-alternative latency EWMAs ([`AltStatsTable`] via
//! [`CatalogStats`]).
//!
//! The favourite alternative always runs locally — shipping the likely
//! winner would put the common case behind the network. Everything else
//! is shipped when the model says remote dispatch wins, plus one forced
//! exploration dispatch every `explore_every` races so the rtt EWMAs
//! and remote win statistics stay live even when the model says local
//! (the same reasoning as the hedge scheduler's exploration floor).
//!
//! [`AltStatsTable`]: altx::stats::AltStatsTable

use crate::peer::PeerLoad;
use crate::sched::CatalogStats;
use altx_cluster::{NetworkModel, RemoteForkModel};
use altx_des::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};

/// Assumed wire bandwidth for the live model, bytes/second. Loopback
/// and modern LANs move the daemon's tiny frames in well under the
/// latency term, so this only has to be "not 1989".
const LIVE_BANDWIDTH: u64 = 125_000_000; // ~1 Gb/s

/// Fallback execution estimate (µs) for alternatives with no history.
const COLD_EXEC_US: f64 = 1_000.0;

/// Placement policy state: the exploration tick counter plus the knobs.
#[derive(Debug)]
pub(crate) struct Placement {
    /// Force one remote dispatch every N races (0 disables exploration).
    explore_every: u64,
    ticks: AtomicU64,
}

impl Placement {
    pub(crate) fn new(explore_every: u64) -> Self {
        Placement {
            explore_every,
            ticks: AtomicU64::new(0),
        }
    }

    /// The live rfork model for a peer whose measured round trip is
    /// `rtt_us`: one control round trip of the dispatch protocol, no
    /// checkpoint/restore streaming cost beyond moving the frame.
    fn live_model(rtt_us: u64) -> RemoteForkModel {
        RemoteForkModel {
            // The "image" is the EXEC_ALT frame; rates high enough that
            // the latency term dominates, as it does on a real LAN.
            checkpoint_rate: LIVE_BANDWIDTH,
            restore_rate: LIVE_BANDWIDTH,
            fixed: SimDuration::ZERO,
            control_rtts: 1,
            network: NetworkModel {
                latency: SimDuration::from_micros(rtt_us.div_ceil(2).max(1)),
                bandwidth_bytes_per_sec: LIVE_BANDWIDTH,
                delay_factor: 1.0,
            },
        }
    }

    /// Predicted overhead (µs) of shipping `frame_bytes` to a peer with
    /// the given measured round trip: the observed rfork time of the
    /// live model (transfer both ways + protocol round trip).
    pub(crate) fn remote_overhead_us(rtt_us: u64, frame_bytes: u64) -> f64 {
        Self::live_model(rtt_us)
            .observed_time(frame_bytes)
            .as_micros_f64()
    }

    /// Chooses, per alternative, local launch (`None`) or the peer to
    /// ship it to (`Some(addr)`). Returns `None` when nothing ships —
    /// the caller takes the unchanged single-node path.
    ///
    /// `up_peers` carries every healthy (Up) peer's measured rtt and
    /// advertised load; `queued`/`workers` describe the local pool
    /// right now.
    pub(crate) fn assign(
        &self,
        widx: usize,
        n_alts: usize,
        frame_bytes: u64,
        up_peers: &[PeerLoad],
        queued: usize,
        workers: usize,
        catalog: &CatalogStats,
    ) -> Option<Vec<Option<String>>> {
        if up_peers.is_empty() || n_alts < 2 {
            return None;
        }
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let explore = self.explore_every > 0 && tick % self.explore_every == 0;

        let table = catalog.table(widx);
        let favourite = table.as_ref().and_then(|t| t.favourite()).unwrap_or(0);
        let exec_est = |alt: usize| {
            table
                .as_ref()
                .and_then(|t| t.ewma_us(alt))
                .unwrap_or(COLD_EXEC_US)
        };
        // Local queueing estimate: how long a newly submitted race sits
        // behind the queue, with the favourite's EWMA as the unit of
        // service time. An idle pool estimates zero — then only the
        // exploration floor ships.
        let local_wait_us = queued as f64 * exec_est(favourite) / workers.max(1) as f64;
        // Same queueing estimate on the peer's side, from the load it
        // advertised in its last heartbeat: a busy peer is no escape
        // from a busy pool.
        let remote_wait_us = |p: &PeerLoad| {
            let queue = p.queued as f64 * exec_est(favourite) / p.workers.max(1) as f64;
            // Fully busy workers mean even the first slot isn't free:
            // charge one service time for the leg to reach a worker.
            if p.workers > 0 && p.busy >= p.workers {
                queue + exec_est(favourite)
            } else {
                queue
            }
        };

        let mut out: Vec<Option<String>> = vec![None; n_alts];
        let mut shipped = 0usize;
        let mut peer_rr = tick as usize;
        for alt in 0..n_alts {
            if alt == favourite {
                continue; // the likely winner stays local
            }
            // Rotate through up peers, cheapest rtt first on tie races
            // being irrelevant here — fairness matters more than the
            // µs-level rtt spread inside one cluster.
            let peer = &up_peers[peer_rr % up_peers.len()];
            let overhead = Self::remote_overhead_us(peer.rtt_us, frame_bytes);
            // Ship when transfer + remote queue + exec beats local
            // queue + exec; the exec estimate is the same alternative
            // either way, so it cancels out of the comparison.
            let model_says_ship = overhead + remote_wait_us(peer) < local_wait_us;
            let force = explore && shipped == 0;
            if model_says_ship || force {
                out[alt] = Some(peer.addr.clone());
                shipped += 1;
                peer_rr += 1;
            }
        }
        (shipped > 0).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: usize) -> Vec<PeerLoad> {
        (0..n)
            .map(|i| PeerLoad {
                addr: format!("127.0.0.1:{}", 9000 + i),
                rtt_us: 200,
                queued: 0,
                busy: 0,
                workers: 4,
            })
            .collect()
    }

    #[test]
    fn no_peers_or_single_alt_stays_local() {
        let p = Placement::new(1);
        let catalog = CatalogStats::new();
        assert!(p.assign(0, 3, 64, &[], 0, 4, &catalog).is_none());
        assert!(p.assign(0, 1, 64, &peers(2), 0, 4, &catalog).is_none());
    }

    #[test]
    fn exploration_ships_exactly_one_non_favourite() {
        let p = Placement::new(1); // every race explores
        let catalog = CatalogStats::new();
        let assign = p
            .assign(0, 3, 64, &peers(2), 0, 4, &catalog)
            .expect("exploration must ship");
        assert_eq!(assign.len(), 3);
        assert_eq!(assign.iter().flatten().count(), 1, "{assign:?}");
        assert!(assign[0].is_none(), "cold favourite defaults to alt 0");
    }

    #[test]
    fn idle_pool_without_exploration_stays_local() {
        let p = Placement::new(0); // exploration off
        let catalog = CatalogStats::new();
        assert!(p.assign(0, 3, 64, &peers(2), 0, 4, &catalog).is_none());
    }

    #[test]
    fn deep_queue_ships_the_siblings() {
        let p = Placement::new(0);
        let catalog = CatalogStats::new();
        // 64 queued races behind 2 workers at ~1ms each: local wait
        // ~32ms dwarfs a 200µs rtt, so the model ships both siblings.
        let assign = p
            .assign(0, 3, 64, &peers(2), 64, 2, &catalog)
            .expect("saturated pool must ship");
        assert_eq!(assign.iter().flatten().count(), 2, "{assign:?}");
    }

    #[test]
    fn busy_peers_are_penalized_back_to_local() {
        let p = Placement::new(0);
        let catalog = CatalogStats::new();
        // The local queue that ships both siblings in the test above…
        let mut swamped = peers(2);
        for peer in &mut swamped {
            // …stops paying once the peers advertise an even deeper
            // queue behind fewer workers.
            peer.queued = 512;
            peer.workers = 1;
            peer.busy = 1;
        }
        assert!(
            p.assign(0, 3, 64, &swamped, 64, 2, &catalog).is_none(),
            "peers busier than the local pool must not be shipped to"
        );
        // Idle peers with the same rtt still win that trade.
        assert!(p.assign(0, 3, 64, &peers(2), 64, 2, &catalog).is_some());
    }

    #[test]
    fn live_model_overhead_tracks_rtt() {
        let near = Placement::remote_overhead_us(100, 64);
        let far = Placement::remote_overhead_us(10_000, 64);
        assert!(near < far, "{near} vs {far}");
        // A 100µs-rtt peer costs on the order of the rtt, not 1989's
        // seconds-scale rfork.
        assert!(near < 1_000.0, "{near}");
    }
}
