//! Per-connection state machine for the reactor front end.
//!
//! A connection owns a non-blocking socket, an incremental
//! [`FrameDecoder`] for the inbound side, and an outbound queue of
//! **pre-encoded reply frames** flushed opportunistically. Since the
//! ring data plane landed, a reply is encoded exactly once — into a
//! ring slot (or a heap spill) — before it ever reaches the
//! connection; the socket write reads straight out of that backing
//! store, so the connection never copies reply bytes again.
//!
//! Because requests pipeline — a client may send several RUN frames
//! before the first reply lands — every request is assigned a
//! monotonically increasing *sequence number* at decode time, and
//! reply frames are released to the write queue strictly in sequence
//! order: a completion for seq 3 parks in its slot until seqs 1 and 2
//! have been released, so replies always come back in request order no
//! matter which race finishes first.
//!
//! Lifecycle: `Open` (reading and writing) → `read_closed` (peer EOF, a
//! protocol error, or server drain: no new requests, in-flight replies
//! still flush) → reclaimed by the reactor the moment the last owed
//! reply is flushed. There is no half-reaped state and no thread to
//! join — closing a connection is dropping its state (and dropping a
//! queued [`ReplyFrame`] reclaims its ring slot by destructor, so a
//! dying connection can never leak a slot).

use crate::bufpool::BufPool;
use crate::frame::{FrameDecoder, FrameError};
use crate::ring::EncodedReply;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// One encoded reply frame queued on a connection, either exclusively
/// owned or shared across the N waiters of a coalesced batch — the
/// batcher's fan-out hands every waiter the *same* encoding (one slot,
/// read N times) instead of re-encoding per waiter.
///
/// `Arc` rather than `Rc` only because a `Conn` must stay `Send` for
/// the reactor's thread spawn; the refcount is still touched by one
/// thread.
pub(crate) enum ReplyFrame {
    /// Sole recipient: the common case.
    Own(EncodedReply),
    /// Coalesced fan-out: shared by every waiter of one batch.
    Shared(Arc<EncodedReply>),
}

impl ReplyFrame {
    /// The wire bytes (length prefix + body) of the whole frame.
    fn bytes(&self) -> &[u8] {
        match self {
            ReplyFrame::Own(reply) => reply.bytes(),
            ReplyFrame::Shared(reply) => reply.bytes(),
        }
    }

    /// Retires the frame after its last byte is written: ring slots
    /// reclaim by drop, heap spills recycle into the shard's pool (for
    /// a shared frame, only the last waiter's release recycles).
    fn recycle(self, pool: &mut BufPool) {
        match self {
            ReplyFrame::Own(reply) => reply.recycle(pool),
            ReplyFrame::Shared(reply) => {
                if let Ok(reply) = Arc::try_unwrap(reply) {
                    reply.recycle(pool);
                }
            }
        }
    }
}

/// What a readiness-driven read pass produced.
pub(crate) struct ReadOutcome {
    /// Complete frame bodies, in arrival order. Drawn from the shard's
    /// [`BufPool`]; the reactor returns each to the pool once handled.
    pub frames: Vec<Vec<u8>>,
    /// A framing error (oversized prefix, EOF mid-frame). The
    /// connection stops reading; the reactor owes the peer one error
    /// reply before close.
    pub error: Option<FrameError>,
}

/// One client connection owned by the reactor.
pub(crate) struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Deliverable reply frames, in request order, awaiting the socket.
    out: VecDeque<ReplyFrame>,
    /// How much of the *front* frame has already been written.
    out_pos: usize,
    /// Reply slots in request order: `None` until the reply for that
    /// seq is known, then the encoded reply frame.
    pending: VecDeque<(u64, Option<ReplyFrame>)>,
    next_seq: u64,
    /// No more requests will be read (peer EOF, protocol error, or
    /// server drain made permanent).
    read_closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: VecDeque::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            read_closed: false,
        })
    }

    /// Reads until the socket would block (or EOF), returning every
    /// complete frame that became available in pool-recycled buffers.
    /// `Err` means the transport itself failed and the connection is
    /// unsalvageable.
    pub(crate) fn on_readable(&mut self, pool: &mut BufPool) -> io::Result<ReadOutcome> {
        let mut buf = [0u8; 8192];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let mut frames = Vec::new();
        let mut error = None;
        loop {
            let mut body = pool.get();
            match self.decoder.next_frame_into(&mut body) {
                Ok(true) => frames.push(body),
                Ok(false) => {
                    pool.put(body);
                    break;
                }
                Err(e) => {
                    pool.put(body);
                    self.read_closed = true;
                    error = Some(e);
                    break;
                }
            }
        }
        if error.is_none() && self.read_closed {
            // EOF with a partial frame buffered is a truncation, not a
            // clean disconnect.
            error = self.decoder.finish().err();
        }
        Ok(ReadOutcome { frames, error })
    }

    /// Assigns the next request sequence number and opens its reply
    /// slot.
    pub(crate) fn begin_request(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back((seq, None));
        seq
    }

    /// Fills the reply slot for `seq` with an already-encoded frame and
    /// releases every reply that is now deliverable in order. Unknown
    /// or already-released seqs are ignored (a refused-then-completed
    /// race can double-report); the orphaned frame just drops, which
    /// reclaims its ring slot.
    ///
    /// The frame arrives fully encoded (MAX_FRAME was enforced at
    /// encode time by the shared header writer), so parking on an
    /// earlier seq holds a slot handle, not a copy, and release is a
    /// queue push — zero bytes move.
    pub(crate) fn fulfill(&mut self, seq: u64, frame: ReplyFrame) {
        if let Some(slot) = self
            .pending
            .iter_mut()
            .find(|(s, frame)| *s == seq && frame.is_none())
        {
            slot.1 = Some(frame);
        }
        while let Some((_, Some(_))) = self.pending.front() {
            let (_, frame) = self.pending.pop_front().expect("front exists");
            self.out.push_back(frame.expect("checked Some"));
        }
    }

    /// Flushes queued reply frames until the socket would block,
    /// writing directly from each frame's backing store (ring slot or
    /// spill buffer) and retiring the frame the moment its last byte is
    /// accepted by the kernel — that retirement *is* slot reclamation.
    /// `Err` means the peer is unreachable and the connection is dead.
    pub(crate) fn on_writable(&mut self, pool: &mut BufPool) -> io::Result<()> {
        loop {
            let finished = match self.out.front() {
                None => break,
                Some(front) => {
                    let bytes = front.bytes();
                    loop {
                        if self.out_pos >= bytes.len() {
                            break true;
                        }
                        match self.stream.write(&bytes[self.out_pos..]) {
                            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                            Ok(n) => self.out_pos += n,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(e),
                        }
                    }
                }
            };
            if !finished {
                return Ok(());
            }
            self.out_pos = 0;
            let done = self.out.pop_front().expect("front exists");
            done.recycle(pool);
        }
        Ok(())
    }

    /// Stops reading new requests (drain or protocol error); in-flight
    /// replies still flush.
    pub(crate) fn close_read(&mut self) {
        self.read_closed = true;
    }

    /// Unflushed reply frames are waiting on the socket.
    pub(crate) fn has_output(&self) -> bool {
        !self.out.is_empty()
    }

    /// At least one request has not had its reply fully released.
    pub(crate) fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Every owed reply has been released and flushed.
    pub(crate) fn is_drained(&self) -> bool {
        self.pending.is_empty() && !self.has_output()
    }

    /// The connection has served its purpose and can be reclaimed.
    pub(crate) fn should_close(&self, draining: bool) -> bool {
        (self.read_closed || draining) && self.is_drained()
    }

    /// The poll interest set for the current state.
    pub(crate) fn poll_events(&self, draining: bool) -> i16 {
        let mut events = 0;
        if !self.read_closed && !draining {
            events |= crate::reactor::POLLIN;
        }
        if self.has_output() {
            events |= crate::reactor::POLLOUT;
        }
        events
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
