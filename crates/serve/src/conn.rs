//! Per-connection state machine for the reactor front end.
//!
//! A connection owns a non-blocking socket, an incremental
//! [`FrameDecoder`] for the inbound side, and an outbound byte buffer
//! flushed opportunistically. Because requests pipeline — a client may
//! send several RUN frames before the first reply lands — every request
//! is assigned a monotonically increasing *sequence number* at decode
//! time, and replies are released to the write buffer strictly in
//! sequence order: a completion for seq 3 parks in its slot until seqs
//! 1 and 2 have been encoded, so replies always come back in request
//! order no matter which race finishes first.
//!
//! Lifecycle: `Open` (reading and writing) → `read_closed` (peer EOF, a
//! protocol error, or server drain: no new requests, in-flight replies
//! still flush) → reclaimed by the reactor the moment the last owed
//! reply is flushed. There is no half-reaped state and no thread to
//! join — closing a connection is dropping its state.

use crate::bufpool::BufPool;
use crate::frame::{write_frame, FrameDecoder, FrameError, Response};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// What a readiness-driven read pass produced.
pub(crate) struct ReadOutcome {
    /// Complete frame bodies, in arrival order. Drawn from the shard's
    /// [`BufPool`]; the reactor returns each to the pool once handled.
    pub frames: Vec<Vec<u8>>,
    /// A framing error (oversized prefix, EOF mid-frame). The
    /// connection stops reading; the reactor owes the peer one error
    /// reply before close.
    pub error: Option<FrameError>,
}

/// One client connection owned by the reactor.
pub(crate) struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded, ordered reply bytes awaiting the socket.
    out: Vec<u8>,
    /// How much of `out` has already been written.
    out_pos: usize,
    /// Reply slots in request order: `None` until the reply for that
    /// seq is known, then the encoded `Response` body.
    pending: VecDeque<(u64, Option<Vec<u8>>)>,
    next_seq: u64,
    /// No more requests will be read (peer EOF, protocol error, or
    /// server drain made permanent).
    read_closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            read_closed: false,
        })
    }

    /// Reads until the socket would block (or EOF), returning every
    /// complete frame that became available in pool-recycled buffers.
    /// `Err` means the transport itself failed and the connection is
    /// unsalvageable.
    pub(crate) fn on_readable(&mut self, pool: &mut BufPool) -> io::Result<ReadOutcome> {
        let mut buf = [0u8; 8192];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.decoder.extend(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let mut frames = Vec::new();
        let mut error = None;
        loop {
            let mut body = pool.get();
            match self.decoder.next_frame_into(&mut body) {
                Ok(true) => frames.push(body),
                Ok(false) => {
                    pool.put(body);
                    break;
                }
                Err(e) => {
                    pool.put(body);
                    self.read_closed = true;
                    error = Some(e);
                    break;
                }
            }
        }
        if error.is_none() && self.read_closed {
            // EOF with a partial frame buffered is a truncation, not a
            // clean disconnect.
            error = self.decoder.finish().err();
        }
        Ok(ReadOutcome { frames, error })
    }

    /// Assigns the next request sequence number and opens its reply
    /// slot.
    pub(crate) fn begin_request(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back((seq, None));
        seq
    }

    /// Fills the reply slot for `seq` and releases every reply that is
    /// now deliverable in order. Unknown or already-released seqs are
    /// ignored (a refused-then-completed race can double-report).
    ///
    /// Reply bodies are encoded into pool-recycled buffers; a slot that
    /// parks waiting on an earlier seq holds its pooled buffer until
    /// released, at which point the bytes are folded into `out` and the
    /// buffer goes back to the pool.
    pub(crate) fn fulfill(&mut self, seq: u64, response: &Response, pool: &mut BufPool) {
        if let Some(slot) = self
            .pending
            .iter_mut()
            .find(|(s, body)| *s == seq && body.is_none())
        {
            let mut body = pool.get();
            response.encode_into(&mut body);
            slot.1 = Some(body);
        }
        while let Some((_, Some(_))) = self.pending.front() {
            let (_, body) = self.pending.pop_front().expect("front exists");
            let body = body.expect("checked Some");
            if write_frame(&mut self.out, &body).is_err() {
                // Only an over-MAX_FRAME body can fail a Vec write;
                // substitute a bounded error reply so the stream stays
                // framed.
                let fallback = Response::Error {
                    message: "reply exceeded MAX_FRAME".to_owned(),
                };
                write_frame(&mut self.out, &fallback.encode()).expect("error reply is bounded");
            }
            pool.put(body);
        }
    }

    /// Flushes buffered output until the socket would block. `Err`
    /// means the peer is unreachable and the connection is dead.
    pub(crate) fn on_writable(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Stops reading new requests (drain or protocol error); in-flight
    /// replies still flush.
    pub(crate) fn close_read(&mut self) {
        self.read_closed = true;
    }

    /// Unflushed bytes are waiting on the socket.
    pub(crate) fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// At least one request has not had its reply fully released.
    pub(crate) fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Every owed reply has been released and flushed.
    pub(crate) fn is_drained(&self) -> bool {
        self.pending.is_empty() && !self.has_output()
    }

    /// The connection has served its purpose and can be reclaimed.
    pub(crate) fn should_close(&self, draining: bool) -> bool {
        (self.read_closed || draining) && self.is_drained()
    }

    /// The poll interest set for the current state.
    pub(crate) fn poll_events(&self, draining: bool) -> i16 {
        let mut events = 0;
        if !self.read_closed && !draining {
            events |= crate::reactor::POLLIN;
        }
        if self.has_output() {
            events |= crate::reactor::POLLOUT;
        }
        events
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
