//! The event-loop front end: reactor *shards*, `poll(2)`, every
//! connection.
//!
//! The thread-per-connection daemon spent a stack per idle client and a
//! blocked `rx.recv()` per in-flight race. The reactor inverts that:
//! an event-loop thread multiplexes a *wake channel* and a set of
//! client sockets through `poll(2)`, so concurrent connections cost
//! file descriptors, not threads — the paper's parent/child split (a
//! cheap speculative child per alternative, one responsive parent at
//! the rendezvous) applied to the serving layer itself.
//!
//! With `--shards N` (N > 1) the front end runs **N independent
//! reactors**, each owning its *own* `SO_REUSEPORT` listener bound to
//! the same address: the kernel's accept hash spreads incoming
//! connections across the shards and an accepted socket is already on
//! the thread that will serve it — accept → poll-set registration
//! never crosses threads. From that moment the connection belongs to
//! exactly one shard — its poll set, frame decoding, batch windows,
//! buffer pool, reply ring, and ordered reply slots all live on that
//! shard's thread, and a finished race is routed back through *that
//! shard's* wake pipe. Nothing on the request path crosses a shard
//! boundary, so there is no lock to contend on: the only shared
//! mutable state is each shard's completion queue and inbox, touched
//! once per race. On platforms without `SO_REUSEPORT` the old topology
//! survives as a fallback: one acceptor thread polls a single listener
//! and hands sockets round-robin to the shards' adoption inboxes. With
//! one shard (the default) there is no acceptor and no reuseport —
//! the lone reactor owns the lone listener directly, exactly the
//! pre-sharding topology.
//!
//! The moving parts:
//!
//! * **sys**: a minimal FFI binding to the C library's `poll(2)` plus
//!   the socket calls needed for an `SO_REUSEPORT` bind — std already
//!   links libc, so this adds no dependency; it is the only unsafe
//!   code in the crate and is confined to this module.
//! * **Wake channel**: a loopback socket pair acting as a self-pipe,
//!   one per shard. Workers finish a race, encode the reply **once**
//!   into a ring slot (`ring.rs`), push the slot handle onto the
//!   owning shard's completion queue, and write one byte to its wake
//!   socket; `poll` returns, the shard drains the queue, and the
//!   socket write reads straight out of the slot. No thread ever
//!   blocks waiting for a specific race, and no reply byte is copied
//!   between encode and the kernel.
//! * **[`DaemonCtl`]**: the one deliberately global piece — the
//!   shutdown latch. A `SHUTDOWN` opcode lands on *some* shard but must
//!   drain all of them plus the acceptor, so the latch fans a wake out
//!   to everyone, and the last shard to finish draining closes the
//!   worker pool.
//! * **Drain ordering** (shutdown): (1) stop accepting and stop
//!   reading new requests, (2) keep polling so in-flight completions
//!   still arrive and flush, (3) close each connection the moment its
//!   last owed reply is written, (4) when the last shard has no
//!   connections left, close the queue and join the pool. No admitted
//!   request goes unanswered.

use crate::batch::{BatchKey, Batcher, Offered, Waiter};
use crate::bufpool::BufPool;
use crate::conn::{Conn, ReplyFrame};
use crate::frame::{FrameError, Request, Response, ALT_FAILED};
use crate::peer::{PeerPlane, SendTag};
use crate::pool::{JobMeta, WorkerPool};
use crate::ring::{EncodedReply, ReplyRing};
use crate::sched::{render_catalog, Admission, HedgePolicy, Lanes};
use crate::server::{run_race, run_remote_alt, run_subrace};
use crate::telemetry::{ShardStats, Telemetry};
use crate::workload;
use altx::CancelToken;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

pub(crate) use sys::{bind_reuseport, poll_fds, PollFd, POLLIN, POLLOUT};
use sys::{POLLERR, POLLHUP, POLLNVAL};

/// The one unsafe corner: calling the C library's `poll(2)` and the
/// handful of socket calls needed for an `SO_REUSEPORT` bind (std's
/// `TcpListener` cannot set the option before binding). std links libc
/// on every supported platform, so the extern declarations name
/// symbols that are already in the process — no new dependency, no raw
/// syscall numbers.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, events: i16) -> Self {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
    }

    /// Blocks until an fd is ready or `timeout_ms` elapses, retrying
    /// EINTR. Returns how many entries have non-zero `revents`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // repr(C) pollfd records for the duration of the call, and
            // its length is passed as nfds.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    #[cfg(target_os = "linux")]
    mod reuseport {
        use std::ffi::c_int;
        use std::io;
        use std::net::{SocketAddr, TcpListener};
        use std::os::fd::FromRawFd;

        const AF_INET: c_int = 2;
        const AF_INET6: c_int = 10;
        const SOCK_STREAM: c_int = 1;
        const SOCK_CLOEXEC: c_int = 0x80000;
        const SOL_SOCKET: c_int = 1;
        const SO_REUSEADDR: c_int = 2;
        const SO_REUSEPORT: c_int = 15;
        const BACKLOG: c_int = 1024;

        /// `struct sockaddr_in` from `<netinet/in.h>` (port and
        /// address already in network byte order).
        #[repr(C)]
        struct SockAddrIn {
            sin_family: u16,
            sin_port: [u8; 2],
            sin_addr: [u8; 4],
            sin_zero: [u8; 8],
        }

        /// `struct sockaddr_in6` from `<netinet/in.h>`.
        #[repr(C)]
        struct SockAddrIn6 {
            sin6_family: u16,
            sin6_port: [u8; 2],
            sin6_flowinfo: u32,
            sin6_addr: [u8; 16],
            sin6_scope_id: u32,
        }

        extern "C" {
            fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
            fn setsockopt(
                fd: c_int,
                level: c_int,
                name: c_int,
                value: *const c_int,
                len: u32,
            ) -> c_int;
            fn bind(fd: c_int, addr: *const u8, len: u32) -> c_int;
            fn listen(fd: c_int, backlog: c_int) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        /// Closes `fd` and returns the errno that made us bail.
        fn fail(fd: c_int) -> io::Error {
            let err = io::Error::last_os_error();
            // SAFETY: `fd` came from socket() in bind_reuseport and has
            // not been wrapped in an owning type yet.
            unsafe { close(fd) };
            err
        }

        /// Binds a listening socket with `SO_REUSEPORT` set, so every
        /// shard can bind the same address and the kernel spreads
        /// accepts across them.
        pub fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
            let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
            // SAFETY: plain libc socket calls; the fd is owned by this
            // function until handed to TcpListener (or closed by
            // `fail`), and the sockaddr buffers are live repr(C) locals
            // whose exact sizes are passed alongside.
            unsafe {
                let fd = socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
                if fd < 0 {
                    return Err(io::Error::last_os_error());
                }
                let one: c_int = 1;
                let one_len = std::mem::size_of::<c_int>() as u32;
                if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, one_len) != 0
                    || setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, one_len) != 0
                {
                    return Err(fail(fd));
                }
                let rc = match addr {
                    SocketAddr::V4(v4) => {
                        let sa = SockAddrIn {
                            sin_family: AF_INET as u16,
                            sin_port: v4.port().to_be_bytes(),
                            sin_addr: v4.ip().octets(),
                            sin_zero: [0; 8],
                        };
                        bind(
                            fd,
                            (&sa as *const SockAddrIn).cast(),
                            std::mem::size_of::<SockAddrIn>() as u32,
                        )
                    }
                    SocketAddr::V6(v6) => {
                        let sa = SockAddrIn6 {
                            sin6_family: AF_INET6 as u16,
                            sin6_port: v6.port().to_be_bytes(),
                            sin6_flowinfo: v6.flowinfo(),
                            sin6_addr: v6.ip().octets(),
                            sin6_scope_id: v6.scope_id(),
                        };
                        bind(
                            fd,
                            (&sa as *const SockAddrIn6).cast(),
                            std::mem::size_of::<SockAddrIn6>() as u32,
                        )
                    }
                };
                if rc != 0 || listen(fd, BACKLOG) != 0 {
                    return Err(fail(fd));
                }
                Ok(TcpListener::from_raw_fd(fd))
            }
        }
    }

    #[cfg(target_os = "linux")]
    pub use reuseport::bind_reuseport;

    /// Non-Linux fallback: report the option as unsupported so the
    /// server keeps the acceptor-thread topology instead.
    #[cfg(not(target_os = "linux"))]
    pub fn bind_reuseport(_addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT per-shard accept is only wired up on Linux",
        ))
    }
}

/// A finished race routed back to its reply group — the set of waiters
/// (one per direct request, many per coalesced batch) whose reply slots
/// it fans out to. The reply is already encoded: the posting thread
/// (usually a pool worker) wrote the whole wire frame into a ring slot
/// (or a heap spill) and this carries the handle, not bytes to copy.
struct Completion {
    group: u64,
    reply: EncodedReply,
}

/// State shared between one reactor shard's thread, pool workers
/// (through completion notifiers), and — when sharded — the acceptor.
pub(crate) struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    /// Accepted sockets awaiting adoption by this shard (sharded mode
    /// only; the acceptor pushes, the shard drains each loop turn).
    inbox: Mutex<Vec<TcpStream>>,
    wake_tx: TcpStream,
    /// The shard's reply ring; `post` encodes into it from whatever
    /// thread finished the race.
    ring: ReplyRing,
}

impl ReactorShared {
    /// Encodes the response into this shard's reply ring (spilling to a
    /// fresh heap buffer when the ring can't take it), queues the
    /// completion, and wakes the shard that owns the waiters.
    /// `pub(crate)` because the remote-race registry posts the final
    /// response of a distributed race back to the owning shard.
    pub(crate) fn post(&self, group: u64, response: Response) {
        let reply = EncodedReply::encode(&response, &self.ring);
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion { group, reply });
        self.wake();
    }

    /// Hands an accepted socket to this shard and wakes it.
    fn adopt(&self, stream: TcpStream) {
        self.inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stream);
        self.wake();
    }

    /// Writes one byte to the self-pipe. `WouldBlock` means wake bytes
    /// are already pending, so the reactor is waking anyway; every
    /// other error means the reactor is gone and waking is moot.
    fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// Daemon-wide control plane: the shutdown latch and the fan-out needed
/// to make every front-end thread notice it. The `SHUTDOWN` opcode can
/// arrive on any shard; the handle's `shutdown()` comes from outside
/// any of them — both funnel here.
pub(crate) struct DaemonCtl {
    shutdown: AtomicBool,
    /// Shards still running their event loop; the last one out shuts
    /// the worker pool down.
    live_shards: AtomicUsize,
    /// Every shard's shared state, wired once after construction so the
    /// latch can wake them all.
    shards: OnceLock<Vec<Arc<ReactorShared>>>,
    /// The acceptor's wake pipe (sharded mode only).
    acceptor_wake: OnceLock<TcpStream>,
    /// The peer-network thread's wake pipe, so it drains too.
    peer_wake: OnceLock<TcpStream>,
}

impl DaemonCtl {
    pub(crate) fn new(shards: usize) -> Self {
        DaemonCtl {
            shutdown: AtomicBool::new(false),
            live_shards: AtomicUsize::new(shards),
            shards: OnceLock::new(),
            acceptor_wake: OnceLock::new(),
            peer_wake: OnceLock::new(),
        }
    }

    /// Wires every shard's shared state in (once, at startup).
    pub(crate) fn wire_shards(&self, shards: Vec<Arc<ReactorShared>>) {
        let _ = self.shards.set(shards);
    }

    /// Wires the acceptor's wake pipe in (once, sharded mode only).
    pub(crate) fn wire_acceptor(&self, wake_tx: TcpStream) {
        let _ = self.acceptor_wake.set(wake_tx);
    }

    /// Wires the peer-network thread's wake pipe in (once, at startup).
    pub(crate) fn wire_peer_wake(&self, wake_tx: TcpStream) {
        let _ = self.peer_wake.set(wake_tx);
    }

    /// Flags shutdown and wakes the acceptor, the peer thread, and
    /// every shard so they notice promptly.
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(mut tx) = self.acceptor_wake.get() {
            let _ = tx.write(&[1]);
        }
        if let Some(mut tx) = self.peer_wake.get() {
            let _ = tx.write(&[1]);
        }
        if let Some(shards) = self.shards.get() {
            for shard in shards {
                shard.wake();
            }
        }
    }

    /// The daemon is draining: no new connections, no new requests.
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Records one shard leaving its loop; true for the last one, which
    /// then owns pool teardown.
    fn shard_exited(&self) -> bool {
        self.live_shards.fetch_sub(1, Ordering::SeqCst) == 1
    }
}

/// A connected loopback socket pair: the reactor polls `rx`, everyone
/// else writes `tx`. This is the classic self-pipe trick built from
/// std-only parts (no `pipe(2)` binding needed).
pub(crate) fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let local = tx.local_addr()?;
    // Accept until we see our own connect — a stray peer racing onto
    // the ephemeral port must not become the wake channel.
    let rx = loop {
        let (stream, peer) = listener.accept()?;
        if peer == local {
            break stream;
        }
    };
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// How long `poll` may sleep with nothing to do. Wakeups (completions,
/// shutdown requests) interrupt it; the timeout is only a backstop.
const POLL_BACKSTOP_MS: i32 = 250;

/// One event-loop shard: owns its listener (its own `SO_REUSEPORT`
/// bind when sharded, the lone listener in single-shard mode), its
/// wake receiver, its buffer pool, its reply ring, and every
/// connection it has adopted.
pub(crate) struct Reactor {
    /// `Some` when this shard accepts directly (single-shard mode, or
    /// a per-shard reuseport listener); `None` when an acceptor thread
    /// feeds the shard's inbox (reuseport-less fallback).
    listener: Option<TcpListener>,
    wake_rx: TcpStream,
    shared: Arc<ReactorShared>,
    ctl: Arc<DaemonCtl>,
    pool: Arc<WorkerPool>,
    telemetry: Arc<Telemetry>,
    stats: Arc<ShardStats>,
    bufs: BufPool,
    /// The shard's reply ring (same population `ReactorShared::post`
    /// encodes into); the reactor's own inline replies draw from it
    /// too, spilling to `bufs` instead of allocating.
    ring: ReplyRing,
    sched: Arc<HedgePolicy>,
    batcher: Batcher,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// In-flight reply groups: group id → waiters owed the one reply.
    groups: HashMap<u64, Vec<Waiter>>,
    next_group: u64,
    /// This shard's index — distributed races record it so the remote
    /// registry can post the final response back to the right shard.
    shard_idx: usize,
    /// The peer plane: membership, remote-race registry, commit ledger,
    /// executor-side inflight table, and the placement policy.
    plane: Arc<PeerPlane>,
    /// Feasibility gate consulted before a deadlined request spends a
    /// queue slot; disabled gates admit everything.
    admission: Arc<Admission>,
    /// Workload → priority-lane mapping for run-queue submissions.
    lanes: Arc<Lanes>,
    /// CPU set this shard is placed on (`--pin`); `None` = unpinned.
    /// The reactor thread pins itself at the top of [`Reactor::run`]
    /// and then first-touches the shard's ring and buffer memory so the
    /// pages land NUMA-local to these cores.
    pin_cpus: Option<Vec<usize>>,
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        listener: Option<TcpListener>,
        pool: Arc<WorkerPool>,
        telemetry: Arc<Telemetry>,
        sched: Arc<HedgePolicy>,
        batch_window: Duration,
        ctl: Arc<DaemonCtl>,
        shard_idx: usize,
        plane: Arc<PeerPlane>,
        ring_slots: usize,
        ring_slot_bytes: usize,
        admission: Arc<Admission>,
        lanes: Arc<Lanes>,
        pin_cpus: Option<Vec<usize>>,
    ) -> io::Result<(Self, Arc<ReactorShared>, Arc<ShardStats>)> {
        let (wake_tx, wake_rx) = wake_pair()?;
        let ring = ReplyRing::new(ring_slots, ring_slot_bytes);
        let shared = Arc::new(ReactorShared {
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            wake_tx,
            ring: ring.clone(),
        });
        let bufs = BufPool::default();
        let stats = Arc::new(ShardStats::new(bufs.stats(), ring.stats()));
        Ok((
            Reactor {
                listener,
                wake_rx,
                shared: Arc::clone(&shared),
                ctl,
                pool,
                telemetry,
                stats: Arc::clone(&stats),
                bufs,
                ring,
                sched,
                batcher: Batcher::new(batch_window),
                conns: HashMap::new(),
                next_conn: 0,
                groups: HashMap::new(),
                next_group: 0,
                shard_idx,
                plane,
                admission,
                lanes,
                pin_cpus,
            },
            shared,
            stats,
        ))
    }

    /// Runs until shutdown is requested *and* every connection has
    /// drained; the last shard out closes the queue and joins the pool.
    pub(crate) fn run(mut self) {
        // Placement first, memory second: pin this thread to the
        // shard's core set, *then* touch the ring slots and warm the
        // buffer pool from it. First-touch allocation makes those pages
        // resident on the NUMA node of the touching core, so the
        // shard's hottest memory is local to the cores that use it.
        // Both steps are best-effort and no-ops when unpinned.
        if let Some(cpus) = self.pin_cpus.take() {
            if crate::pin::pin_current_thread(&format!("reactor-{}", self.shard_idx), &cpus) {
                self.telemetry.on_shard_pinned();
            }
            self.ring.first_touch();
            self.bufs.warm();
        }
        loop {
            let draining = self.ctl.draining();
            self.adopt_inbox(draining);
            if draining && self.conns.is_empty() {
                break;
            }

            // Poll set: wake channel first, this shard's own listener
            // second (only while accepting), then every connection.
            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            let listener_at = match &self.listener {
                Some(listener) if !draining => {
                    fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                    Some(fds.len() - 1)
                }
                _ => None,
            };
            let mut ids = Vec::with_capacity(self.conns.len());
            for (&id, conn) in &self.conns {
                fds.push(PollFd::new(
                    conn.stream().as_raw_fd(),
                    conn.poll_events(draining),
                ));
                ids.push(id);
            }

            match poll_fds(&mut fds, self.poll_timeout_ms()) {
                Ok(_) => {}
                Err(_) => continue, // EINTR is retried inside; anything else: re-loop
            }

            if fds[0].revents != 0 {
                self.drain_wake();
            }
            // Connection readiness is handled *first*, against the
            // exact snapshot poll reported. POLLOUT interest is
            // re-derived from `has_output()` every round, so a write
            // that drains here is deregistered immediately — routing
            // completions first used to flush the pending write out
            // from under its own POLLOUT event, turning the event into
            // a spurious one (now counted instead of silently eaten).
            let conn_fds_start = if listener_at.is_some() { 2 } else { 1 };
            for (slot, &id) in ids.iter().enumerate() {
                let revents = fds[conn_fds_start + slot].revents;
                if revents != 0 {
                    self.handle_conn_event(id, revents, draining);
                }
            }

            // Completions are routed every iteration regardless of the
            // wake flag — the queue is cheap to check and a byte lost to
            // a full self-pipe must not strand a reply.
            self.route_completions(draining);
            // Batch windows expire on the same clock; at drain every
            // open window flushes immediately so no waiter is parked
            // behind a window that outlives the listener.
            self.flush_batches(draining);

            if let Some(i) = listener_at {
                if fds[i].revents & POLLIN != 0 {
                    self.accept_ready();
                }
            }

            self.reap(draining);
            self.publish_gauges();
        }
        self.stats.set_conns_active(0);
        if self.ctl.shard_exited() {
            self.pool.shutdown();
        }
    }

    /// Adopts sockets the acceptor handed this shard. During drain they
    /// are dropped instead — the daemon stopped serving between accept
    /// and adoption, and closing is kinder than a reply-less park.
    fn adopt_inbox(&mut self, draining: bool) {
        let streams = std::mem::take(
            &mut *self
                .shared
                .inbox
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for stream in streams {
            if draining {
                continue;
            }
            if let Ok(conn) = Conn::new(stream) {
                let id = self.next_conn;
                self.next_conn += 1;
                self.conns.insert(id, conn);
                self.stats.on_conn_open();
            }
        }
    }

    /// Empties the self-pipe. One wakeup event is counted per drain,
    /// not per byte — the gauge tracks how often the reactor was
    /// roused, not how many completions arrived.
    fn drain_wake(&mut self) {
        self.stats.on_wakeup();
        let mut sink = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => break, // wake tx gone: shutdown is near
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    /// Routes queued completions into their reply groups, fanning each
    /// already-encoded reply out to every waiter exactly once (each
    /// waiter owns a distinct reply slot; the group is consumed on
    /// arrival). A lone waiter — the overwhelmingly common case —
    /// takes the frame by move; a coalesced batch shares **one**
    /// encoding across its N waiters, each socket reading the same
    /// ring slot, reclaimed when the last one finishes. Waiters whose
    /// connections were already reclaimed are skipped — the peer that
    /// asked is gone, and dropping the frame reclaims the slot.
    fn route_completions(&mut self, draining: bool) {
        let batch = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for c in batch {
            let Some(waiters) = self.groups.remove(&c.group) else {
                continue; // already answered (e.g. shed at submit)
            };
            if waiters.len() == 1 {
                let (conn_id, seq) = waiters[0];
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.fulfill(seq, ReplyFrame::Own(c.reply));
                    self.flush(conn_id, draining);
                }
                continue;
            }
            let shared = Arc::new(c.reply);
            for (conn_id, seq) in waiters {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.fulfill(seq, ReplyFrame::Shared(Arc::clone(&shared)));
                    self.flush(conn_id, draining);
                }
            }
        }
    }

    /// Poll timeout: the backstop, shortened so the reactor wakes in
    /// time for the earliest open batch window (ceil to a millisecond —
    /// `poll(2)`'s resolution — so a sub-ms window still expires).
    fn poll_timeout_ms(&self) -> i32 {
        match self.batcher.next_due() {
            None => POLL_BACKSTOP_MS,
            Some(due) => {
                let remaining = due.saturating_duration_since(Instant::now());
                (remaining.as_millis() as i32)
                    .saturating_add(1)
                    .min(POLL_BACKSTOP_MS)
            }
        }
    }

    /// Submits every batch whose window has expired (all of them at
    /// drain) as single races.
    fn flush_batches(&mut self, flush_all: bool) {
        if self.batcher.is_empty() {
            return;
        }
        let now = Instant::now();
        for ready in self.batcher.take_due(now, flush_all) {
            self.telemetry.on_batch_formed();
            self.submit_race(ready.waiters, ready.key);
        }
    }

    /// Accepts until this shard's own listener would block (the lone
    /// listener in single-shard mode, a reuseport sibling otherwise).
    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => match Conn::new(stream) {
                    Ok(conn) => {
                        let id = self.next_conn;
                        self.next_conn += 1;
                        self.conns.insert(id, conn);
                        self.stats.on_conn_open();
                    }
                    Err(_) => continue, // setsockopt failed: drop it
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept failure; retry next loop
            }
        }
    }

    /// Dispatches poll readiness for one connection.
    fn handle_conn_event(&mut self, id: u64, revents: i16, draining: bool) {
        if revents & (POLLERR | POLLHUP | POLLNVAL) != 0 {
            // The peer is gone in both directions: no reply can be
            // delivered, so the state is reclaimed eagerly. In-flight
            // races keep running; their completions are dropped on
            // arrival.
            self.close(id);
            return;
        }
        if revents & POLLIN != 0 {
            let outcome = match self.conns.get_mut(&id) {
                Some(conn) => conn.on_readable(&mut self.bufs),
                None => return,
            };
            match outcome {
                Ok(read) => {
                    let mut alive = true;
                    for body in read.frames {
                        if alive {
                            // Protocol error: later frames are garbage.
                            alive = self.handle_frame(id, &body);
                        }
                        self.bufs.put(body);
                    }
                    if let Some(e) = read.error {
                        self.telemetry.on_error();
                        self.reply_and_close_read(
                            id,
                            &Response::Error {
                                message: e.to_string(),
                            },
                        );
                    }
                }
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
        if revents & POLLOUT != 0 {
            // A POLLOUT event for a connection with nothing left to
            // write means the pending write drained through some other
            // path after interest was registered — exactly the churn
            // the handle-connections-first loop order minimizes. The
            // counter exists to prove the fix holds: it should stay at
            // (or near) zero under load.
            if self.conns.get(&id).is_some_and(|c| !c.has_output()) {
                self.stats.on_pollout_spurious();
            }
            self.flush(id, draining);
        }
    }

    /// Decodes and executes one request frame. Returns `false` when the
    /// connection must stop consuming input (malformed request or
    /// shutdown).
    fn handle_frame(&mut self, id: u64, body: &[u8]) -> bool {
        let seq = match self.conns.get_mut(&id) {
            Some(conn) => conn.begin_request(),
            None => return false,
        };
        match Request::decode(body) {
            // An unknown opcode arrives in a well-formed frame: the
            // stream is still in sync, so answer with a protocol ERROR
            // and keep serving — old clients against new daemons (and
            // vice versa) degrade per-request, not per-connection.
            Err(FrameError::UnknownOpcode(op)) => {
                self.telemetry.on_error();
                self.fulfill(
                    id,
                    seq,
                    &Response::Error {
                        message: format!("unknown request opcode 0x{op:02x}"),
                    },
                );
                true
            }
            Err(e) => {
                self.telemetry.on_error();
                self.fulfill(
                    id,
                    seq,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.close_read();
                }
                false
            }
            Ok(Request::Stats) => {
                let reply = Response::Text {
                    body: self.telemetry.render_stats(),
                };
                self.fulfill(id, seq, &reply);
                true
            }
            Ok(Request::Prometheus) => {
                let reply = Response::Text {
                    body: self.telemetry.render_prometheus(),
                };
                self.fulfill(id, seq, &reply);
                true
            }
            Ok(Request::Catalog) => {
                let reply = Response::Text {
                    body: render_catalog(&self.sched),
                };
                self.fulfill(id, seq, &reply);
                true
            }
            Ok(Request::Shutdown) => {
                self.fulfill(
                    id,
                    seq,
                    &Response::Text {
                        body: "draining\n".to_owned(),
                    },
                );
                // Daemon-wide: every shard and the acceptor must drain,
                // not just the shard this frame happened to land on.
                self.ctl.request_shutdown();
                false
            }
            Ok(Request::Run {
                workload,
                deadline_ms,
                arg,
            }) => {
                self.submit_run(id, seq, workload, deadline_ms, arg);
                true
            }
            Ok(Request::ExecAlt {
                race_id,
                alt_idx,
                deadline_ms,
                arg,
                workload,
                origin,
            }) => {
                self.exec_alt(
                    id,
                    seq,
                    race_id,
                    alt_idx,
                    deadline_ms,
                    arg,
                    workload,
                    origin,
                );
                true
            }
            Ok(Request::AltResult {
                race_id,
                alt_idx,
                status,
                value,
                latency_us,
            }) => {
                // An executor reporting back on a race this node
                // originated. Ack first-class so the executor's link
                // gets its RTT sample either way.
                self.plane
                    .races
                    .on_remote_result(race_id, alt_idx, status, value, latency_us);
                self.fulfill(
                    id,
                    seq,
                    &Response::Text {
                        body: "ok\n".to_owned(),
                    },
                );
                true
            }
            Ok(Request::CommitVote {
                race_id,
                origin,
                candidate,
            }) => {
                let (granted, holder) = self.plane.ledger.vote(&origin, race_id, &candidate);
                self.telemetry.on_commit_vote();
                self.fulfill(id, seq, &Response::Vote { granted, holder });
                true
            }
            Ok(Request::Eliminate { race_id, origin }) => {
                let n = self.plane.inflight.eliminate(&origin, race_id);
                self.telemetry.on_elimination();
                self.fulfill(
                    id,
                    seq,
                    &Response::Text {
                        body: format!("eliminated {n}\n"),
                    },
                );
                true
            }
            Ok(Request::Reconcile { watermark, origin }) => {
                // Partition-heal resync: the reconnecting origin's
                // races below the watermark are all decided — kill any
                // zombie executions and release their vote slots.
                let n = self.plane.inflight.eliminate_below(&origin, watermark);
                let slots = self.plane.ledger.reconcile(&origin, watermark);
                self.fulfill(
                    id,
                    seq,
                    &Response::Text {
                        body: format!("reconciled {n} cancelled {slots} slots\n"),
                    },
                );
                true
            }
            Ok(Request::PeerStats) => {
                // The stats page doubles as the heartbeat reply: the
                // trailing machine-parsable line advertises this node's
                // load so origins can place around busy peers.
                let mut body = self.plane.handle.stats().render();
                body.push_str(&format!(
                    "load queued {} busy {} workers {}\n",
                    self.pool.queued(),
                    self.pool.busy(),
                    self.pool.workers()
                ));
                self.fulfill(id, seq, &Response::Text { body });
                true
            }
        }
    }

    /// Executor side of a shipped alternative: admission-control it
    /// like any race, run exactly the named alternative, and fire the
    /// outcome back at the origin over this node's own outbound link.
    /// The immediate reply only acknowledges admission — `Text` for
    /// admitted, `Overloaded` for refused — so the origin can convert a
    /// refusal into a failed guard without waiting.
    #[allow(clippy::too_many_arguments)]
    fn exec_alt(
        &mut self,
        id: u64,
        seq: u64,
        race_id: u64,
        alt_idx: u32,
        deadline_ms: u32,
        arg: u64,
        workload: String,
        origin: String,
    ) {
        let Some(widx) = workload::index_of(&workload) else {
            self.telemetry.on_error();
            self.fulfill(id, seq, &Response::Overloaded);
            return;
        };
        let token = if deadline_ms > 0 {
            CancelToken::with_deadline(Duration::from_millis(u64::from(deadline_ms)))
        } else {
            CancelToken::new()
        };
        // Registered before submission so an ELIMINATE racing ahead of
        // the worker pickup still lands on the token.
        self.plane
            .inflight
            .register(&origin, race_id, alt_idx, token.clone());
        let slot: Arc<Mutex<Option<(u8, u64, u64)>>> = Arc::new(Mutex::new(None));
        let job = {
            let slot = Arc::clone(&slot);
            let telemetry = Arc::clone(&self.telemetry);
            let token = token.clone();
            Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_remote_alt(&telemetry, widx, alt_idx, arg, &token)
                }))
                .unwrap_or((ALT_FAILED, 0, 0));
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            })
        };
        let notify = {
            let plane = Arc::clone(&self.plane);
            let origin = origin.clone();
            Box::new(move || {
                // An empty slot means the pool dropped the job unrun —
                // report a failed guard rather than leave the origin to
                // time the alternative out.
                let (status, value, latency_us) = slot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .unwrap_or((ALT_FAILED, 0, 0));
                plane.inflight.complete(&origin, race_id, alt_idx);
                plane.handle.send(
                    &origin,
                    Request::AltResult {
                        race_id,
                        alt_idx,
                        status,
                        value,
                        latency_us,
                    },
                    SendTag::Fire,
                );
            })
        };
        let meta = self.job_meta(widx, deadline_ms);
        match self.pool.try_submit_notify_at(job, notify, meta) {
            Ok(()) => {
                self.telemetry.on_remote_exec();
                self.fulfill(
                    id,
                    seq,
                    &Response::Text {
                        body: "ok\n".to_owned(),
                    },
                );
            }
            Err(_) => {
                self.plane.inflight.complete(&origin, race_id, alt_idx);
                self.telemetry.on_shed();
                self.fulfill(id, seq, &Response::Overloaded);
            }
        }
    }

    /// Admission-controls one RUN request without ever blocking the
    /// reactor. With batching off the request races directly (a reply
    /// group of one); with batching on it opens or joins a window and
    /// races when the window expires. Refused submissions are answered
    /// `Overloaded` in line; admitted ones come back through the
    /// completion queue.
    fn submit_run(&mut self, id: u64, seq: u64, workload: String, deadline_ms: u32, arg: u64) {
        // Reject unknown names before spending a queue slot.
        let Some(widx) = workload::index_of(&workload) else {
            self.telemetry.on_error();
            self.fulfill(id, seq, &Response::UnknownWorkload);
            return;
        };
        let key = BatchKey {
            widx,
            deadline_ms,
            arg,
        };
        if self.batcher.enabled() {
            if self.batcher.offer(key, (id, seq), Instant::now()) == Offered::Coalesced {
                self.telemetry.on_requests_coalesced(1);
            }
            return;
        }
        self.submit_race(vec![(id, seq)], key);
    }

    /// Submits one race on behalf of `waiters` (one waiter when direct,
    /// many when coalesced). The single response fans out to every
    /// waiter exactly once via the reply group — including worker-lost
    /// and fault outcomes, which take the same path. When the placement
    /// policy elects to ship alternatives to peers the race goes
    /// through the distributed path instead.
    fn submit_race(&mut self, waiters: Vec<Waiter>, key: BatchKey) {
        // Feasibility admission, before the race spends a queue slot or
        // a wire frame: when the deadline is provably unmeetable from
        // the workload's p99 service time plus the current queue wait,
        // shed now instead of burning a worker just to time out.
        // Best-effort requests (deadline 0) always pass.
        if !self.admission.admit(
            key.widx,
            key.deadline_ms,
            self.pool.queued(),
            self.pool.workers(),
        ) {
            for (conn_id, seq) in waiters {
                self.telemetry.on_shed_admission();
                self.fulfill(conn_id, seq, &Response::Overloaded);
            }
            return;
        }
        if let Some(assign) = self.plan_remote(&key) {
            self.submit_race_distributed(waiters, key, assign);
            return;
        }
        let group = self.next_group;
        self.next_group += 1;
        let slot: Arc<Mutex<Option<Response>>> = Arc::new(Mutex::new(None));
        let job = {
            let slot = Arc::clone(&slot);
            let telemetry = Arc::clone(&self.telemetry);
            let sched = Arc::clone(&self.sched);
            Box::new(move || {
                // Contained so a crash becomes an explicit error reply;
                // the pool's own catch_unwind is the backstop.
                let reply = catch_unwind(AssertUnwindSafe(|| {
                    run_race(&telemetry, &sched, key.widx, key.deadline_ms, key.arg)
                }))
                .unwrap_or_else(|_| {
                    telemetry.on_error();
                    Response::Error {
                        message: "internal error: race panicked".to_owned(),
                    }
                });
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(reply);
            })
        };
        let notify = {
            let shared = Arc::clone(&self.shared);
            Box::new(move || {
                // An empty slot means the pool dropped the job unrun
                // (injected `Fail` fault, worker killed mid-job) —
                // answer rather than strand the waiters.
                let reply = slot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .unwrap_or(Response::Error {
                        message: "worker lost".to_owned(),
                    });
                shared.post(group, reply);
            })
        };
        let meta = self.job_meta(key.widx, key.deadline_ms);
        match self.pool.try_submit_notify_at(job, notify, meta) {
            Ok(()) => {
                self.telemetry.on_accepted();
                self.groups.insert(group, waiters);
            }
            Err(_) => {
                // Shed: every waiter gets its own Overloaded reply.
                for (conn_id, seq) in waiters {
                    self.telemetry.on_shed();
                    self.fulfill(conn_id, seq, &Response::Overloaded);
                }
            }
        }
    }

    /// Run-queue scheduling metadata for one submission from this
    /// shard: the request's absolute deadline (best-effort when the
    /// wire said 0), the workload's configured priority lane, and this
    /// shard's worker group.
    fn job_meta(&self, widx: usize, deadline_ms: u32) -> JobMeta {
        JobMeta::for_request(deadline_ms, self.lanes.lane_of(widx), self.shard_idx)
    }

    /// Asks the placement policy whether any of this race's
    /// alternatives should run on a peer. `None` — the overwhelmingly
    /// common answer, and the only one when no peer is up — means the
    /// race stays entirely local and pays nothing for the peer plane.
    fn plan_remote(&self, key: &BatchKey) -> Option<Vec<Option<String>>> {
        let spec = workload::CATALOG.get(key.widx)?;
        let up = self.plane.handle.stats().up_peers();
        if up.is_empty() {
            return None;
        }
        // What actually crosses the wire per shipped alternative: the
        // EXEC_ALT frame (fixed header + workload + origin strings).
        let frame_bytes = (33 + spec.name.len() + self.plane.advertise.len()) as u64;
        self.plane.placement.assign(
            key.widx,
            spec.alternatives(),
            frame_bytes,
            &up,
            self.pool.queued(),
            self.pool.workers(),
            self.sched.catalog(),
        )
    }

    /// The distributed submit path: register the race with the remote
    /// registry *first* (an instant local finish must find it), then
    /// submit the local subrace — every alternative not shipped — and
    /// finally fire one EXEC_ALT per shipped alternative. The reply
    /// group is answered exactly once by the registry's commit/fail
    /// path, never directly by the worker.
    fn submit_race_distributed(
        &mut self,
        waiters: Vec<Waiter>,
        key: BatchKey,
        assign: Vec<Option<String>>,
    ) {
        let group = self.next_group;
        self.next_group += 1;
        let token = if key.deadline_ms > 0 {
            CancelToken::with_deadline(Duration::from_millis(u64::from(key.deadline_ms)))
        } else {
            CancelToken::new()
        };
        let remotes: Vec<(u32, String)> = assign
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.clone().map(|p| (i as u32, p)))
            .collect();
        // Voters are frozen at race creation: this node plus every peer
        // currently up. A voter dying mid-race counts as a denial.
        let voters: Vec<String> = self
            .plane
            .handle
            .stats()
            .up_peers()
            .into_iter()
            .map(|p| p.addr)
            .collect();
        let race_id = self.plane.races.create(
            self.shard_idx,
            group,
            key.widx,
            key.arg,
            key.deadline_ms,
            token.clone(),
            remotes.clone(),
            voters,
        );
        let skip: Vec<bool> = assign.iter().map(Option::is_some).collect();
        let slot: Arc<Mutex<Option<Response>>> = Arc::new(Mutex::new(None));
        let job = {
            let slot = Arc::clone(&slot);
            let telemetry = Arc::clone(&self.telemetry);
            let sched = Arc::clone(&self.sched);
            Box::new(move || {
                let reply = catch_unwind(AssertUnwindSafe(|| {
                    run_subrace(&telemetry, &sched, key.widx, key.arg, &token, &skip)
                }))
                .unwrap_or_else(|_| {
                    telemetry.on_error();
                    Response::Error {
                        message: "internal error: race panicked".to_owned(),
                    }
                });
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(reply);
            })
        };
        // The local outcome feeds the registry, not the reply group:
        // the registry answers the group once, at commit or failure.
        let notify = {
            let races = Arc::clone(&self.plane.races);
            Box::new(move || {
                let reply = slot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .unwrap_or(Response::Error {
                        message: "worker lost".to_owned(),
                    });
                races.on_local_done(race_id, reply);
            })
        };
        let meta = self.job_meta(key.widx, key.deadline_ms);
        match self.pool.try_submit_notify_at(job, notify, meta) {
            Ok(()) => {
                self.telemetry.on_accepted();
                self.groups.insert(group, waiters);
                let spec = &workload::CATALOG[key.widx];
                for (alt_idx, peer) in remotes {
                    self.telemetry.on_remote_dispatched();
                    if let Some(stat) = self.plane.handle.stats().by_addr(&peer) {
                        stat.note_dispatched();
                    }
                    self.plane.handle.send(
                        &peer,
                        Request::ExecAlt {
                            race_id,
                            alt_idx,
                            deadline_ms: key.deadline_ms,
                            arg: key.arg,
                            workload: spec.name.to_owned(),
                            origin: self.plane.advertise.clone(),
                        },
                        SendTag::ExecAlt { race_id, alt_idx },
                    );
                }
            }
            Err(_) => {
                self.plane.races.abort(race_id);
                for (conn_id, seq) in waiters {
                    self.telemetry.on_shed();
                    self.fulfill(conn_id, seq, &Response::Overloaded);
                }
            }
        }
    }

    /// Encodes a reactor-side reply (ring slot preferred, pool-backed
    /// spill otherwise), fills its reply slot, and opportunistically
    /// flushes — the common case (reply fits the socket buffer)
    /// completes without another poll round-trip.
    fn fulfill(&mut self, id: u64, seq: u64, response: &Response) {
        if self.conns.contains_key(&id) {
            let reply = EncodedReply::encode_with(response, &self.ring, &mut self.bufs);
            let conn = self.conns.get_mut(&id).expect("checked above");
            conn.fulfill(seq, ReplyFrame::Own(reply));
            self.flush(id, false);
        }
    }

    /// Queues one last reply, stops reading, and lets the drain logic
    /// close the connection once the reply is out.
    fn reply_and_close_read(&mut self, id: u64, response: &Response) {
        let seq = match self.conns.get_mut(&id) {
            Some(conn) => {
                let seq = conn.begin_request();
                conn.close_read();
                seq
            }
            None => return,
        };
        self.fulfill(id, seq, response);
    }

    /// Writes as much queued output as the socket accepts, straight
    /// from each frame's ring slot or spill buffer (retired into the
    /// pool as they complete); a failed write reclaims the connection.
    fn flush(&mut self, id: u64, _draining: bool) {
        let dead = match self.conns.get_mut(&id) {
            Some(conn) => conn.has_output() && conn.on_writable(&mut self.bufs).is_err(),
            None => false,
        };
        if dead {
            self.close(id);
        }
    }

    /// Reclaims every connection that has served its purpose. This runs
    /// on *every* loop iteration — a closed connection's state is gone
    /// before the next poll, never parked until some future accept.
    fn reap(&mut self, draining: bool) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.should_close(draining))
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            self.close(id);
        }
    }

    /// Drops one connection's state and updates the gauge.
    fn close(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.stats.on_conn_close();
        }
    }

    /// Publishes the shard's `conns_active` gauge (connections with at
    /// least one request awaiting its reply).
    fn publish_gauges(&self) {
        let active = self.conns.values().filter(|c| c.in_flight() > 0).count();
        self.stats.set_conns_active(active as u64);
    }
}

/// The acceptor loop — the **fallback** front door for sharded mode on
/// platforms without `SO_REUSEPORT` (per-shard listeners are the
/// primary path): polls the listener plus its own wake pipe, accepts
/// until the listener would block, and hands each socket round-robin
/// to the next shard's inbox. Round-robin is fair enough here because
/// connections are long-lived and statistically similar under the
/// daemon's workloads; the counter is local, so the accept path takes
/// no locks beyond the one push into the chosen shard's inbox.
pub(crate) fn run_acceptor(
    listener: TcpListener,
    mut wake_rx: TcpStream,
    ctl: Arc<DaemonCtl>,
    shards: Vec<Arc<ReactorShared>>,
) {
    debug_assert!(!shards.is_empty());
    let mut next = 0usize;
    while !ctl.draining() {
        let mut fds = [
            PollFd::new(wake_rx.as_raw_fd(), POLLIN),
            PollFd::new(listener.as_raw_fd(), POLLIN),
        ];
        if poll_fds(&mut fds, POLL_BACKSTOP_MS).is_err() {
            continue;
        }
        if fds[0].revents != 0 {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        if fds[1].revents & POLLIN == 0 {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shards[next % shards.len()].adopt(stream);
                    next += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept failure; retry next loop
            }
        }
    }
}
