//! Property-based safety tests for majority consensus.
//!
//! The paper's requirement (§3.2.1) is the "at most one" semantics of
//! synchronization under communication failures. These properties throw
//! arbitrary fault schedules at the simulator and assert the invariant can
//! never be violated.

use altx_consensus::{CandidateSpec, ConsensusConfig, ConsensusSim, FaultPlan};
use altx_des::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ConsensusConfig> {
    (
        1usize..=9,                                  // voters
        1usize..=4,                                  // candidates
        0.0f64..0.9,                                 // drop probability
        any::<u64>(),                                // seed
        prop::collection::vec(prop::option::of(0u64..200), 9),
        prop::collection::vec(0u64..50, 4),          // start times (ms)
    )
        .prop_map(|(n_voters, n_cands, drop, seed, crashes, starts)| {
            let candidates = (0..n_cands)
                .map(|i| {
                    let mut c = CandidateSpec::new(
                        i as u64 + 1,
                        SimTime::from_nanos(starts[i] * 1_000_000),
                    );
                    c.retry_interval = SimDuration::from_millis(20);
                    c.max_rounds = 4;
                    c
                })
                .collect();
            ConsensusConfig {
                n_voters,
                latency: SimDuration::from_millis(2),
                candidates,
                faults: FaultPlan {
                    voter_crash_times: crashes[..n_voters]
                        .iter()
                        .map(|c| c.map(|ms| SimTime::from_nanos(ms * 1_000_000)))
                        .collect(),
                    drop_probability: drop,
                },
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// At most one candidate ever wins, under any fault schedule.
    #[test]
    fn at_most_one_winner(cfg in arb_config()) {
        let report = ConsensusSim::new(cfg).run();
        let wins = report.outcomes.values().filter(|o| o.is_win()).count();
        prop_assert!(wins <= 1, "multiple winners: {:?}", report.outcomes);
        prop_assert_eq!(report.winner.is_some(), wins == 1);
    }

    /// With no failures and a single candidate, the candidate always wins,
    /// in one round, at start + 2×latency (request out, grant back).
    #[test]
    fn failure_free_single_candidate_latency(n_voters in 1usize..9, start_ms in 0u64..100) {
        let start = SimTime::from_nanos(start_ms * 1_000_000);
        let cfg = ConsensusConfig::simple(n_voters, vec![CandidateSpec::new(1, start)]);
        let latency = cfg.latency;
        let report = ConsensusSim::new(cfg).run();
        prop_assert_eq!(report.winner, Some(1));
        prop_assert_eq!(report.decided_at, Some(start + latency + latency));
    }

    /// Determinism: identical configs yield identical reports.
    #[test]
    fn runs_are_deterministic(cfg in arb_config()) {
        let a = ConsensusSim::new(cfg.clone()).run();
        let b = ConsensusSim::new(cfg).run();
        prop_assert_eq!(a, b);
    }

    /// If a majority of voters stay up forever and messages are reliable,
    /// some candidate must win (liveness under the good case).
    #[test]
    fn reliable_majority_alive_implies_winner(
        n_voters in 1usize..9,
        n_crashed in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n_crashed = n_crashed.min(n_voters.saturating_sub(1));
        prop_assume!(n_voters - n_crashed > n_voters / 2);
        let mut cfg = ConsensusConfig::simple(n_voters, vec![CandidateSpec::new(1, SimTime::ZERO)]);
        for v in 0..n_crashed {
            cfg.faults.voter_crash_times[v] = Some(SimTime::ZERO);
        }
        cfg.seed = seed;
        let report = ConsensusSim::new(cfg).run();
        prop_assert_eq!(report.winner, Some(1), "{}", report);
    }
}
