//! Property-based safety tests for majority consensus.
//!
//! The paper's requirement (§3.2.1) is the "at most one" semantics of
//! synchronization under communication failures. These properties throw
//! arbitrary fault schedules at the simulator and assert the invariant can
//! never be violated.

use altx_check::{check, CaseRng};
use altx_consensus::{CandidateSpec, ConsensusConfig, ConsensusSim, FaultPlan};
use altx_des::{SimDuration, SimTime};

fn arb_config(rng: &mut CaseRng) -> ConsensusConfig {
    let n_voters = rng.usize_in(1, 10);
    let n_cands = rng.usize_in(1, 5);
    let drop = rng.f64_in(0.0, 0.9);
    let seed = rng.u64();
    let crashes: Vec<Option<u64>> = (0..9)
        .map(|_| rng.option(0.5, |r| r.u64_in(0, 200)))
        .collect();
    let starts: Vec<u64> = (0..4).map(|_| rng.u64_in(0, 50)).collect();
    let candidates = (0..n_cands)
        .map(|i| {
            let mut c =
                CandidateSpec::new(i as u64 + 1, SimTime::from_nanos(starts[i] * 1_000_000));
            c.retry_interval = SimDuration::from_millis(20);
            c.max_rounds = 4;
            c
        })
        .collect();
    ConsensusConfig {
        n_voters,
        latency: SimDuration::from_millis(2),
        candidates,
        faults: FaultPlan {
            voter_crash_times: crashes[..n_voters]
                .iter()
                .map(|c| c.map(|ms| SimTime::from_nanos(ms * 1_000_000)))
                .collect(),
            drop_probability: drop,
        },
        seed,
    }
}

/// At most one candidate ever wins, under any fault schedule.
#[test]
fn at_most_one_winner() {
    check("at_most_one_winner", 128, |rng| {
        let report = ConsensusSim::new(arb_config(rng)).run();
        let wins = report.outcomes.values().filter(|o| o.is_win()).count();
        assert!(wins <= 1, "multiple winners: {:?}", report.outcomes);
        assert_eq!(report.winner.is_some(), wins == 1);
    });
}

/// With no failures and a single candidate, the candidate always wins,
/// in one round, at start + 2×latency (request out, grant back).
#[test]
fn failure_free_single_candidate_latency() {
    check("failure_free_single_candidate_latency", 128, |rng| {
        let n_voters = rng.usize_in(1, 9);
        let start_ms = rng.u64_in(0, 100);
        let start = SimTime::from_nanos(start_ms * 1_000_000);
        let cfg = ConsensusConfig::simple(n_voters, vec![CandidateSpec::new(1, start)]);
        let latency = cfg.latency;
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, Some(1));
        assert_eq!(report.decided_at, Some(start + latency + latency));
    });
}

/// Determinism: identical configs yield identical reports.
#[test]
fn runs_are_deterministic() {
    check("runs_are_deterministic", 64, |rng| {
        let cfg = arb_config(rng);
        let a = ConsensusSim::new(cfg.clone()).run();
        let b = ConsensusSim::new(cfg).run();
        assert_eq!(a, b);
    });
}

/// If a majority of voters stay up forever and messages are reliable,
/// some candidate must win (liveness under the good case).
#[test]
fn reliable_majority_alive_implies_winner() {
    check("reliable_majority_alive_implies_winner", 128, |rng| {
        let n_voters = rng.usize_in(1, 9);
        let n_crashed = rng.usize_in(0, 4).min(n_voters.saturating_sub(1));
        let seed = rng.u64();
        if n_voters - n_crashed <= n_voters / 2 {
            return; // no surviving majority: out of this property's scope
        }
        let mut cfg = ConsensusConfig::simple(n_voters, vec![CandidateSpec::new(1, SimTime::ZERO)]);
        for v in 0..n_crashed {
            cfg.faults.voter_crash_times[v] = Some(SimTime::ZERO);
        }
        cfg.seed = seed;
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, Some(1), "{report}");
    });
}
