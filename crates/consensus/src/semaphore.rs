//! The local at-most-once synchronization point.

use std::fmt;

/// Result of a synchronization claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimResult {
    /// This candidate won: its state changes become the real timeline.
    Won,
    /// A winner was already chosen; the claimant must terminate itself
    /// (§3.2.1: "it is informed that it is 'too late' for the
    /// synchronization, and it should terminate itself").
    TooLate {
        /// The candidate that won.
        winner: u64,
    },
}

/// A one-shot synchronization point: the first claim wins, every later
/// claim is refused, forever.
///
/// # Example
///
/// ```
/// use altx_consensus::{ClaimResult, SyncPoint};
///
/// let mut sp = SyncPoint::new();
/// assert_eq!(sp.try_claim(7), ClaimResult::Won);
/// assert_eq!(sp.try_claim(9), ClaimResult::TooLate { winner: 7 });
/// assert_eq!(sp.winner(), Some(7));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncPoint {
    winner: Option<u64>,
    refused: u64,
}

impl SyncPoint {
    /// Creates an unclaimed sync point.
    pub fn new() -> Self {
        SyncPoint::default()
    }

    /// Attempts to claim the synchronization for `candidate`.
    ///
    /// Idempotent for the winner: re-claiming by the same candidate
    /// returns [`ClaimResult::Won`] again (a retransmitted claim must not
    /// be treated as a second synchronization).
    pub fn try_claim(&mut self, candidate: u64) -> ClaimResult {
        match self.winner {
            None => {
                self.winner = Some(candidate);
                ClaimResult::Won
            }
            Some(w) if w == candidate => ClaimResult::Won,
            Some(w) => {
                self.refused += 1;
                ClaimResult::TooLate { winner: w }
            }
        }
    }

    /// The winning candidate, if any claim has been made.
    pub fn winner(&self) -> Option<u64> {
        self.winner
    }

    /// True iff no claim has succeeded yet.
    pub fn is_open(&self) -> bool {
        self.winner.is_none()
    }

    /// Number of refused (too-late) claims.
    pub fn refused_count(&self) -> u64 {
        self.refused
    }
}

impl fmt::Display for SyncPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.winner {
            Some(w) => write!(f, "claimed by candidate {w} ({} refused)", self.refused),
            None => write!(f, "open"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_wins() {
        let mut sp = SyncPoint::new();
        assert!(sp.is_open());
        assert_eq!(sp.try_claim(1), ClaimResult::Won);
        assert!(!sp.is_open());
        assert_eq!(sp.winner(), Some(1));
    }

    #[test]
    fn later_claims_are_too_late() {
        let mut sp = SyncPoint::new();
        sp.try_claim(1);
        assert_eq!(sp.try_claim(2), ClaimResult::TooLate { winner: 1 });
        assert_eq!(sp.try_claim(3), ClaimResult::TooLate { winner: 1 });
        assert_eq!(sp.refused_count(), 2);
    }

    #[test]
    fn winner_reclaim_is_idempotent() {
        let mut sp = SyncPoint::new();
        sp.try_claim(5);
        assert_eq!(sp.try_claim(5), ClaimResult::Won, "retransmit tolerated");
        assert_eq!(sp.refused_count(), 0);
    }

    #[test]
    fn display_states() {
        let mut sp = SyncPoint::new();
        assert_eq!(sp.to_string(), "open");
        sp.try_claim(4);
        sp.try_claim(9);
        assert_eq!(sp.to_string(), "claimed by candidate 4 (1 refused)");
    }
}
