//! Majority-consensus synchronization (Thomas 1979), simulated.
//!
//! The fault-tolerant 0–1 semaphore of §3.2.1/§5.1.2: N voter nodes each
//! hold one exclusive, unrevocable vote. Candidates (the alternates trying
//! to synchronize) request votes from every voter over a lossy network; a
//! candidate that collects a strict majority has synchronized. Because
//! votes are exclusive and never revoked, **at most one candidate can ever
//! win**, no matter which messages are lost or which voters crash — the
//! at-most-once guarantee survives partial failure, at the price of extra
//! messages and latency ("the additional communication and protocol of
//! multiple-node synchronization is the price paid for increased
//! robustness").

use altx_des::{EventQueue, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// One candidate (a synchronizing alternative) in the race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSpec {
    /// Unique candidate identifier.
    pub id: u64,
    /// When the candidate begins requesting votes.
    pub start: SimTime,
    /// How long it waits for outstanding responses before re-requesting.
    pub retry_interval: SimDuration,
    /// Maximum request rounds before giving up (≥ 1).
    pub max_rounds: u32,
}

impl CandidateSpec {
    /// A candidate starting at `start` with sensible retry defaults
    /// (50 ms interval, 5 rounds).
    pub fn new(id: u64, start: SimTime) -> Self {
        CandidateSpec {
            id,
            start,
            retry_interval: SimDuration::from_millis(50),
            max_rounds: 5,
        }
    }
}

/// Failure injection for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-voter crash instant (`None` = never crashes). A crashed voter
    /// neither receives nor responds, but votes it granted earlier stand.
    pub voter_crash_times: Vec<Option<SimTime>>,
    /// Independent loss probability for every message.
    pub drop_probability: f64,
}

impl FaultPlan {
    /// No failures.
    pub fn none(n_voters: usize) -> Self {
        FaultPlan {
            voter_crash_times: vec![None; n_voters],
            drop_probability: 0.0,
        }
    }
}

/// Configuration of one consensus race.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusConfig {
    /// Number of voter nodes (odd values avoid split ties but any
    /// positive count is legal — a tie means no winner, which is safe).
    pub n_voters: usize,
    /// One-way network latency per message.
    pub latency: SimDuration,
    /// The racing candidates.
    pub candidates: Vec<CandidateSpec>,
    /// Failure injection.
    pub faults: FaultPlan,
    /// RNG seed (message drops).
    pub seed: u64,
}

impl ConsensusConfig {
    /// A failure-free race of `candidates` over `n_voters` voters with
    /// 1 ms latency.
    pub fn simple(n_voters: usize, candidates: Vec<CandidateSpec>) -> Self {
        ConsensusConfig {
            n_voters,
            latency: SimDuration::from_millis(1),
            candidates,
            faults: FaultPlan::none(n_voters),
            seed: 7,
        }
    }
}

/// Per-candidate result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// Collected a majority at the given instant after the given number
    /// of rounds.
    Won {
        /// Commit instant.
        at: SimTime,
        /// Rounds of requests used.
        rounds: u32,
    },
    /// Learned a majority was impossible (enough denials) or exhausted
    /// its retry budget.
    GaveUp {
        /// When it stopped.
        at: SimTime,
    },
    /// Still undecided when the simulation went quiescent (e.g., all its
    /// messages were lost and rounds ran out without responses).
    Undecided,
}

impl CandidateOutcome {
    /// True for [`CandidateOutcome::Won`].
    pub fn is_win(&self) -> bool {
        matches!(self, CandidateOutcome::Won { .. })
    }
}

/// The result of a consensus race.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusReport {
    /// The winning candidate, if any (at most one, guaranteed).
    pub winner: Option<u64>,
    /// When the winner committed.
    pub decided_at: Option<SimTime>,
    /// Outcome per candidate id.
    pub outcomes: BTreeMap<u64, CandidateOutcome>,
    /// Total messages offered to the network (including dropped).
    pub messages_sent: u64,
    /// Messages lost to the fault plan.
    pub messages_dropped: u64,
}

impl fmt::Display for ConsensusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.winner, self.decided_at) {
            (Some(w), Some(at)) => write!(
                f,
                "winner: candidate {w} at {at} ({} msgs, {} dropped)",
                self.messages_sent, self.messages_dropped
            ),
            _ => write!(
                f,
                "no winner ({} msgs, {} dropped)",
                self.messages_sent, self.messages_dropped
            ),
        }
    }
}

#[derive(Debug)]
enum Event {
    Request {
        candidate: u64,
        voter: usize,
    },
    Response {
        voter: usize,
        candidate: u64,
        granted: bool,
    },
    Retry {
        candidate: u64,
        round: u32,
    },
}

#[derive(Debug)]
struct CandidateState {
    spec: CandidateSpec,
    grants: Vec<bool>,
    denials: Vec<bool>,
    rounds_used: u32,
    outcome: CandidateOutcome,
}

/// Deterministic simulator for one majority-consensus race.
#[derive(Debug)]
pub struct ConsensusSim {
    cfg: ConsensusConfig,
}

impl ConsensusSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if there are no voters, the fault plan's crash table length
    /// disagrees with `n_voters`, the drop probability is outside
    /// `[0, 1)`, or candidate ids are not unique.
    pub fn new(cfg: ConsensusConfig) -> Self {
        assert!(cfg.n_voters > 0, "need at least one voter");
        assert_eq!(
            cfg.faults.voter_crash_times.len(),
            cfg.n_voters,
            "fault plan must cover every voter"
        );
        assert!(
            (0.0..1.0).contains(&cfg.faults.drop_probability),
            "drop probability must be in [0, 1)"
        );
        let mut ids: Vec<u64> = cfg.candidates.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            cfg.candidates.len(),
            "candidate ids must be unique"
        );
        ConsensusSim { cfg }
    }

    /// Runs the race to quiescence.
    pub fn run(&self) -> ConsensusReport {
        let n = self.cfg.n_voters;
        let majority = n / 2 + 1;
        let mut rng = SimRng::seed_from_u64(self.cfg.seed);
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut votes: Vec<Option<u64>> = vec![None; n];
        let mut candidates: BTreeMap<u64, CandidateState> = BTreeMap::new();
        let mut sent = 0u64;
        let mut dropped = 0u64;

        for spec in &self.cfg.candidates {
            candidates.insert(
                spec.id,
                CandidateState {
                    spec: spec.clone(),
                    grants: vec![false; n],
                    denials: vec![false; n],
                    rounds_used: 0,
                    outcome: CandidateOutcome::Undecided,
                },
            );
            queue.schedule(
                spec.start,
                Event::Retry {
                    candidate: spec.id,
                    round: 0,
                },
            );
        }

        let mut winner: Option<(u64, SimTime)> = None;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Retry { candidate, round } => {
                    let state = candidates.get_mut(&candidate).expect("known candidate");
                    if !matches!(state.outcome, CandidateOutcome::Undecided) {
                        continue;
                    }
                    if round >= state.spec.max_rounds {
                        state.outcome = CandidateOutcome::GaveUp { at: now };
                        continue;
                    }
                    state.rounds_used = round + 1;
                    // (Re-)request every voter that hasn't answered.
                    let pending: Vec<usize> = (0..n)
                        .filter(|&v| !state.grants[v] && !state.denials[v])
                        .collect();
                    let retry = state.spec.retry_interval;
                    for voter in pending {
                        sent += 1;
                        if rng.chance(self.cfg.faults.drop_probability) {
                            dropped += 1;
                            continue;
                        }
                        queue.schedule(now + self.cfg.latency, Event::Request { candidate, voter });
                    }
                    queue.schedule(
                        now + retry,
                        Event::Retry {
                            candidate,
                            round: round + 1,
                        },
                    );
                }
                Event::Request { candidate, voter } => {
                    // A crashed voter is silent.
                    if let Some(crash) = self.cfg.faults.voter_crash_times[voter] {
                        if now >= crash {
                            continue;
                        }
                    }
                    // Exclusive, unrevocable vote: grant to the first
                    // requester, re-grant only to the same holder.
                    let granted = match votes[voter] {
                        None => {
                            votes[voter] = Some(candidate);
                            true
                        }
                        Some(holder) => holder == candidate,
                    };
                    sent += 1;
                    if rng.chance(self.cfg.faults.drop_probability) {
                        dropped += 1;
                        continue;
                    }
                    queue.schedule(
                        now + self.cfg.latency,
                        Event::Response {
                            voter,
                            candidate,
                            granted,
                        },
                    );
                }
                Event::Response {
                    voter,
                    candidate,
                    granted,
                } => {
                    let state = candidates.get_mut(&candidate).expect("known candidate");
                    if !matches!(state.outcome, CandidateOutcome::Undecided) {
                        continue;
                    }
                    if granted {
                        state.grants[voter] = true;
                    } else {
                        state.denials[voter] = true;
                    }
                    let grants = state.grants.iter().filter(|&&g| g).count();
                    let denials = state.denials.iter().filter(|&&d| d).count();
                    if grants >= majority {
                        state.outcome = CandidateOutcome::Won {
                            at: now,
                            rounds: state.rounds_used,
                        };
                        debug_assert!(winner.is_none(), "two majority winners are impossible");
                        winner = Some((candidate, now));
                    } else if n - denials < majority {
                        // Majority is arithmetically out of reach.
                        state.outcome = CandidateOutcome::GaveUp { at: now };
                    }
                }
            }
        }

        ConsensusReport {
            winner: winner.map(|(id, _)| id),
            decided_at: winner.map(|(_, at)| at),
            outcomes: candidates
                .into_iter()
                .map(|(id, s)| (id, s.outcome))
                .collect(),
            messages_sent: sent,
            messages_dropped: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, start_ms: u64) -> CandidateSpec {
        CandidateSpec::new(id, SimTime::from_nanos(start_ms * 1_000_000))
    }

    #[test]
    fn single_candidate_wins_failure_free() {
        let report = ConsensusSim::new(ConsensusConfig::simple(3, vec![cand(1, 0)])).run();
        assert_eq!(report.winner, Some(1));
        assert!(report.outcomes[&1].is_win());
        assert_eq!(report.messages_dropped, 0);
    }

    #[test]
    fn earlier_candidate_beats_later() {
        let report =
            ConsensusSim::new(ConsensusConfig::simple(5, vec![cand(1, 0), cand(2, 10)])).run();
        assert_eq!(report.winner, Some(1));
        assert!(matches!(
            report.outcomes[&2],
            CandidateOutcome::GaveUp { .. }
        ));
    }

    #[test]
    fn at_most_one_winner_simultaneous_start() {
        let report = ConsensusSim::new(ConsensusConfig::simple(
            5,
            vec![cand(1, 0), cand(2, 0), cand(3, 0)],
        ))
        .run();
        let wins = report.outcomes.values().filter(|o| o.is_win()).count();
        assert!(wins <= 1, "outcomes: {:?}", report.outcomes);
        assert_eq!(report.winner.is_some(), wins == 1);
    }

    #[test]
    fn survives_minority_voter_crashes() {
        // 5 voters, 2 crash at t=0: majority (3) still reachable.
        let mut cfg = ConsensusConfig::simple(5, vec![cand(1, 0)]);
        cfg.faults.voter_crash_times[0] = Some(SimTime::ZERO);
        cfg.faults.voter_crash_times[1] = Some(SimTime::ZERO);
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, Some(1));
    }

    #[test]
    fn majority_crash_prevents_any_winner() {
        // 3 of 5 voters crashed: no candidate can reach 3 grants.
        let mut cfg = ConsensusConfig::simple(5, vec![cand(1, 0)]);
        for v in 0..3 {
            cfg.faults.voter_crash_times[v] = Some(SimTime::ZERO);
        }
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, None, "{report}");
    }

    #[test]
    fn single_voter_is_a_single_point_of_failure() {
        // The contrast the paper draws: with one sync node down, the
        // synchronization can never complete.
        let mut cfg = ConsensusConfig::simple(1, vec![cand(1, 0)]);
        cfg.faults.voter_crash_times[0] = Some(SimTime::ZERO);
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, None);
    }

    #[test]
    fn message_loss_is_overcome_by_retries() {
        let mut cfg = ConsensusConfig::simple(3, vec![cand(1, 0)]);
        cfg.faults.drop_probability = 0.4;
        cfg.seed = 42;
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, Some(1));
        assert!(report.messages_dropped > 0, "fault plan should have bitten");
    }

    #[test]
    fn retry_budget_exhaustion_gives_up() {
        // Drop everything: after max_rounds the candidate gives up.
        let mut cfg = ConsensusConfig::simple(3, vec![cand(1, 0)]);
        cfg.faults.drop_probability = 0.999_999;
        cfg.seed = 1;
        let report = ConsensusSim::new(cfg).run();
        assert_eq!(report.winner, None);
        assert!(matches!(
            report.outcomes[&1],
            CandidateOutcome::GaveUp { .. } | CandidateOutcome::Undecided
        ));
    }

    #[test]
    fn more_voters_cost_more_messages() {
        let r3 = ConsensusSim::new(ConsensusConfig::simple(3, vec![cand(1, 0)])).run();
        let r7 = ConsensusSim::new(ConsensusConfig::simple(7, vec![cand(1, 0)])).run();
        assert!(r7.messages_sent > r3.messages_sent);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mk = || {
            let mut cfg = ConsensusConfig::simple(5, vec![cand(1, 0), cand(2, 1)]);
            cfg.faults.drop_probability = 0.3;
            cfg.seed = 99;
            ConsensusSim::new(cfg).run()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "candidate ids must be unique")]
    fn duplicate_ids_rejected() {
        ConsensusSim::new(ConsensusConfig::simple(3, vec![cand(1, 0), cand(1, 5)]));
    }

    #[test]
    #[should_panic(expected = "fault plan must cover")]
    fn fault_plan_length_checked() {
        let mut cfg = ConsensusConfig::simple(3, vec![cand(1, 0)]);
        cfg.faults.voter_crash_times.pop();
        ConsensusSim::new(cfg);
    }

    #[test]
    fn report_display() {
        let report = ConsensusSim::new(ConsensusConfig::simple(3, vec![cand(1, 0)])).run();
        assert!(
            report.to_string().contains("winner: candidate 1"),
            "{report}"
        );
    }
}
