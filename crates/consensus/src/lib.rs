//! # altx-consensus — at-most-once synchronization
//!
//! §3.2.1 of Smith & Maguire: the selection of a winning alternative must
//! happen **at most once**, even across communication failures. Two
//! mechanisms are described and both are implemented here:
//!
//! * [`SyncPoint`] — the single-node backup: "the synchronization action
//!   is designed so that it can be accomplished at most once; … if the
//!   remote system attempts synchronization for the alternative it is
//!   executing, it is informed that it is 'too late'".
//! * [`majority`] — where a single sync node would be a single point of
//!   failure, "the synchronization is set up as a majority consensus
//!   \[Thomas 1979\] decision across several nodes": a fault-tolerant 0–1
//!   semaphore built from exclusive, unrevocable votes. The module
//!   simulates candidates racing for votes across a lossy network with
//!   crashing voters, and experiment E10 sweeps the
//!   performance-vs-reliability tradeoff the paper calls out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod majority;
pub mod semaphore;

pub use majority::{CandidateSpec, ConsensusConfig, ConsensusReport, ConsensusSim, FaultPlan};
pub use semaphore::{ClaimResult, SyncPoint};
