//! The recovery-block construct over real closures.

use altx::cancel::CancelToken;
use altx::engine::{Engine, OrderedEngine, ThreadedEngine};
use altx::{AddressSpace, AltBlock};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The body of one alternate: compute on the workspace; `None` models the
/// alternate itself failing (crash, internal check, exception).
pub type AlternateFn<R> = dyn Fn(&mut AddressSpace, &CancelToken) -> Option<R> + Send + Sync;

/// The acceptance test: inspects the candidate result and the state the
/// alternate produced; `true` accepts.
pub type AcceptanceFn<R> = dyn Fn(&R, &mut AddressSpace) -> bool + Send + Sync;

struct Alternate<R> {
    name: String,
    body: Arc<AlternateFn<R>>,
}

impl<R> Clone for Alternate<R> {
    fn clone(&self) -> Self {
        Alternate {
            name: self.name.clone(),
            body: Arc::clone(&self.body),
        }
    }
}

/// A recovery block: ordered alternates plus one acceptance test.
///
/// §5.1.1 notes the two differences from the plain alternative block —
/// one shared guard rather than one per body, applied *after* the body —
/// and that neither is a problem: "the computation can be viewed as part
/// of the guard". That is exactly how
/// [`run_concurrent`](RecoveryBlock::run_concurrent) lowers the block
/// onto the alternative-block machinery.
///
/// # Example
///
/// ```
/// use altx::{AddressSpace, PageSize};
/// use altx_recovery::RecoveryBlock;
///
/// // Two "independently written" square roots; the acceptance test
/// // verifies the result against the specification.
/// let block: RecoveryBlock<f64> = RecoveryBlock::new(|r: &f64, _ws| (r * r - 2.0).abs() < 1e-9)
///     .alternate("newton", |_ws, _t| {
///         let mut x = 1.0f64;
///         for _ in 0..60 { x = 0.5 * (x + 2.0 / x); }
///         Some(x)
///     })
///     .alternate("libm", |_ws, _t| Some(2.0f64.sqrt()));
///
/// let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
/// let out = block.run_sequential(&mut ws);
/// assert!(out.accepted);
/// ```
pub struct RecoveryBlock<R> {
    alternates: Vec<Alternate<R>>,
    acceptance: Arc<AcceptanceFn<R>>,
}

impl<R> fmt::Debug for RecoveryBlock<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.alternates.iter().map(|a| &a.name))
            .finish()
    }
}

/// What executing a recovery block produced.
#[derive(Debug)]
pub struct RecoveryOutcome<R> {
    /// The accepted result, if any alternate passed.
    pub value: Option<R>,
    /// Index of the accepted alternate.
    pub winner: Option<usize>,
    /// Name of the accepted alternate.
    pub winner_name: Option<String>,
    /// Whether the block as a whole succeeded.
    pub accepted: bool,
    /// Alternates started.
    pub attempts: usize,
    /// Real wall-clock time.
    pub wall: Duration,
}

impl<R: Send + 'static> RecoveryBlock<R> {
    /// Creates a block with the given acceptance test.
    pub fn new<A>(acceptance: A) -> Self
    where
        A: Fn(&R, &mut AddressSpace) -> bool + Send + Sync + 'static,
    {
        RecoveryBlock {
            alternates: Vec::new(),
            acceptance: Arc::new(acceptance),
        }
    }

    /// Adds an alternate. Order matters for sequential execution: the
    /// first alternate is the primary, "typically ordered on the basis of
    /// observed or estimated characteristics such as reliability and
    /// execution speed" (§5.1).
    pub fn alternate<F>(mut self, name: impl Into<String>, body: F) -> Self
    where
        F: Fn(&mut AddressSpace, &CancelToken) -> Option<R> + Send + Sync + 'static,
    {
        self.alternates.push(Alternate {
            name: name.into(),
            body: Arc::new(body),
        });
        self
    }

    /// Number of alternates.
    pub fn len(&self) -> usize {
        self.alternates.len()
    }

    /// True iff the block has no alternates.
    pub fn is_empty(&self) -> bool {
        self.alternates.is_empty()
    }

    /// Classic sequential execution with rollback: primary first, each
    /// failure rolls the workspace back, next alternate tried (§5.1).
    pub fn run_sequential(&self, workspace: &mut AddressSpace) -> RecoveryOutcome<R> {
        let start = std::time::Instant::now();
        let token = CancelToken::new();
        let mut attempts = 0;
        for (i, alt) in self.alternates.iter().enumerate() {
            attempts += 1;
            let mut fork = workspace.cow_fork();
            if let Some(value) = (alt.body)(&mut fork, &token) {
                if (self.acceptance)(&value, &mut fork) {
                    workspace.absorb(fork);
                    return RecoveryOutcome {
                        value: Some(value),
                        winner: Some(i),
                        winner_name: Some(alt.name.clone()),
                        accepted: true,
                        attempts,
                        wall: start.elapsed(),
                    };
                }
            }
            // Acceptance failed or alternate crashed: implicit rollback
            // by dropping the fork.
        }
        RecoveryOutcome {
            value: None,
            winner: None,
            winner_name: None,
            accepted: false,
            attempts,
            wall: start.elapsed(),
        }
    }

    /// Concurrent execution: every alternate races on its own COW fork;
    /// the acceptance test runs in the alternate (guard-in-the-child,
    /// §3.2) and the first acceptable result wins.
    pub fn run_concurrent(&self, workspace: &mut AddressSpace) -> RecoveryOutcome<R> {
        self.run_engine(&ThreadedEngine::new(), workspace)
    }

    /// Sequential execution expressed through the
    /// [`OrderedEngine`] — used to check engine-equivalence.
    pub fn run_ordered_engine(&self, workspace: &mut AddressSpace) -> RecoveryOutcome<R> {
        self.run_engine(&OrderedEngine::new(), workspace)
    }

    fn run_engine<E: Engine>(
        &self,
        engine: &E,
        workspace: &mut AddressSpace,
    ) -> RecoveryOutcome<R> {
        let start = std::time::Instant::now();
        let block = self.build_alt_block();
        let result = engine.execute(&block, workspace);
        RecoveryOutcome {
            accepted: result.succeeded(),
            value: result.value,
            winner: result.winner,
            winner_name: result.winner_name,
            attempts: result.attempts,
            wall: start.elapsed(),
        }
    }

    /// Lowers the recovery block onto an [`AltBlock`]: each alternative's
    /// guard becomes "body succeeded AND the acceptance test passed on
    /// the body's own state".
    fn build_alt_block(&self) -> AltBlock<R> {
        let mut block = AltBlock::new();
        for alt in &self.alternates {
            let body = Arc::clone(&alt.body);
            let acceptance = Arc::clone(&self.acceptance);
            block = block.alternative(alt.name.clone(), move |ws, token| {
                let value = body(ws, token)?;
                acceptance(&value, ws).then_some(value)
            });
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx::PageSize;

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(256, PageSize::new(16))
    }

    /// A block whose primary is buggy (wrong answer), secondary crashes,
    /// and tertiary is correct.
    fn faulty_block() -> RecoveryBlock<i32> {
        RecoveryBlock::new(|r: &i32, _ws| *r == 42)
            .alternate("buggy-primary", |_w, _t| Some(41))
            .alternate("crashing-secondary", |_w, _t| None)
            .alternate("correct-tertiary", |_w, _t| Some(42))
    }

    #[test]
    fn sequential_tries_in_order_until_acceptance() {
        let out = faulty_block().run_sequential(&mut ws());
        assert!(out.accepted);
        assert_eq!(out.winner, Some(2));
        assert_eq!(out.winner_name.as_deref(), Some("correct-tertiary"));
        assert_eq!(out.attempts, 3);
        assert_eq!(out.value, Some(42));
    }

    #[test]
    fn sequential_rolls_back_rejected_state() {
        let block: RecoveryBlock<u8> = RecoveryBlock::new(|r: &u8, _ws| *r == 1)
            .alternate("rejected-writer", |w, _t| {
                w.write(0, &[0xBB]);
                Some(0) // fails acceptance
            })
            .alternate("accepted-writer", |w, _t| {
                assert_eq!(w.read_vec(0, 1)[0], 0, "rejected state leaked");
                w.write(1, &[0xCC]);
                Some(1)
            });
        let mut workspace = ws();
        let out = block.run_sequential(&mut workspace);
        assert!(out.accepted);
        assert_eq!(workspace.read_vec(0, 2), vec![0, 0xCC]);
    }

    #[test]
    fn whole_block_fails_when_all_alternates_fail() {
        let block: RecoveryBlock<i32> = RecoveryBlock::new(|_r: &i32, _ws| false)
            .alternate("a", |_w, _t| Some(1))
            .alternate("b", |_w, _t| Some(2));
        let mut workspace = ws();
        workspace.write(0, &[7]);
        let out = block.run_sequential(&mut workspace);
        assert!(!out.accepted);
        assert_eq!(out.attempts, 2);
        assert_eq!(workspace.read_vec(0, 1), vec![7], "state restored");
    }

    #[test]
    fn concurrent_finds_an_acceptable_alternate() {
        let out = faulty_block().run_concurrent(&mut ws());
        assert!(out.accepted);
        assert_eq!(out.winner, Some(2), "only the correct alternate passes");
        assert_eq!(out.attempts, 3, "all alternates raced");
    }

    #[test]
    fn concurrent_is_fastest_first_among_acceptable() {
        // Two acceptable alternates; the slow one sleeps cancellably.
        let block: RecoveryBlock<&'static str> = RecoveryBlock::new(|_r, _ws| true)
            .alternate("slow", |_w, t| {
                for _ in 0..200 {
                    t.checkpoint()?;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Some("slow")
            })
            .alternate("fast", |_w, _t| Some("fast"));
        let out = block.run_concurrent(&mut ws());
        assert_eq!(out.value, Some("fast"));
        assert!(out.wall < Duration::from_millis(150));
    }

    #[test]
    fn acceptance_test_sees_alternate_state() {
        // The acceptance test validates via the workspace, not just the
        // value — state checking per §5.1 ("checks the results").
        let block: RecoveryBlock<()> = RecoveryBlock::new(|_r: &(), ws| ws.read_vec(0, 1)[0] == 9)
            .alternate("writes-wrong", |w, _t| {
                w.write(0, &[1]);
                Some(())
            })
            .alternate("writes-right", |w, _t| {
                w.write(0, &[9]);
                Some(())
            });
        let out = block.run_sequential(&mut ws());
        assert_eq!(out.winner, Some(1));
    }

    #[test]
    fn ordered_engine_agrees_with_run_sequential() {
        let a = faulty_block().run_sequential(&mut ws());
        let b = faulty_block().run_ordered_engine(&mut ws());
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.value, b.value);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn empty_block_fails() {
        let block: RecoveryBlock<i32> = RecoveryBlock::new(|_r: &i32, _ws| true);
        assert!(block.is_empty());
        assert!(!block.run_sequential(&mut ws()).accepted);
        assert!(!block.run_concurrent(&mut ws()).accepted);
    }

    #[test]
    fn debug_lists_alternates() {
        let s = format!("{:?}", faulty_block());
        assert!(s.contains("buggy-primary"), "{s}");
    }
}
