//! Analytic reliability and expected-time model for recovery blocks.
//!
//! The recovery block's purpose is fault tolerance; the paper's
//! transformation must preserve it ("we must do more work in order not to
//! add new failure modes", §5.1.2). This module provides the closed-form
//! expectations that the simulation experiments are validated against:
//!
//! * **Reliability** — the probability the block produces an acceptable
//!   result. Identical under sequential and concurrent execution when
//!   synchronization itself is reliable: both fail only if *every*
//!   alternate fails.
//! * **Expected completion time** — differs sharply: sequential pays
//!   failed primaries in series, concurrent pays (roughly) the first
//!   surviving alternate's time in parallel.

use altx_des::SimDuration;

/// Per-alternate model: probability its acceptance test passes and its
/// (deterministic, for this model) execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlternateProfile {
    /// Probability the alternate produces an acceptable result.
    pub success_probability: f64,
    /// Execution time when run.
    pub time: SimDuration,
}

impl AlternateProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn new(success_probability: f64, time: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&success_probability),
            "probability {success_probability} outside [0, 1]"
        );
        AlternateProfile {
            success_probability,
            time,
        }
    }
}

/// Probability that the block as a whole succeeds: `1 − Π(1 − pᵢ)`.
/// The same for sequential and concurrent execution — the transformation
/// adds no failure modes (assuming fault-tolerant synchronization,
/// §5.1.2).
///
/// # Panics
///
/// Panics if `alternates` is empty.
pub fn block_reliability(alternates: &[AlternateProfile]) -> f64 {
    assert!(!alternates.is_empty(), "a block needs alternates");
    1.0 - alternates
        .iter()
        .map(|a| 1.0 - a.success_probability)
        .product::<f64>()
}

/// Expected *sequential* completion time, conditioned on eventual
/// success or total failure: each failed alternate costs its full time
/// plus a rollback; the run stops at the first success.
///
/// Returns `(expected_time_seconds, reliability)`.
///
/// # Panics
///
/// Panics if `alternates` is empty.
pub fn sequential_expectation(
    alternates: &[AlternateProfile],
    rollback: SimDuration,
) -> (f64, f64) {
    assert!(!alternates.is_empty(), "a block needs alternates");
    let mut expected = 0.0;
    let mut p_reach = 1.0; // probability execution reaches alternate i
    for a in alternates {
        expected += p_reach * a.time.as_secs_f64();
        // A failure at this alternate also pays the rollback.
        expected += p_reach * (1.0 - a.success_probability) * rollback.as_secs_f64();
        p_reach *= 1.0 - a.success_probability;
    }
    (expected, 1.0 - p_reach)
}

/// Expected *concurrent* completion time: all alternates start together
/// (after `setup`); the block completes at the earliest success — since
/// this model's times are deterministic, that is the minimum time among
/// the (probabilistic) successes. `selection` is charged once at the
/// end.
///
/// Computed exactly by enumerating success subsets when `n ≤ 20`
/// (`2ⁿ` terms).
///
/// Returns `(expected_time_seconds_given_success, reliability)`.
///
/// # Panics
///
/// Panics if `alternates` is empty or longer than 20.
pub fn concurrent_expectation(
    alternates: &[AlternateProfile],
    setup: SimDuration,
    selection: SimDuration,
) -> (f64, f64) {
    assert!(
        !alternates.is_empty() && alternates.len() <= 20,
        "1..=20 alternates supported"
    );
    let n = alternates.len();
    // Sort indices by time: the winner of a subset is its fastest member.
    let mut by_time: Vec<usize> = (0..n).collect();
    by_time.sort_by_key(|&i| alternates[i].time);

    // P(winner is alternate i) = P(i succeeds) × Π_{j faster than i}
    // P(j fails).
    let mut expected = 0.0;
    let mut p_success_total = 0.0;
    let mut p_all_faster_fail = 1.0;
    for &i in &by_time {
        let p_win = alternates[i].success_probability * p_all_faster_fail;
        expected += p_win * alternates[i].time.as_secs_f64();
        p_success_total += p_win;
        p_all_faster_fail *= 1.0 - alternates[i].success_probability;
    }
    if p_success_total > 0.0 {
        expected /= p_success_total; // condition on success
    }
    (
        expected + setup.as_secs_f64() + selection.as_secs_f64(),
        p_success_total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlternateModel, DistributedRecoveryBlock};
    use altx_des::SimRng;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn reliability_formula() {
        let alts = [
            AlternateProfile::new(0.9, ms(100)),
            AlternateProfile::new(0.8, ms(200)),
        ];
        let r = block_reliability(&alts);
        assert!((r - (1.0 - 0.1 * 0.2)).abs() < 1e-12);
        // Sequential and concurrent reliabilities agree with it.
        let (_, rs) = sequential_expectation(&alts, ms(5));
        let (_, rc) = concurrent_expectation(&alts, ms(0), ms(0));
        assert!((rs - r).abs() < 1e-12);
        assert!((rc - r).abs() < 1e-12);
    }

    #[test]
    fn perfect_primary_sequential_time_is_its_time() {
        let alts = [
            AlternateProfile::new(1.0, ms(100)),
            AlternateProfile::new(1.0, ms(500)),
        ];
        let (t, r) = sequential_expectation(&alts, ms(5));
        assert!((t - 0.1).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failing_primary_adds_its_time_and_rollback() {
        let alts = [
            AlternateProfile::new(0.0, ms(100)),
            AlternateProfile::new(1.0, ms(500)),
        ];
        let (t, r) = sequential_expectation(&alts, ms(5));
        assert!((t - (0.1 + 0.005 + 0.5)).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_winner_distribution() {
        // Fast alternate succeeds with p=0.5; slow always succeeds.
        let alts = [
            AlternateProfile::new(0.5, ms(100)),
            AlternateProfile::new(1.0, ms(900)),
        ];
        let (t, r) = concurrent_expectation(&alts, ms(0), ms(0));
        assert!((r - 1.0).abs() < 1e-12);
        // E[T | success] = 0.5×0.1 + 0.5×0.9.
        assert!((t - 0.5).abs() < 1e-12, "{t}");
    }

    #[test]
    fn concurrent_beats_sequential_under_failures() {
        let alts: Vec<AlternateProfile> = (0..4)
            .map(|i| AlternateProfile::new(0.5, ms(100 * (i + 1))))
            .collect();
        let (seq, _) = sequential_expectation(&alts, ms(5));
        let (conc, _) = concurrent_expectation(&alts, ms(20), ms(5));
        assert!(conc < seq, "concurrent {conc} vs sequential {seq}");
    }

    #[test]
    fn analytic_sequential_matches_monte_carlo() {
        // Cross-validate against the DistributedRecoveryBlock simulation
        // with deterministic times and random pass/fail draws.
        let p = 0.6;
        let times = [ms(3_000), ms(5_000)];
        let profiles = [
            AlternateProfile::new(p, times[0]),
            AlternateProfile::new(p, times[1]),
        ];
        let (analytic, _) = sequential_expectation(&profiles, ms(5));

        let mut rng = SimRng::seed_from_u64(42);
        let trials = 20_000;
        let mut total = 0.0;
        for _ in 0..trials {
            let alternates: Vec<AlternateModel> = times
                .iter()
                .map(|&t| AlternateModel {
                    compute: t,
                    passes: rng.chance(p),
                    crashes: false,
                    dirty_bytes: 0,
                })
                .collect();
            let block = DistributedRecoveryBlock::new(alternates);
            let (_, time) = block.sequential();
            total += time.as_secs_f64();
        }
        let simulated = total / trials as f64;
        assert!(
            (simulated - analytic).abs() / analytic < 0.02,
            "analytic {analytic} vs simulated {simulated}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_rejected() {
        AlternateProfile::new(1.5, ms(1));
    }

    #[test]
    #[should_panic(expected = "needs alternates")]
    fn empty_block_rejected() {
        block_reliability(&[]);
    }
}
