//! Recovery blocks on the simulated kernel.
//!
//! §5.1.1's reduction, executed literally: "the computation can be viewed
//! as part of the guard, with the body consisting solely of updates to
//! external variables." Each alternate becomes a kernel program that does
//! its work and then writes a *result marker* into its (copy-on-write)
//! state; the acceptance test becomes a [`GuardSpec::MemByteEquals`]
//! checking that marker — evaluated in the child at synchronization time,
//! like any other guard.
//!
//! This gives recovery blocks the full §3.2 machinery — calibrated fork
//! costs, sibling elimination, timeouts — and lets experiments run them
//! on the 1989 machine profiles.

use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, BlockOutcome, GuardSpec, Kernel, KernelConfig, Op, Program,
    RunReport,
};
use altx_pager::MachineProfile;

/// Byte address where alternates deposit their acceptance marker.
const MARKER_ADDR: usize = 0;
/// Marker value meaning "my result passed my self-check".
const ACCEPTED: u8 = 0xAC;

/// One alternate of a simulated recovery block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAlternate {
    /// The alternate's computation time.
    pub compute: SimDuration,
    /// Whether the alternate's result will pass the acceptance test.
    pub acceptable: bool,
    /// Pages of state the alternate updates (its COW footprint).
    pub dirty_pages: usize,
}

impl SimAlternate {
    /// A healthy alternate.
    pub fn ok(compute: SimDuration) -> Self {
        SimAlternate {
            compute,
            acceptable: true,
            dirty_pages: 2,
        }
    }

    /// A faulty alternate (fails its acceptance test).
    pub fn faulty(compute: SimDuration) -> Self {
        SimAlternate {
            compute,
            acceptable: false,
            dirty_pages: 2,
        }
    }

    fn to_alternative(&self) -> Alternative {
        let mut ops = vec![Op::Compute(self.compute)];
        if self.dirty_pages > 0 {
            // State updates; start at page 1 so the marker page is
            // page 0.
            ops.push(Op::TouchPages {
                first: 1,
                count: self.dirty_pages,
            });
        }
        // "The body consisting solely of updates to external variables":
        // deposit the marker the shared acceptance test will inspect.
        ops.push(Op::Write {
            addr: MARKER_ADDR,
            data: vec![if self.acceptable { ACCEPTED } else { 0x00 }],
        });
        Alternative::new(
            GuardSpec::MemByteEquals {
                addr: MARKER_ADDR,
                expected: ACCEPTED,
            },
            Program::new(ops),
        )
    }
}

/// Result of one simulated recovery-block execution.
#[derive(Debug, Clone)]
pub struct SimRecoveryResult {
    /// The parent-side block outcome.
    pub outcome: BlockOutcome,
    /// The full kernel report.
    pub report: RunReport,
}

impl SimRecoveryResult {
    /// Index of the accepted alternate.
    pub fn winner(&self) -> Option<usize> {
        self.outcome.winner
    }

    /// Virtual time from block start to parent resume.
    pub fn elapsed(&self) -> SimDuration {
        self.outcome.elapsed()
    }
}

/// Runs a recovery block's alternates concurrently on the simulated
/// kernel under `profile`, with an `alt_wait` timeout.
///
/// # Panics
///
/// Panics if `alternates` is empty.
pub fn run_simulated(
    alternates: &[SimAlternate],
    profile: MachineProfile,
    timeout: SimDuration,
) -> SimRecoveryResult {
    assert!(!alternates.is_empty(), "a recovery block needs alternates");
    let spec = AltBlockSpec::new(
        alternates
            .iter()
            .map(SimAlternate::to_alternative)
            .collect(),
    )
    .with_timeout(timeout);
    let mut kernel = Kernel::new(KernelConfig {
        profile: profile.clone(),
        ..KernelConfig::default()
    });
    // The program image is resident (non-zero), so alternates' state
    // updates trigger genuine COW copies, as §5.1.2's analysis assumes.
    let image = altx_pager::AddressSpace::from_bytes(&vec![0x11; 320 * 1024], profile.page_size());
    let root = kernel.spawn_with_space(Program::new(vec![Op::AltBlock(spec)]), image);
    let report = kernel.run();
    let outcome = report.block_outcomes(root)[0].clone();
    SimRecoveryResult { outcome, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn hour() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    #[test]
    fn fastest_acceptable_alternate_wins() {
        let result = run_simulated(
            &[
                SimAlternate::ok(ms(120)),
                SimAlternate::ok(ms(40)),
                SimAlternate::ok(ms(80)),
            ],
            MachineProfile::hp_9000_350(),
            hour(),
        );
        assert_eq!(result.winner(), Some(1));
    }

    #[test]
    fn acceptance_failures_fall_through() {
        // The fast alternates produce unacceptable results; the guard —
        // evaluated against each child's own memory — rejects them.
        let result = run_simulated(
            &[
                SimAlternate::faulty(ms(10)),
                SimAlternate::faulty(ms(20)),
                SimAlternate::ok(ms(300)),
            ],
            MachineProfile::hp_9000_350(),
            hour(),
        );
        assert_eq!(result.winner(), Some(2));
        assert!(!result.outcome.failed);
    }

    #[test]
    fn all_faulty_fails_the_block() {
        let result = run_simulated(
            &[SimAlternate::faulty(ms(10)), SimAlternate::faulty(ms(20))],
            MachineProfile::hp_9000_350(),
            hour(),
        );
        assert!(result.outcome.failed);
        assert!(!result.outcome.timed_out);
    }

    #[test]
    fn timeout_bounds_a_runaway_block() {
        let result = run_simulated(
            &[SimAlternate::ok(SimDuration::from_secs(100))],
            MachineProfile::hp_9000_350(),
            ms(50),
        );
        assert!(result.outcome.failed && result.outcome.timed_out);
        assert!(result.elapsed() < ms(100));
    }

    #[test]
    fn machine_profile_scales_cost_not_outcome() {
        let alts = [SimAlternate::ok(ms(50)), SimAlternate::ok(ms(90))];
        let hp = run_simulated(&alts, MachineProfile::hp_9000_350(), hour());
        let att = run_simulated(&alts, MachineProfile::att_3b2_310(), hour());
        assert_eq!(hp.winner(), att.winner());
        assert!(att.elapsed() > hp.elapsed(), "the 3B2 pays more overhead");
    }

    #[test]
    fn dirty_footprint_charges_cow_copies() {
        let light = run_simulated(
            &[SimAlternate {
                compute: ms(50),
                acceptable: true,
                dirty_pages: 1,
            }],
            MachineProfile::att_3b2_310(),
            hour(),
        );
        let heavy = run_simulated(
            &[SimAlternate {
                compute: ms(50),
                acceptable: true,
                dirty_pages: 120,
            }],
            MachineProfile::att_3b2_310(),
            hour(),
        );
        assert!(
            heavy.elapsed() > light.elapsed() + ms(300),
            "120 pages at ~3 ms each"
        );
    }
}
