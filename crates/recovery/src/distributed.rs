//! Model-level distributed recovery blocks (experiment E7).
//!
//! Kim (1984) and Welch (1983) studied distributed execution of recovery
//! blocks — Welch "used two-alternate recovery blocks on a bus-connected
//! shared memory multiprocessor" (§5.1's footnote). This module builds
//! the same experiment shape on the altx substrates: alternates with
//! injected faults and data-dependent execution times, run
//!
//! * **sequentially with rollback** (the classic construct, local), and
//! * **concurrently across cluster nodes** (the paper's transformation,
//!   paying rfork + synchronization overhead),
//!
//! and compares completion times.

use altx_cluster::{DistributedRace, DistributedRaceReport, NodeId, RemoteAlternate, SyncMode};
use altx_des::{SimDuration, SimRng};

/// Fault-injection parameters for generated alternates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability an alternate's acceptance test passes.
    pub accept_probability: f64,
    /// Probability the alternate's node crashes mid-run (concurrent case;
    /// sequentially this manifests as a detected failure + rollback).
    pub crash_probability: f64,
}

impl FaultSpec {
    /// No faults at all.
    pub fn none() -> Self {
        FaultSpec {
            accept_probability: 1.0,
            crash_probability: 0.0,
        }
    }
}

/// One modeled alternate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlternateModel {
    /// Execution time of the alternate's body.
    pub compute: SimDuration,
    /// Whether its acceptance test will pass.
    pub passes: bool,
    /// Whether its node crashes (concurrent) / it aborts late
    /// (sequential).
    pub crashes: bool,
    /// Result-state footprint copied back on a win.
    pub dirty_bytes: u64,
}

impl AlternateModel {
    /// Draws an alternate from log-normally distributed compute times
    /// (`median_ms`, dispersion `sigma`) under `faults`.
    pub fn sample(rng: &mut SimRng, median_ms: f64, sigma: f64, faults: &FaultSpec) -> Self {
        let ms = rng.log_normal(median_ms.ln(), sigma);
        AlternateModel {
            compute: SimDuration::from_millis_f64(ms.max(0.01)),
            passes: rng.chance(faults.accept_probability),
            crashes: rng.chance(faults.crash_probability),
            dirty_bytes: 4 * 1024,
        }
    }
}

/// A recovery block expressed as cost models, executable both ways.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRecoveryBlock {
    /// Process image shipped per remote alternate.
    pub image_bytes: u64,
    /// The alternates in primary-first order.
    pub alternates: Vec<AlternateModel>,
    /// State-restoration cost charged per sequential rollback.
    pub rollback_cost: SimDuration,
    /// Synchronization mode of the concurrent execution.
    pub sync: SyncMode,
    /// Consensus seed.
    pub seed: u64,
}

impl DistributedRecoveryBlock {
    /// A block with the paper-calibrated 70 KB image, 5 ms rollbacks, and
    /// a healthy single sync point.
    pub fn new(alternates: Vec<AlternateModel>) -> Self {
        DistributedRecoveryBlock {
            image_bytes: 70 * 1024,
            alternates,
            rollback_cost: SimDuration::from_millis(5),
            sync: SyncMode::SinglePoint {
                coordinator_up: true,
            },
            seed: 23,
        }
    }

    /// Uses majority-consensus synchronization (§5.1.2's remedy for the
    /// single point of failure).
    pub fn with_majority_sync(mut self, n_voters: usize, crashed_voters: usize) -> Self {
        self.sync = SyncMode::Majority {
            n_voters,
            crashed_voters,
        };
        self
    }

    /// Sequential execution with rollback, local to one node: each failed
    /// alternate costs its full compute time (the failure is detected by
    /// the acceptance test at the end) plus a rollback.
    ///
    /// Returns `(winner index, total time)`; `winner` is `None` when the
    /// whole block fails (total time then covers every attempt).
    pub fn sequential(&self) -> (Option<usize>, SimDuration) {
        let mut total = SimDuration::ZERO;
        for (i, alt) in self.alternates.iter().enumerate() {
            total += alt.compute;
            if alt.passes && !alt.crashes {
                return (Some(i), total);
            }
            total += self.rollback_cost;
        }
        (None, total)
    }

    /// Concurrent distributed execution: alternate *i* on node *i*.
    pub fn concurrent(&self) -> DistributedRaceReport {
        let remote: Vec<RemoteAlternate> = self
            .alternates
            .iter()
            .enumerate()
            .map(|(i, alt)| RemoteAlternate {
                node: NodeId(i as u32),
                compute: alt.compute,
                guard_passes: alt.passes,
                node_crashes: alt.crashes,
                dirty_bytes: alt.dirty_bytes,
            })
            .collect();
        let mut race = DistributedRace::new(self.image_bytes, remote).with_sync(self.sync);
        race.seed = self.seed;
        race.run()
    }

    /// Runs both executions and summarizes.
    pub fn compare(&self) -> ExecutionComparison {
        let (seq_winner, seq_time) = self.sequential();
        let conc = self.concurrent();
        let conc_time = conc.completed_at.map(|t| t - altx_des::SimTime::ZERO);
        let speedup = match (seq_winner, conc_time) {
            (Some(_), Some(ct)) => Some(seq_time.as_secs_f64() / ct.as_secs_f64()),
            _ => None,
        };
        ExecutionComparison {
            sequential_winner: seq_winner,
            sequential_time: seq_time,
            concurrent_winner: conc.winner,
            concurrent_time: conc_time,
            speedup,
        }
    }
}

/// Side-by-side result of the two execution strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionComparison {
    /// Sequential winner index.
    pub sequential_winner: Option<usize>,
    /// Sequential completion time.
    pub sequential_time: SimDuration,
    /// Concurrent winner index.
    pub concurrent_winner: Option<usize>,
    /// Concurrent completion time (absorption included).
    pub concurrent_time: Option<SimDuration>,
    /// `sequential / concurrent`; > 1 means the transformation won.
    pub speedup: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn alt(compute_ms: u64, passes: bool, crashes: bool) -> AlternateModel {
        AlternateModel {
            compute: ms(compute_ms),
            passes,
            crashes,
            dirty_bytes: 4 * 1024,
        }
    }

    #[test]
    fn sequential_takes_primary_when_it_passes() {
        let block =
            DistributedRecoveryBlock::new(vec![alt(100, true, false), alt(50, true, false)]);
        let (winner, time) = block.sequential();
        assert_eq!(winner, Some(0));
        assert_eq!(time, ms(100));
    }

    #[test]
    fn sequential_pays_for_failed_primaries() {
        let block = DistributedRecoveryBlock::new(vec![
            alt(100, false, false),
            alt(200, false, false),
            alt(50, true, false),
        ]);
        let (winner, time) = block.sequential();
        assert_eq!(winner, Some(2));
        // 100 + rollback + 200 + rollback + 50.
        assert_eq!(time, ms(100) + ms(5) + ms(200) + ms(5) + ms(50));
    }

    #[test]
    fn sequential_total_failure() {
        let block =
            DistributedRecoveryBlock::new(vec![alt(10, false, false), alt(20, false, false)]);
        let (winner, time) = block.sequential();
        assert_eq!(winner, None);
        assert_eq!(time, ms(10) + ms(5) + ms(20) + ms(5));
    }

    #[test]
    fn concurrent_skips_slow_failed_primary() {
        // Primary fails after a long run; sequentially that's disastrous,
        // concurrently the secondary wins in parallel.
        let block =
            DistributedRecoveryBlock::new(vec![alt(10_000, false, false), alt(1_000, true, false)]);
        let cmp = block.compare();
        assert_eq!(cmp.sequential_winner, Some(1));
        assert_eq!(cmp.concurrent_winner, Some(1));
        assert!(
            cmp.speedup.expect("both succeeded") > 2.0,
            "speedup {:?}",
            cmp.speedup
        );
    }

    #[test]
    fn concurrent_overhead_loses_on_fast_healthy_primary() {
        // A 50 ms healthy primary: sequential is nearly free, concurrent
        // pays seconds of rfork. The transformation must lose here — the
        // paper's "minimal implementation overhead" caveat.
        let block = DistributedRecoveryBlock::new(vec![alt(50, true, false), alt(50, true, false)]);
        let cmp = block.compare();
        assert!(
            cmp.speedup.expect("both succeed") < 1.0,
            "{:?}",
            cmp.speedup
        );
    }

    #[test]
    fn node_crash_is_tolerated_concurrently() {
        let block = DistributedRecoveryBlock::new(vec![
            alt(100, true, true), // would win but its node dies
            alt(500, true, false),
        ]);
        let report = block.concurrent();
        assert_eq!(report.winner, Some(1));
    }

    #[test]
    fn majority_sync_survives_minority_voter_crash() {
        let block =
            DistributedRecoveryBlock::new(vec![alt(100, true, false)]).with_majority_sync(5, 2);
        assert_eq!(block.concurrent().winner, Some(0));
    }

    #[test]
    fn single_point_down_fails_concurrent_but_not_sequential() {
        let mut block = DistributedRecoveryBlock::new(vec![alt(100, true, false)]);
        block.sync = SyncMode::SinglePoint {
            coordinator_up: false,
        };
        let cmp = block.compare();
        assert_eq!(
            cmp.sequential_winner,
            Some(0),
            "sequential is local, unaffected"
        );
        assert_eq!(cmp.concurrent_winner, None);
        assert_eq!(cmp.speedup, None);
    }

    #[test]
    fn sampling_is_deterministic_and_respects_faults() {
        let mut rng = SimRng::seed_from_u64(5);
        let spec = FaultSpec {
            accept_probability: 0.0,
            crash_probability: 0.0,
        };
        let a = AlternateModel::sample(&mut rng, 100.0, 0.5, &spec);
        assert!(!a.passes);
        assert!(!a.crashes);
        assert!(a.compute > SimDuration::ZERO);

        let mut rng2 = SimRng::seed_from_u64(5);
        let b = AlternateModel::sample(&mut rng2, 100.0, 0.5, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn fault_spec_none_passes_everything() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = AlternateModel::sample(&mut rng, 10.0, 1.0, &FaultSpec::none());
            assert!(a.passes && !a.crashes);
        }
    }
}
