//! # altx-recovery — distributed execution of recovery blocks
//!
//! The paper's first application (§5.1). A *recovery block* (Horning et
//! al. 1974) is software fault tolerance by design diversity: several
//! independently written versions of a routine plus one boolean
//! **acceptance test**. Sequentially, the primary runs first; if the
//! acceptance test fails, the program state is *rolled back* and the next
//! alternate is tried; if every alternate fails, the block fails.
//!
//! The paper's transformation races the alternates concurrently instead:
//! the acceptance test becomes the guard, copy-on-write memory bounds the
//! state kept per alternate, and the "fastest-first" selection finds "a
//! rapid failure-free path through the computation" (§7). Because the
//! construct exists to *tolerate faults*, the concurrent execution must
//! not add failure modes — hence full-state copies and majority-consensus
//! synchronization in the distributed case (§5.1.2).
//!
//! This crate provides:
//!
//! * [`RecoveryBlock`] — the construct over real closures, with
//!   [`RecoveryBlock::run_sequential`] (rollback semantics) and
//!   [`RecoveryBlock::run_concurrent`] (threaded race) executors.
//! * [`distributed`] — the model-level distributed execution used by
//!   experiment E7: alternates on cluster nodes with injected faults,
//!   sequential-with-rollback versus concurrent racing, Kim/Welch style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod block;
pub mod distributed;
pub mod simulated;

pub use analysis::{
    block_reliability, concurrent_expectation, sequential_expectation, AlternateProfile,
};
pub use block::{RecoveryBlock, RecoveryOutcome};
pub use distributed::{AlternateModel, DistributedRecoveryBlock, ExecutionComparison, FaultSpec};
pub use simulated::{run_simulated, SimAlternate, SimRecoveryResult};
